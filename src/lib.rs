//! # compass-repro
//!
//! Executable reproduction of *Compass: Strong and Compositional Library
//! Specifications in Relaxed Memory Separation Logic* (Dang, Jung, Choi,
//! Nguyen, Mansky, Kang, Dreyer — PLDI 2022).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`orc11`] — the ORC11-style operational memory-model simulator
//!   (views, per-location histories, race detection, ghost logical views,
//!   controllable scheduler);
//! * [`compass`] — the specification framework: event graphs, logical
//!   views, consistency conditions (QueueConsistent / StackConsistent /
//!   ExchangerConsistent), abstract-state replay, linearization search;
//! * [`structures`] (`compass-structures`) — the paper's libraries on the
//!   model, ghost-instrumented at their commit points, plus deliberately
//!   buggy variants and the paper's client programs;
//! * [`native`] (`compass-native`) — the same data structures on real
//!   `std::sync::atomic`, for the performance benchmarks.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! the per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use compass;
pub use compass_native as native;
pub use compass_structures as structures;
pub use orc11;
