#!/usr/bin/env bash
# Regenerates every experiment from DESIGN.md §4 (E1–E10) in release mode.
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"
cargo build --release -p compass-bench
for exp in e1_mp e2_spec_matrix e4_hist_stack e5_elimination e6_sizes e7_spsc e8_litmus e9_deque e10_strategies; do
  echo "=== $exp ==="
  ./target/release/"$exp" | tee "$out/$exp.txt"
  echo
done
echo "E11/E12 run as integration tests:"
cargo test --release --test flexibility -- --nocapture | tee "$out/e11_e12.txt"
echo "Results written to $out/"
