#!/usr/bin/env bash
# Regenerates every experiment from DESIGN.md §4 (E1–E10 plus the
# runtime-conformance harness e11_conform) in release mode.
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"
# Each e* binary also writes machine-readable metrics ($out/<exp>.json,
# see EXPERIMENTS.md, "Observability & replay"). e11_conform additionally
# writes its positive-control replay bundle under $out/conform-bundles.
export COMPASS_RESULTS_DIR="$out"
cargo build --release -p compass-bench
exps=(e1_mp e2_spec_matrix e4_hist_stack e5_elimination e6_sizes e7_spsc e8_litmus e9_deque e10_strategies e11_conform)
for exp in "${exps[@]}"; do
  echo "=== $exp ==="
  ./target/release/"$exp" | tee "$out/$exp.txt"
  echo
done
# The flexibility studies (EXPERIMENTS.md E11/E12 — not to be confused
# with the e11_conform binary above) run as integration tests.
echo "E11/E12 (flexibility studies) run as integration tests:"
cargo test --release --test flexibility -- --nocapture | tee "$out/e11_e12.txt"

# Aggregate the DPOR pruning counters across the litmus gallery (E8 runs
# every test both plain and DPOR-pruned and records the per-test numbers).
pruning='null'
if command -v python3 >/dev/null 2>&1 && [ -f "$out/e8_litmus.json" ]; then
  pruning=$(python3 - "$out/e8_litmus.json" <<'PY'
import json, sys
tests = json.load(open(sys.argv[1]))["data"]["tests"]
tot = {k: sum(t[k] for t in tests.values())
       for k in ("plain_execs", "dpor_execs", "dpor_backtrack_points",
                 "dpor_sleep_hits", "dpor_pruned_subtrees")}
print(json.dumps(tot, separators=(", ", ": ")))
PY
)
fi

# Aggregate the runtime-conformance matrix (e11_conform records one
# object per native subject plus the weakened positive control).
conform='null'
if command -v python3 >/dev/null 2>&1 && [ -f "$out/e11_conform.json" ]; then
  conform=$(python3 - "$out/e11_conform.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))["data"]
control = data.get("WeakMsQueue_control", {})
subjects = {k: v for k, v in data.items() if k != "WeakMsQueue_control"}
print(json.dumps({
    "subjects": len(subjects),
    "rounds": sum(s["execs"] for s in subjects.values()),
    "conforming": sum(s["consistent"] for s in subjects.values()),
    "control_flagged_rule": control.get("flagged_rule"),
}, separators=(", ", ": ")))
PY
)
fi

# Roll the per-phase time profile (the `phase_ns` object, fed from the
# span-tracing subsystem) up across every experiment document.
phases='null'
if command -v python3 >/dev/null 2>&1; then
  phases=$(python3 - "$out" <<'PY'
import glob, json, os, sys
tot = {}
for f in sorted(glob.glob(os.path.join(sys.argv[1], "*.json"))):
    name = os.path.basename(f)
    if name == "summary.json":
        continue
    doc = json.load(open(f))
    for k, v in doc.get("phase_ns", {}).items():
        tot[k] = tot.get(k, 0) + v
print(json.dumps(tot if tot else None, separators=(", ", ": ")))
PY
)
fi

# Collect the per-experiment metrics into one summary document.
summary="$out/summary.json"
{
  printf '{\n  "schema_version": 6,\n  "dpor_pruning": %s,\n  "conform": %s,\n  "phase_ns": %s,\n  "experiments": [\n' "$pruning" "$conform" "$phases"
  first=1
  for exp in "${exps[@]}"; do
    f="$out/$exp.json"
    [ -f "$f" ] || continue
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    body=$(sed 's/^/    /' "$f") # $() strips the trailing newline
    printf '%s' "$body"
  done
  printf '\n  ]\n}\n'
} >"$summary"
echo "Results written to $out/ (summary: $summary)"
