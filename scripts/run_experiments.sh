#!/usr/bin/env bash
# Regenerates every experiment from DESIGN.md §4 (E1–E10) in release mode.
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"
# Each e* binary also writes machine-readable metrics ($out/<exp>.json,
# see EXPERIMENTS.md, "Observability & replay").
export COMPASS_RESULTS_DIR="$out"
cargo build --release -p compass-bench
exps=(e1_mp e2_spec_matrix e4_hist_stack e5_elimination e6_sizes e7_spsc e8_litmus e9_deque e10_strategies)
for exp in "${exps[@]}"; do
  echo "=== $exp ==="
  ./target/release/"$exp" | tee "$out/$exp.txt"
  echo
done
echo "E11/E12 run as integration tests:"
cargo test --release --test flexibility -- --nocapture | tee "$out/e11_e12.txt"

# Collect the per-experiment metrics into one summary document.
summary="$out/summary.json"
{
  printf '{\n  "schema_version": 2,\n  "experiments": [\n'
  first=1
  for exp in "${exps[@]}"; do
    f="$out/$exp.json"
    [ -f "$f" ] || continue
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    body=$(sed 's/^/    /' "$f") # $() strips the trailing newline
    printf '%s' "$body"
  done
  printf '\n  ]\n}\n'
} >"$summary"
echo "Results written to $out/ (summary: $summary)"
