#!/usr/bin/env bash
# Records one performance-trajectory point (DESIGN.md §9): runs the
# e12_perf harness, wraps its metrics into the next BENCH_<n>.json in
# the trajectory directory, validates the document, and diffs it
# against the previous entry with bench_compare.
#
# Usage: scripts/run_bench.sh [--smoke] [output-dir]
#
#   --smoke      reduced preset (fewer ops, thread counts 1 and 2) for
#                CI and quick local checks
#   output-dir   trajectory directory (default: bench-results)
#
# Environment:
#   COMPASS_BENCH_REV     provenance rev   (default: git rev-parse --short HEAD)
#   COMPASS_BENCH_DATE    provenance date  (default: date -u +%F)
#   COMPASS_BENCH_STRICT  when 1, a regression vs. the previous entry
#                         fails the script (default: report only)
set -euo pipefail

preset=full
if [ "${1:-}" = "--smoke" ]; then
  preset=smoke
  shift
fi
out="${1:-bench-results}"
mkdir -p "$out"

# Next trajectory index: one past the largest existing BENCH_<n>.json.
next=0
for f in "$out"/BENCH_*.json; do
  [ -e "$f" ] || continue
  n="${f##*/BENCH_}"
  n="${n%.json}"
  case "$n" in
  '' | *[!0-9]*) continue ;;
  esac
  if [ "$n" -ge "$next" ]; then next=$((n + 1)); fi
done
doc="$out/BENCH_$next.json"

# Provenance is injected via env so the binaries never read the wall
# clock (metrics stay deterministic; see tests/parallel_determinism.rs).
rev="${COMPASS_BENCH_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
date_utc="${COMPASS_BENCH_DATE:-$(date -u +%F)}"

# compass-bench enables compass-native's `perf` feature itself, so the
# per-op hooks are armed in this build (and only in benchmark builds).
cargo build --release -p compass-bench

export COMPASS_RESULTS_DIR="$out"
export COMPASS_BENCH_OUT="$doc"
export COMPASS_BENCH_REV="$rev"
export COMPASS_BENCH_DATE="$date_utc"
export COMPASS_BENCH_PRESET="$preset"
if [ "$preset" = smoke ]; then
  export COMPASS_PERF_TCOUNTS="1,2"
  args=(4000 10000)
else
  args=(50000 200000)
fi

echo "=== e12_perf ($preset preset, rev $rev) ==="
./target/release/e12_perf "${args[@]}" | tee "$out/e12_perf.txt"

./target/release/bench_compare --check "$doc"
echo "Recorded $doc"

# Diff against the previous trajectory entry, if there is one.
if [ "$next" -gt 0 ]; then
  prev="$out/BENCH_$((next - 1)).json"
  if [ -f "$prev" ]; then
    echo "=== bench_compare $prev $doc ==="
    if ./target/release/bench_compare "$prev" "$doc"; then
      :
    elif [ "${COMPASS_BENCH_STRICT:-0}" = 1 ]; then
      echo "Regression vs. $prev (COMPASS_BENCH_STRICT=1)" >&2
      exit 1
    else
      echo "(regression reported; set COMPASS_BENCH_STRICT=1 to make this fatal)"
    fi
  fi
fi
