//! Integration: the `compass::checker` exploration driver across
//! strategies and structures — positive (clean) and negative (per-clause
//! accounting) paths.

use compass::checker::{check_executions, CheckReport, Exploration};
use compass::queue_spec::check_queue_consistent;
use compass_repro::structures::buggy::RelaxedMsQueue;
use compass_repro::structures::queue::{ModelQueue, MsQueue};
use orc11::{run_model, BodyFn, Config, Strategy, ThreadCtx, Val};

fn queue_program<Q: ModelQueue>(
    make: impl Fn(&mut ThreadCtx) -> Q + Send + Sync,
    strategy: Box<dyn Strategy>,
) -> orc11::RunOutcome<compass::Graph<compass::queue_spec::QueueEvent>> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| make(ctx),
        vec![
            Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                q.enqueue(ctx, Val::Int(1));
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                q.try_dequeue(ctx);
            }),
        ],
        |_, q, _| q.obj().snapshot(),
    )
}

fn explore<Q: ModelQueue>(
    make: impl Fn(&mut ThreadCtx) -> Q + Copy + Send + Sync,
    e: &Exploration,
) -> CheckReport {
    check_executions(
        e,
        |strategy| queue_program(make, strategy),
        check_queue_consistent,
    )
}

#[test]
fn ms_queue_clean_under_every_strategy() {
    for e in [
        Exploration::Random {
            iters: 150,
            seed0: 0,
        },
        Exploration::Pct {
            iters: 150,
            seed0: 0,
            depth: 3,
        },
        Exploration::Dfs { budget: 300_000 },
    ] {
        let report = explore(MsQueue::new, &e);
        report.assert_clean();
        if let Exploration::Dfs { .. } = e {
            assert!(report.exhausted, "small instance exhausts: {report}");
        }
    }
}

#[test]
fn buggy_queue_clauses_are_accounted() {
    let report = explore(
        RelaxedMsQueue::new,
        &Exploration::Pct {
            iters: 400,
            seed0: 0,
            depth: 3,
        },
    );
    assert_eq!(report.model_errors, 0);
    assert!(
        report.violated("QUEUE-SO-LHB"),
        "the relaxed queue's defect is per-clause attributed: {report}"
    );
    assert!(!report.samples.is_empty());
    assert!(report.consistent < report.execs);
}

#[test]
fn dfs_exhausts_and_finds_every_buggy_schedule() {
    // Exhaustive exploration of the buggy queue: the violation count is a
    // *complete* census of this instance's schedule space, not a sample.
    let report = explore(RelaxedMsQueue::new, &Exploration::Dfs { budget: 400_000 });
    assert!(report.exhausted, "should exhaust: {report}");
    assert!(report.violated("QUEUE-SO-LHB"));
    // Deterministic: the exact counts are a property of the instance.
    let again = explore(RelaxedMsQueue::new, &Exploration::Dfs { budget: 400_000 });
    assert_eq!(report.execs, again.execs);
    assert_eq!(report.consistent, again.consistent);
    assert_eq!(report.violations, again.violations);
}
