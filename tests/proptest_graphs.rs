//! Property-based tests for the Compass checkers: graphs generated from
//! sequential oracle runs are always accepted; targeted mutations are
//! always rejected; the linearization search is sound and agrees with the
//! oracle.
//!
//! Properties are exercised over deterministic seeded random operation
//! sequences (the repository builds offline with no property-testing
//! dependency); every failure message carries the seed, and the generator
//! is a pure function of it.

use std::collections::{BTreeSet, VecDeque};

use compass::history::{find_linearization, validate_linearization, QueueInterp, StackInterp};
use compass::queue_spec::{check_queue_consistent, QueueEvent};
use compass::stack_spec::{check_stack_consistent, StackEvent};
use compass::{EventId, Graph};
use orc11::rng::SmallRng;
use orc11::Val;

/// Seeds per property; generation is cheap and graphs are small.
const CASES: u64 = 300;

/// An abstract operation for the oracle generators.
#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(i64),
    Remove,
}

/// Mirrors the original proptest strategy: up to 24 operations, inserts of
/// small values and removes equally likely.
fn gen_ops(seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6f70_735f_6765_6e21);
    let len = rng.gen_index(24);
    (0..len)
        .map(|_| {
            if rng.gen_bool() {
                Op::Insert(rng.gen_range(0, 50) as i64)
            } else {
                Op::Remove
            }
        })
        .collect()
}

/// Runs `ops` through a sequential queue, building a totally-ordered
/// graph (every event sees all predecessors) with `visibility(i)` events
/// in each logview (a prefix, so logviews stay hb-closed).
fn queue_graph(ops: &[Op], full_visibility: bool) -> Graph<QueueEvent> {
    let mut g: Graph<QueueEvent> = Graph::new();
    let mut state: VecDeque<(i64, EventId)> = VecDeque::new();
    let mut step = 0u64;
    for op in ops {
        let id = g.next_id();
        let logview: BTreeSet<EventId> = if full_visibility {
            (0..=id.raw()).map(EventId::from_raw).collect()
        } else {
            [id].into_iter().collect()
        };
        step += 1;
        match op {
            Op::Insert(v) => {
                g.add_event(QueueEvent::Enq(Val::Int(*v)), 1, step, logview);
                state.push_back((*v, id));
            }
            Op::Remove => match state.pop_front() {
                Some((v, src)) => {
                    // A dequeue must happen-after its enqueue (SO-LHB):
                    // even with thin visibility, include the source's
                    // logview.
                    let mut lv = logview;
                    lv.insert(src);
                    lv.extend(g.event(src).logview.iter().copied());
                    g.add_event(QueueEvent::Deq(Val::Int(v)), 1, step, lv);
                    g.add_so(src, id);
                }
                None => {
                    g.add_event(QueueEvent::EmpDeq, 1, step, logview);
                }
            },
        }
    }
    g
}

fn stack_graph(ops: &[Op], full_visibility: bool) -> Graph<StackEvent> {
    let mut g: Graph<StackEvent> = Graph::new();
    let mut state: Vec<(i64, EventId)> = Vec::new();
    let mut step = 0u64;
    for op in ops {
        let id = g.next_id();
        let logview: BTreeSet<EventId> = if full_visibility {
            (0..=id.raw()).map(EventId::from_raw).collect()
        } else {
            [id].into_iter().collect()
        };
        step += 1;
        match op {
            Op::Insert(v) => {
                g.add_event(StackEvent::Push(Val::Int(*v)), 1, step, logview);
                state.push((*v, id));
            }
            Op::Remove => match state.pop() {
                Some((v, src)) => {
                    let mut lv = logview;
                    lv.insert(src);
                    lv.extend(g.event(src).logview.iter().copied());
                    g.add_event(StackEvent::Pop(Val::Int(v)), 1, step, lv);
                    g.add_so(src, id);
                }
                None => {
                    g.add_event(StackEvent::EmpPop, 1, step, logview);
                }
            },
        }
    }
    g
}

#[test]
fn sequential_queue_histories_are_consistent() {
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = queue_graph(&ops, true);
        assert!(
            check_queue_consistent(&g).is_ok(),
            "seed {seed}: {:?}",
            check_queue_consistent(&g)
        );
        // The identity order is a linearization witness.
        let order = compass::abs::commit_order(&g);
        assert!(
            validate_linearization(&g, &QueueInterp, &order).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn thin_visibility_queue_histories_are_consistent() {
    // Minimal logviews (only so edges) are weaker premises: the
    // conditions must still hold.
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = queue_graph(&ops, false);
        assert!(check_queue_consistent(&g).is_ok(), "seed {seed}");
        assert!(
            find_linearization(&g, &QueueInterp, &[]).is_some(),
            "seed {seed}"
        );
    }
}

#[test]
fn sequential_stack_histories_are_consistent() {
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = stack_graph(&ops, true);
        assert!(
            check_stack_consistent(&g).is_ok(),
            "seed {seed}: {:?}",
            check_stack_consistent(&g)
        );
        let order = compass::abs::commit_order(&g);
        assert!(
            validate_linearization(&g, &StackInterp, &order).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn corrupting_a_dequeue_value_is_caught() {
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = queue_graph(&ops, true);
        // Find a successful dequeue and corrupt its value to a fresh one.
        let victim = g
            .iter()
            .find(|(_, e)| matches!(e.ty, QueueEvent::Deq(_)))
            .map(|(id, _)| id);
        let Some(victim) = victim else { continue };
        let mut events: Vec<_> = g.iter().map(|(_, e)| e.clone()).collect();
        events[victim.index()].ty = QueueEvent::Deq(Val::Int(999));
        let mut g2: Graph<QueueEvent> = Graph::new();
        for e in events {
            g2.add_event(e.ty, e.tid, e.step, e.logview);
        }
        for &(a, b) in g.so() {
            g2.add_so(a, b);
        }
        assert!(check_queue_consistent(&g2).is_err(), "seed {seed}");
    }
}

#[test]
fn dropping_an_so_edge_is_caught() {
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = queue_graph(&ops, true);
        if g.so().is_empty() {
            continue;
        }
        let drop_edge = *g.so().iter().next().unwrap();
        let mut g2: Graph<QueueEvent> = Graph::new();
        for (_, e) in g.iter() {
            g2.add_event(e.ty, e.tid, e.step, e.logview.clone());
        }
        for &(a, b) in g.so() {
            if (a, b) != drop_edge {
                g2.add_so(a, b);
            }
        }
        // The orphaned dequeue violates injectivity (and usually FIFO).
        assert!(check_queue_consistent(&g2).is_err(), "seed {seed}");
    }
}

#[test]
fn linearization_search_is_sound() {
    // Whatever the search returns must validate.
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let g = queue_graph(&ops, false);
        if let Some(order) = find_linearization(&g, &QueueInterp, &[]) {
            assert!(
                validate_linearization(&g, &QueueInterp, &order).is_ok(),
                "seed {seed}"
            );
        }
        let s = stack_graph(&ops, false);
        if let Some(order) = find_linearization(&s, &StackInterp, &[]) {
            assert!(
                validate_linearization(&s, &StackInterp, &order).is_ok(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn prefix_graphs_stay_well_formed() {
    for seed in 0..CASES {
        let ops = gen_ops(seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6375_745f_7074);
        let cut = rng.gen_range(0, 30);
        let g = queue_graph(&ops, true);
        let p = g.prefix_at(cut);
        assert!(p.check_well_formed().is_ok(), "seed {seed} cut {cut}");
        assert!(check_queue_consistent(&p).is_ok(), "seed {seed} cut {cut}");
    }
}
