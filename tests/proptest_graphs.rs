//! Property-based tests for the Compass checkers: graphs generated from
//! sequential oracle runs are always accepted; targeted mutations are
//! always rejected; the linearization search is sound and agrees with the
//! oracle.

use std::collections::{BTreeSet, VecDeque};

use proptest::prelude::*;

use compass::history::{
    find_linearization, validate_linearization, QueueInterp, StackInterp,
};
use compass::queue_spec::{check_queue_consistent, QueueEvent};
use compass::stack_spec::{check_stack_consistent, StackEvent};
use compass::{EventId, Graph};
use orc11::Val;

/// An abstract operation for the oracle generators.
#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(i64),
    Remove,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..50).prop_map(Op::Insert),
            Just(Op::Remove),
        ],
        0..24,
    )
}

/// Runs `ops` through a sequential queue, building a totally-ordered
/// graph (every event sees all predecessors) with `visibility(i)` events
/// in each logview (a prefix, so logviews stay hb-closed).
fn queue_graph(ops: &[Op], full_visibility: bool) -> Graph<QueueEvent> {
    let mut g: Graph<QueueEvent> = Graph::new();
    let mut state: VecDeque<(i64, EventId)> = VecDeque::new();
    let mut step = 0u64;
    for op in ops {
        let id = g.next_id();
        let logview: BTreeSet<EventId> = if full_visibility {
            (0..=id.raw()).map(EventId::from_raw).collect()
        } else {
            [id].into_iter().collect()
        };
        step += 1;
        match op {
            Op::Insert(v) => {
                g.add_event(QueueEvent::Enq(Val::Int(*v)), 1, step, logview);
                state.push_back((*v, id));
            }
            Op::Remove => match state.pop_front() {
                Some((v, src)) => {
                    // A dequeue must happen-after its enqueue (SO-LHB):
                    // even with thin visibility, include the source's
                    // logview.
                    let mut lv = logview;
                    lv.insert(src);
                    lv.extend(g.event(src).logview.iter().copied());
                    g.add_event(QueueEvent::Deq(Val::Int(v)), 1, step, lv);
                    g.add_so(src, id);
                }
                None => {
                    g.add_event(QueueEvent::EmpDeq, 1, step, logview);
                }
            },
        }
    }
    g
}

fn stack_graph(ops: &[Op], full_visibility: bool) -> Graph<StackEvent> {
    let mut g: Graph<StackEvent> = Graph::new();
    let mut state: Vec<(i64, EventId)> = Vec::new();
    let mut step = 0u64;
    for op in ops {
        let id = g.next_id();
        let logview: BTreeSet<EventId> = if full_visibility {
            (0..=id.raw()).map(EventId::from_raw).collect()
        } else {
            [id].into_iter().collect()
        };
        step += 1;
        match op {
            Op::Insert(v) => {
                g.add_event(StackEvent::Push(Val::Int(*v)), 1, step, logview);
                state.push((*v, id));
            }
            Op::Remove => match state.pop() {
                Some((v, src)) => {
                    let mut lv = logview;
                    lv.insert(src);
                    lv.extend(g.event(src).logview.iter().copied());
                    g.add_event(StackEvent::Pop(Val::Int(v)), 1, step, lv);
                    g.add_so(src, id);
                }
                None => {
                    g.add_event(StackEvent::EmpPop, 1, step, logview);
                }
            },
        }
    }
    g
}

proptest! {
    #[test]
    fn sequential_queue_histories_are_consistent(ops in ops_strategy()) {
        let g = queue_graph(&ops, true);
        prop_assert!(check_queue_consistent(&g).is_ok(), "{:?}", check_queue_consistent(&g));
        // The identity order is a linearization witness.
        let order = compass::abs::commit_order(&g);
        prop_assert!(validate_linearization(&g, &QueueInterp, &order).is_ok());
    }

    #[test]
    fn thin_visibility_queue_histories_are_consistent(ops in ops_strategy()) {
        // Minimal logviews (only so edges) are weaker premises: the
        // conditions must still hold.
        let g = queue_graph(&ops, false);
        prop_assert!(check_queue_consistent(&g).is_ok());
        prop_assert!(find_linearization(&g, &QueueInterp, &[]).is_some());
    }

    #[test]
    fn sequential_stack_histories_are_consistent(ops in ops_strategy()) {
        let g = stack_graph(&ops, true);
        prop_assert!(check_stack_consistent(&g).is_ok(), "{:?}", check_stack_consistent(&g));
        let order = compass::abs::commit_order(&g);
        prop_assert!(validate_linearization(&g, &StackInterp, &order).is_ok());
    }

    #[test]
    fn corrupting_a_dequeue_value_is_caught(ops in ops_strategy()) {
        let g = queue_graph(&ops, true);
        // Find a successful dequeue and corrupt its value to a fresh one.
        let victim = g.iter().find(|(_, e)| matches!(e.ty, QueueEvent::Deq(_))).map(|(id, _)| id);
        prop_assume!(victim.is_some());
        let victim = victim.unwrap();
        let mut events: Vec<_> = g.iter().map(|(_, e)| e.clone()).collect();
        events[victim.index()].ty = QueueEvent::Deq(Val::Int(999));
        let mut g2: Graph<QueueEvent> = Graph::new();
        for e in events {
            g2.add_event(e.ty, e.tid, e.step, e.logview);
        }
        for &(a, b) in g.so() {
            g2.add_so(a, b);
        }
        prop_assert!(check_queue_consistent(&g2).is_err());
    }

    #[test]
    fn dropping_an_so_edge_is_caught(ops in ops_strategy()) {
        let g = queue_graph(&ops, true);
        prop_assume!(!g.so().is_empty());
        let drop_edge = *g.so().iter().next().unwrap();
        let mut g2: Graph<QueueEvent> = Graph::new();
        for (_, e) in g.iter() {
            g2.add_event(e.ty, e.tid, e.step, e.logview.clone());
        }
        for &(a, b) in g.so() {
            if (a, b) != drop_edge {
                g2.add_so(a, b);
            }
        }
        // The orphaned dequeue violates injectivity (and usually FIFO).
        prop_assert!(check_queue_consistent(&g2).is_err());
    }

    #[test]
    fn linearization_search_is_sound(ops in ops_strategy()) {
        // Whatever the search returns must validate.
        let g = queue_graph(&ops, false);
        if let Some(order) = find_linearization(&g, &QueueInterp, &[]) {
            prop_assert!(validate_linearization(&g, &QueueInterp, &order).is_ok());
        }
        let s = stack_graph(&ops, false);
        if let Some(order) = find_linearization(&s, &StackInterp, &[]) {
            prop_assert!(validate_linearization(&s, &StackInterp, &order).is_ok());
        }
    }

    #[test]
    fn prefix_graphs_stay_well_formed(ops in ops_strategy(), cut in 0u64..30) {
        let g = queue_graph(&ops, true);
        let p = g.prefix_at(cut);
        prop_assert!(p.check_well_formed().is_ok());
        prop_assert!(check_queue_consistent(&p).is_ok());
    }
}
