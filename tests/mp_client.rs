//! Integration: the Message-Passing client of Figure 1/3 across queue
//! implementations, with random and bounded-exhaustive exploration.

use compass_repro::structures::clients::{check_mp, run_mp};
use compass_repro::structures::queue::{HwQueue, MsQueue};
use orc11::{random_strategy, Explorer};

#[test]
fn mp_ms_queue_random() {
    for seed in 0..200 {
        let out = run_mp(MsQueue::new, true, random_strategy(seed));
        let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_mp(&res, true).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn mp_hw_queue_random() {
    for seed in 0..200 {
        let out = run_mp(|ctx| HwQueue::new(ctx, 4), true, random_strategy(seed));
        let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_mp(&res, true).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn mp_hw_queue_bounded_dfs() {
    // Bounded-exhaustive exploration of the full client. The tree is too
    // large to exhaust in a unit test, but every execution DFS visits
    // must satisfy the MP property.
    use std::sync::atomic::{AtomicU64, Ordering};
    let checked = AtomicU64::new(0);
    let report = Explorer::default().dfs(
        3_000,
        |strategy| run_mp(|ctx| HwQueue::new(ctx, 4), true, strategy),
        |desc, out| {
            let res = out
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{desc}: {e}"));
            check_mp(res, true).unwrap_or_else(|e| panic!("{desc}: {e}"));
            checked.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(report.error_count, 0);
    assert!(checked.load(Ordering::Relaxed) >= 3_000 || report.exhausted);
}

#[test]
fn mp_right_thread_sees_both_outcomes() {
    // Sanity: across seeds the right thread really gets both 41 and 42
    // (i.e. the middle thread sometimes steals 41 first).
    use orc11::Val;
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..300 {
        let out = run_mp(MsQueue::new, true, random_strategy(seed));
        if let Ok(res) = out.result {
            if let Some(v) = res.right_value {
                seen.insert(v);
            }
        }
    }
    assert!(seen.contains(&Val::Int(41)), "right thread never saw 41");
    assert!(seen.contains(&Val::Int(42)), "right thread never saw 42");
}

#[test]
fn mp_deq_perm_invariant() {
    // The Figure 3 client invariant: at most two successful dequeues ever
    // exist (size(G.so) <= 2), and the right thread's dequeue is one of
    // them.
    for seed in 0..200 {
        let out = run_mp(MsQueue::new, true, random_strategy(seed));
        let res = out.result.unwrap();
        assert!(res.graph.so().len() <= 2, "seed {seed}: deqPerm exceeded");
        assert!(res.right_value.is_some());
    }
}
