//! Integration: the "weaker but flexible" claims of §3.1 and §4.2.
//!
//! * A client that adds enough external synchronization (a lock around
//!   every queue operation) makes lhb total and *regains the strong,
//!   SC-style FIFO condition* from the weak QUEUE-FIFO: matched dequeues
//!   occur in enqueue order, with `(d1, d2) ∈ lhb`.
//! * The exchanger's synchronized-with edges support *resource transfer*:
//!   a thread that receives a buffer through an exchange may access it
//!   non-atomically, race-free.

use compass::queue_spec::QueueEvent;
use compass_repro::structures::exchanger::Exchanger;
use compass_repro::structures::lock::{check_lock_consistent, SpinLock};
use compass_repro::structures::queue::{HwQueue, ModelQueue};
use orc11::{random_strategy, run_model, BodyFn, Config, Mode, ThreadCtx, Val};

#[test]
fn external_synchronization_recovers_strong_fifo() {
    // The relaxed HW queue guarantees only the weak QUEUE-FIFO. Drive it
    // through a lock: every operation's commit is ordered by lhb, and the
    // strong FIFO condition ((d1, d2) ∈ lhb, dequeues in enqueue order)
    // must hold on every execution.
    for seed in 0..150 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| (HwQueue::new(ctx, 8), SpinLock::new(ctx)),
            vec![
                Box::new(|ctx: &mut ThreadCtx, (q, l): &(HwQueue, SpinLock)| {
                    l.with(ctx, |ctx| q.enqueue(ctx, Val::Int(1)));
                    l.with(ctx, |ctx| q.enqueue(ctx, Val::Int(2)));
                }) as BodyFn<'_, _, ()>,
                Box::new(|ctx: &mut ThreadCtx, (q, l): &(HwQueue, SpinLock)| {
                    l.with(ctx, |ctx| q.enqueue(ctx, Val::Int(3)));
                    l.with(ctx, |ctx| {
                        q.try_dequeue(ctx);
                    });
                }),
                Box::new(|ctx: &mut ThreadCtx, (q, l): &(HwQueue, SpinLock)| {
                    l.with(ctx, |ctx| {
                        q.try_dequeue(ctx);
                    });
                    l.with(ctx, |ctx| {
                        q.try_dequeue(ctx);
                    });
                }),
            ],
            |_, (q, l), _| (q.obj().snapshot(), l.obj().snapshot()),
        );
        let (g, lg) = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_lock_consistent(&lg).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        compass::queue_spec::check_queue_consistent(&g)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));

        // Under total external order, lhb among operations is total...
        let events: Vec<_> = g.iter().map(|(id, _)| id).collect();
        for &a in &events {
            for &b in &events {
                if a != b {
                    assert!(
                        g.lhb(a, b) || g.lhb(b, a),
                        "seed {seed}: {a} and {b} unordered despite the lock"
                    );
                }
            }
        }
        // ...so the STRONG FIFO condition holds: matched dequeues in
        // enqueue order, ordered by lhb (the §3.1 "regained" condition).
        for &(e1, d1) in g.so() {
            for &(e2, d2) in g.so() {
                if e1 != e2 && g.lhb(e1, e2) {
                    assert!(
                        g.lhb(d1, d2),
                        "seed {seed}: strong FIFO violated: {e1}→{e2} but not {d1}→{d2}"
                    );
                }
            }
        }
        // And empty dequeues now really mean empty at their commit point:
        // the commit order replays sequentially INCLUDING EmpDeq events.
        let mut st = std::collections::VecDeque::new();
        for (_, ev) in g.iter() {
            match ev.ty {
                QueueEvent::Enq(v) => st.push_back(v),
                QueueEvent::Deq(v) => {
                    assert_eq!(st.pop_front(), Some(v), "seed {seed}");
                }
                QueueEvent::EmpDeq => assert!(st.is_empty(), "seed {seed}"),
            }
        }
    }
}

#[test]
fn exchanger_transfers_resources() {
    // Each thread allocates a private buffer, fills it non-atomically,
    // and offers the buffer's location on the exchanger. On success it
    // owns the partner's buffer and reads/writes it non-atomically.
    // Race-freedom across seeds is the resource-transfer guarantee the
    // full exchanger spec derives (§4.2).
    let mut matched = 0u64;
    for seed in 0..200 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            Exchanger::new,
            (0..2)
                .map(|i| {
                    Box::new(move |ctx: &mut ThreadCtx, x: &Exchanger| {
                        let buf = ctx.alloc("buf", Val::Int(0));
                        ctx.write(buf, Val::Int(100 + i), Mode::NonAtomic);
                        let (got, _) = x.exchange_loc(ctx, buf, 4);
                        match got {
                            Some(theirs) => {
                                // We own the partner's buffer now:
                                // non-atomic access must be race-free.
                                let received = ctx.read(theirs, Mode::NonAtomic);
                                ctx.write(
                                    theirs,
                                    Val::Int(received.expect_int() * 2),
                                    Mode::NonAtomic,
                                );
                                Some(received)
                            }
                            None => None,
                        }
                    }) as BodyFn<'_, _, Option<Val>>
                })
                .collect(),
            |_, x, outs| {
                compass::exchanger_spec::check_exchanger_consistent(&x.obj().snapshot()).unwrap();
                outs
            },
        );
        let outs = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        match (&outs[0], &outs[1]) {
            (Some(a), Some(b)) => {
                assert_eq!(*a, Val::Int(101), "thread 0 received thread 1's buffer");
                assert_eq!(*b, Val::Int(100), "thread 1 received thread 0's buffer");
                matched += 1;
            }
            (None, None) => {}
            other => panic!("seed {seed}: half-matched exchange {other:?}"),
        }
    }
    assert!(matched > 0, "some seeds should match");
}
