//! Integration: a fork-join client of the Chase-Lev deque — every task
//! is executed exactly once, across owner pops and thief steals, and the
//! deque's graph stays consistent and linearizable.

use compass::deque_spec::{check_deque_consistent, DequeEvent, DequeInterp};
use compass::history::{find_linearization, validate_linearization};
use compass_repro::structures::deque::{ChaseLevDeque, Steal};
use orc11::{pct_strategy, random_strategy, run_model, BodyFn, Config, Strategy, ThreadCtx, Val};

fn run_forkjoin(
    strategy: Box<dyn Strategy>,
) -> orc11::RunOutcome<(Vec<i64>, compass::Graph<DequeEvent>)> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| ChaseLevDeque::new(ctx, 8),
        vec![
            // Owner: distribute 4 tasks, then help drain.
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                let mut done = Vec::new();
                for i in 1..=4i64 {
                    d.push(ctx, Val::Int(i));
                }
                while let Some(v) = d.pop(ctx).0 {
                    done.push(v.expect_int());
                }
                done
            }) as BodyFn<'_, _, Vec<i64>>,
            // Thieves: steal until the deque looks empty twice in a row.
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                let mut done = Vec::new();
                let mut dry = 0;
                while dry < 2 {
                    match d.steal(ctx) {
                        Steal::Stolen(v, _) => {
                            done.push(v.expect_int());
                            dry = 0;
                        }
                        Steal::Empty(_) => dry += 1,
                        Steal::Raced => {}
                    }
                }
                done
            }),
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                let mut done = Vec::new();
                if let Steal::Stolen(v, _) = d.steal(ctx) {
                    done.push(v.expect_int());
                }
                done
            }),
        ],
        |_, d, outs| (outs.concat(), d.obj().snapshot()),
    )
}

#[test]
fn every_task_executed_exactly_once() {
    for seed in 0..150 {
        let out = run_forkjoin(random_strategy(seed));
        let (mut done, g) = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_deque_consistent(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}\n{g}"));
        // Graph-level conservation: 4 pushes, all matched.
        let pushes = g
            .iter()
            .filter(|(_, e)| matches!(e.ty, DequeEvent::Push(_)))
            .count();
        assert_eq!(pushes, 4, "seed {seed}");
        // Not all tasks are necessarily popped before the owner's drain
        // ends (a thief may hold the last one), but nothing is lost or
        // duplicated among the completions.
        done.sort_unstable();
        done.dedup();
        assert_eq!(
            done.len(),
            g.so().len(),
            "seed {seed}: completions and so edges must agree"
        );
        for &(p, t) in g.so() {
            assert!(g.lhb(p, t), "seed {seed}: taker not synchronized");
        }
    }
}

#[test]
fn forkjoin_linearizable_under_pct() {
    for seed in 0..150 {
        let out = run_forkjoin(pct_strategy(seed, 3, 50));
        let (_, g) = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_deque_consistent(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}\n{g}"));
        // LAT_hist on the mutator subgraph: Chase-Lev's empty results are
        // advisory and not linearizable against the naive sequential
        // deque (the owner's reservation straddles them).
        let m = compass::deque_spec::mutator_subgraph(&g);
        let to = find_linearization(&m, &DequeInterp, &[])
            .unwrap_or_else(|| panic!("seed {seed}: no linearization\n{m}"));
        validate_linearization(&m, &DequeInterp, &to)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}
