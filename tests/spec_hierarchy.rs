//! Integration: the Figure 2 spec hierarchy, measured (experiment E2).
//!
//! * The release/acquire Michael-Scott queue satisfies every style, up to
//!   and including abstract-state construction at commit points
//!   (`LAT_hb^abs`).
//! * The relaxed Herlihy-Wing queue satisfies the graph-based styles on
//!   every execution, but its commit order is *not* always a sequential
//!   history — the paper's motivation for `LAT_hb` (§3.2).
//! * The deliberately weakened variants fail the graph conditions, each
//!   on its specific clause.

use compass_repro::structures::buggy::{RelaxedHwQueue, RelaxedMsQueue};
use compass_repro::structures::queue::{HwQueue, MsQueue};

use compass::abs::replay_commit_order;
use compass::history::{find_linearization, QueueInterp};
use compass::queue_spec::{check_queue_consistent, check_queue_consistent_prefixes};
use orc11::{random_strategy, run_model, BodyFn, Config, ThreadCtx, Val};

fn run_workload<Q: compass_repro::structures::queue::ModelQueue>(
    make: impl Fn(&mut ThreadCtx) -> Q,
    seed: u64,
) -> compass::Graph<compass::queue_spec::QueueEvent> {
    run_model(
        &Config::default(),
        random_strategy(seed),
        |ctx| make(ctx),
        vec![
            Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                q.enqueue(ctx, Val::Int(1));
                q.enqueue(ctx, Val::Int(2));
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                q.enqueue(ctx, Val::Int(3));
                q.try_dequeue(ctx);
            }),
            Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                q.try_dequeue(ctx);
                q.try_dequeue(ctx);
            }),
        ],
        |_, q, _| q.obj().snapshot(),
    )
    .result
    .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

#[test]
fn ms_satisfies_all_styles_including_prefixes() {
    for seed in 0..80 {
        let g = run_workload(MsQueue::new, seed);
        check_queue_consistent_prefixes(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        replay_commit_order(&g, &QueueInterp).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        assert!(find_linearization(&g, &QueueInterp, &[]).is_some());
    }
}

#[test]
fn hw_satisfies_graph_styles_on_every_run() {
    for seed in 0..200 {
        let g = run_workload(|ctx| HwQueue::new(ctx, 8), seed);
        check_queue_consistent(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn hw_commit_order_not_always_sequential() {
    let mut abs_failures = 0;
    for seed in 0..400 {
        let g = run_workload(|ctx| HwQueue::new(ctx, 8), seed);
        if replay_commit_order(&g, &QueueInterp).is_err() {
            abs_failures += 1;
            // But even those executions satisfy the graph conditions...
            check_queue_consistent(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // ...and usually still admit a reordered linearization.
            let _ = find_linearization(&g, &QueueInterp, &[]);
        }
    }
    assert!(
        abs_failures > 0,
        "HW queue commit order should fail sequential replay on some runs \
         (the §3.2 phenomenon)"
    );
}

#[test]
fn buggy_variants_fall_off_the_hierarchy() {
    let mut ms_bad = 0;
    let mut hw_bad = 0;
    for seed in 0..300 {
        if check_queue_consistent(&run_workload(RelaxedMsQueue::new, seed)).is_err() {
            ms_bad += 1;
        }
        if check_queue_consistent(&run_workload(|ctx| RelaxedHwQueue::new(ctx, 8), seed)).is_err() {
            hw_bad += 1;
        }
    }
    assert!(ms_bad > 0, "all-relaxed MS queue should violate LAT_hb");
    assert!(hw_bad > 0, "relaxed-tail HW queue should violate LAT_hb");
}
