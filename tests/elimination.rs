//! Integration: compositional verification of the elimination stack (§4)
//! — the ES graph is consistent, built only from the base stack's and
//! exchanger's hooked commits, and eliminated pairs are atomic.

use compass::exchanger_spec::check_exchanger_consistent;
use compass::history::{check_linearizable, StackInterp};
use compass::stack_spec::{check_stack_consistent, StackEvent};
use compass_repro::structures::stack::{ElimStack, ModelStack, TryPop};
use orc11::{random_strategy, run_model, BodyFn, Config, ThreadCtx, Val};

type Graphs = (
    compass::Graph<StackEvent>,
    compass::Graph<StackEvent>,
    compass::Graph<compass::exchanger_spec::ExchangeEvent>,
);

fn run_es(seed: u64, patience: u32) -> Graphs {
    run_model(
        &Config::default(),
        random_strategy(seed),
        |ctx| ElimStack::new(ctx, patience),
        vec![
            Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                s.push(ctx, Val::Int(10));
                s.push(ctx, Val::Int(11));
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                s.pop(ctx);
                s.pop(ctx);
            }),
            Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                s.push(ctx, Val::Int(30));
                s.pop(ctx);
            }),
        ],
        |_, s, _| {
            (
                s.obj().snapshot(),
                s.base_obj().snapshot(),
                s.exchanger_obj().snapshot(),
            )
        },
    )
    .result
    .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

#[test]
fn es_and_sublibraries_consistent_across_seeds() {
    for seed in 0..150 {
        let (es, base, ex) = run_es(seed, 3);
        check_stack_consistent(&es).unwrap_or_else(|v| panic!("seed {seed} ES: {v}"));
        check_linearizable(&es, &StackInterp).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        check_stack_consistent(&base).unwrap_or_else(|v| panic!("seed {seed} base: {v}"));
        check_exchanger_consistent(&ex).unwrap_or_else(|v| panic!("seed {seed} ex: {v}"));
    }
}

#[test]
fn eliminated_pairs_are_atomic_and_matched() {
    let mut eliminated_total = 0u64;
    for seed in 0..250 {
        let (es, base, _) = run_es(seed, 4);
        // ES events beyond the base-born ones come from eliminations, in
        // (push, pop) pairs sharing a commit step.
        let base_count = base.len();
        let es_events: Vec<_> = es.iter().collect();
        assert!(es_events.len() >= base_count);
        let extra = es_events.len() - base_count;
        assert_eq!(extra % 2, 0, "eliminations commit in pairs");
        eliminated_total += (extra / 2) as u64;
        for &(a, b) in es.so() {
            let (pa, ob) = (es.event(a), es.event(b));
            if pa.step == ob.step {
                // An eliminated pair: same instruction, mutual logviews,
                // matching values.
                assert!(pa.logview.contains(&b) && ob.logview.contains(&a));
                match (&pa.ty, &ob.ty) {
                    (StackEvent::Push(v), StackEvent::Pop(w)) => assert_eq!(v, w),
                    other => panic!("bad eliminated pair {other:?}"),
                }
            }
        }
    }
    assert!(
        eliminated_total > 0,
        "the elimination path should trigger across 250 seeds"
    );
}

#[test]
fn es_sequential_behaviour() {
    let out = run_model(
        &Config::default(),
        random_strategy(0),
        |ctx| ElimStack::new(ctx, 2),
        Vec::<BodyFn<'_, _, ()>>::new(),
        |ctx, s, _| {
            assert!(matches!(s.try_pop(ctx), TryPop::Empty(_)));
            assert!(s.try_push(ctx, Val::Int(1)).is_some());
            assert!(s.try_push(ctx, Val::Int(2)).is_some());
            match s.try_pop(ctx) {
                TryPop::Popped(v, _) => assert_eq!(v, Val::Int(2)),
                other => panic!("{other:?}"),
            }
            match s.try_pop(ctx) {
                TryPop::Popped(v, _) => assert_eq!(v, Val::Int(1)),
                other => panic!("{other:?}"),
            }
        },
    );
    out.result.unwrap();
}
