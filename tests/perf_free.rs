//! Proves the per-op perf instrumentation is free when not measuring.
//!
//! Two regimes to prove (acceptance criteria of DESIGN.md §9):
//!
//! 1. **Compiled out**: without `feature = "perf"`,
//!    `compass_native::perf::op` is an `#[inline(always)]` pass-through
//!    — there is no timing code in the binary. That leg is enforced by
//!    construction (the feature is off by default and `cargo build
//!    --release` never enables it); this test binary necessarily builds
//!    with the feature on (the `compass-bench` dev-dependency enables
//!    it for `e12_perf`, and cargo unifies features across the test
//!    build graph).
//! 2. **On but idle**: with the feature compiled in but no session
//!    active, a full checker run — reports and replay bundles — must be
//!    byte-identical to a run with a recording session active, at 1 and
//!    4 threads, mirroring `tests/parallel_determinism.rs`'s
//!    tracing-on/off check. Model-level exploration never touches the
//!    native hooks, so an active session records nothing from it; this
//!    pins that arming the hooks perturbs neither reports nor bundles.
//!
//! The session-semantics tests (exact counts, epoch hygiene) also live
//! here rather than in `compass-native`, because that crate's stress
//! tests hammer instrumented trait methods concurrently; in this binary
//! a static mutex serializes every session user.

use std::sync::Mutex;

use compass::checker::{check_executions_with, CheckOptions, Exploration};
use compass::queue_spec::check_queue_consistent;
use compass_native::perf::{self, LatencyHist, OpKind};
use compass_repro::structures::buggy::RelaxedMsQueue;
use compass_repro::structures::queue::ModelQueue;
use orc11::{run_model, BodyFn, Config, Json, ThreadCtx};

/// Serializes the perf session (a global) across this binary's tests.
static SESSION: Mutex<()> = Mutex::new(());

/// The checker report with wall-clock fields pinned, as in
/// `tests/parallel_determinism.rs`.
fn normalized(report: &compass::checker::CheckReport) -> String {
    report
        .to_json()
        .set("check_ns", 0u64)
        .set("check_ns_by_rule", Json::obj())
        .set("phase_ns", orc11::PhaseNs::ZERO.to_json())
        .render_pretty()
}

/// Every file under `dir`, as sorted `(relative path, bytes)`.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("readable bundle dir") {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p
                    .strip_prefix(dir)
                    .expect("path under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&p).expect("readable bundle file")));
            }
        }
    }
    out.sort();
    out
}

fn check_buggy_queue(
    threads: usize,
    bundle_root: &std::path::Path,
) -> (String, Vec<(String, Vec<u8>)>) {
    let exploration = Exploration::Random {
        iters: 120,
        seed0: 0,
    };
    let opts = CheckOptions {
        threads,
        bundle_dir: Some(bundle_root.to_path_buf()),
        ..CheckOptions::default()
    };
    let report = check_executions_with(
        &exploration,
        &opts,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                RelaxedMsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.enqueue(ctx, orc11::Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        check_queue_consistent,
    );
    let bundle = report.bundle.clone().expect("buggy queue writes a bundle");
    (normalized(&report), dir_contents(&bundle))
}

/// The acceptance-criteria check: a perf recording session left armed
/// during a checker run changes neither the (wall-clock-normalized)
/// report nor a single byte of the replay bundle, at 1 and 4 threads.
#[test]
fn perf_session_on_and_off_runs_are_byte_identical() {
    let _guard = SESSION.lock().unwrap();
    let tmp = std::env::temp_dir().join(format!("compass-perf-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    for threads in [1usize, 4] {
        assert!(!perf::active());
        let (off_report, off_bundle) =
            check_buggy_queue(threads, &tmp.join(format!("off-{threads}")));

        perf::start();
        let (on_report, on_bundle) = check_buggy_queue(threads, &tmp.join(format!("on-{threads}")));
        let recorded = perf::finish();
        assert!(
            recorded.is_empty(),
            "model exploration must not feed native perf hooks: {recorded:?}"
        );

        assert_eq!(
            off_report, on_report,
            "an armed perf session changed the report at {threads} threads"
        );
        assert_eq!(
            off_bundle, on_bundle,
            "an armed perf session changed the replay bundle at {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn idle_hooks_pass_through_and_sessions_collect_exact_counts() {
    let _guard = SESSION.lock().unwrap();
    // Idle: plain pass-through.
    assert!(!perf::active());
    assert_eq!(perf::op(OpKind::QueueEnq, || 41 + 1), 42);

    perf::start();
    assert!(perf::active());
    for _ in 0..10 {
        perf::op(OpKind::QueueEnq, || std::hint::black_box(7u64));
    }
    perf::op(OpKind::StackPop, || ());
    let by_kind = perf::finish();
    assert!(!perf::active());
    let count = |kind: OpKind| {
        by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h.count())
            .unwrap_or(0)
    };
    assert_eq!(count(OpKind::QueueEnq), 10);
    assert_eq!(count(OpKind::StackPop), 1);
    assert_eq!(by_kind.len(), 2, "only recorded kinds are returned");

    // After finish(), hooks are pass-throughs again and a fresh session
    // starts empty.
    assert_eq!(perf::op(OpKind::QueueDeq, || 3), 3);
    perf::start();
    assert!(
        perf::finish().is_empty(),
        "stale data leaked across sessions"
    );
}

#[test]
fn worker_threads_merge_and_stale_epochs_are_discarded() {
    let _guard = SESSION.lock().unwrap();
    // Session 1: a worker records and flushes; another records but does
    // NOT flush before the session ends.
    perf::start();
    let (recorded_tx, recorded_rx) = std::sync::mpsc::channel();
    let unflushed = std::thread::spawn(move || {
        perf::op(OpKind::Exchange, || ());
        recorded_tx.send(()).unwrap();
        // No flush_thread(): this thread's data must not leak into a
        // later session.
        std::thread::park();
        perf::flush_thread();
    });
    // The unflushed thread has recorded under session 1's epoch.
    recorded_rx.recv().unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..100 {
                    perf::op(OpKind::StackPush, || std::hint::black_box(1u64));
                }
                perf::flush_thread();
            });
        }
    });
    let by_kind = perf::finish();
    let pushes = by_kind
        .iter()
        .find(|(k, _)| *k == OpKind::StackPush)
        .map(|(_, h)| h.count());
    assert_eq!(pushes, Some(400), "4 workers x 100 ops merge");

    // Session 2: the parked thread finally flushes its session-1 data —
    // the epoch check must discard it.
    perf::start();
    unflushed.thread().unpark();
    unflushed.join().unwrap();
    let by_kind = perf::finish();
    assert!(
        by_kind.iter().all(|(k, _)| *k != OpKind::Exchange),
        "stale-epoch flush leaked into a later session: {by_kind:?}"
    );
}

#[test]
fn recorded_histograms_hold_real_latencies() {
    let _guard = SESSION.lock().unwrap();
    perf::start();
    for _ in 0..50 {
        perf::op(OpKind::SpscPush, || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
    }
    let by_kind = perf::finish();
    let (_, h) = by_kind
        .iter()
        .find(|(k, _)| *k == OpKind::SpscPush)
        .expect("spsc_push recorded");
    assert_eq!(h.count(), 50);
    assert!(h.p50() <= h.p99() && h.p99() <= h.p999() && h.p999() <= h.max_ns());
    // Merge into an independent hist works across the API boundary.
    let mut total = LatencyHist::new();
    total.merge(h);
    assert_eq!(total.count(), 50);
}
