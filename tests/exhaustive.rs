//! Bounded-exhaustive verification: tiny instances of every structure,
//! explored over *every* schedule the model admits.
//!
//! These are the closest executable analogue to the paper's theorems: at
//! these sizes the claim "consistent on every execution" is not sampled
//! but total (within the model's scheduler granularity).

use compass::checker::{check_executions, Exploration};
use compass::deque_spec::{check_deque_consistent, mutator_subgraph, DequeInterp};
use compass::exchanger_spec::check_exchanger_consistent;
use compass::history::{find_linearization, QueueInterp, StackInterp};
use compass::queue_spec::check_queue_consistent_prefixes;
use compass::spec::Violation;
use compass::stack_spec::check_stack_consistent_prefixes;
use compass_repro::structures::deque::ChaseLevDeque;
use compass_repro::structures::exchanger::Exchanger;
use compass_repro::structures::queue::{HwQueue, ModelQueue, MsQueue};
use compass_repro::structures::stack::{ModelStack, TreiberStack};
use orc11::{run_model, BodyFn, Config, ThreadCtx, Val};

const DFS: Exploration = Exploration::Dfs { budget: 400_000 };

fn lin_violation() -> Violation {
    Violation::new("HIST-LINEARIZABLE", "no linearization", vec![])
}

#[test]
fn ms_queue_one_enq_one_deq_exhaustive() {
    let report = check_executions(
        &DFS,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                MsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                        q.enqueue(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        |g| {
            check_queue_consistent_prefixes(g)?;
            compass::abs::replay_commit_order(g, &QueueInterp)?;
            Ok(())
        },
    );
    assert!(report.exhausted, "should exhaust: {report}");
    report.assert_clean();
    // Plain DFS sees a nontrivial tree here; under COMPASS_DPOR=1 the
    // same tree legitimately prunes to a handful of representatives.
    assert!(
        report.execs > if report.dpor.is_some() { 1 } else { 10 },
        "nontrivial tree: {report}"
    );
}

#[test]
fn hw_queue_one_enq_two_deq_exhaustive() {
    let report = check_executions(
        &DFS,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| HwQueue::new(ctx, 2),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.enqueue(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.try_dequeue(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        check_queue_consistent_prefixes,
    );
    assert!(report.exhausted, "should exhaust: {report}");
    report.assert_clean();
}

#[test]
fn treiber_one_push_one_pop_exhaustive() {
    let report = check_executions(
        &DFS,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                TreiberStack::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &TreiberStack| {
                        s.push(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &TreiberStack| {
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| s.obj().snapshot(),
            )
        },
        |g| {
            check_stack_consistent_prefixes(g)?;
            find_linearization(g, &StackInterp, &[])
                .map(|_| ())
                .ok_or_else(lin_violation)
        },
    );
    assert!(report.exhausted, "should exhaust: {report}");
    report.assert_clean();
}

#[test]
fn exchanger_pair_exhaustive() {
    let report = check_executions(
        &DFS,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                Exchanger::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, x: &Exchanger| {
                        x.exchange(ctx, Val::Int(1), 1);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, x: &Exchanger| {
                        x.exchange(ctx, Val::Int(2), 1);
                    }),
                ],
                |_, x, _| x.obj().snapshot(),
            )
        },
        check_exchanger_consistent,
    );
    assert!(report.exhausted, "should exhaust: {report}");
    report.assert_clean();
}

#[test]
fn chase_lev_push_pop_steal_exhaustive() {
    let report = check_executions(
        &DFS,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| ChaseLevDeque::new(ctx, 2),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.push(ctx, Val::Int(1));
                        d.pop(ctx);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                ],
                |_, d, _| d.obj().snapshot(),
            )
        },
        |g| {
            check_deque_consistent(g)?;
            find_linearization(&mutator_subgraph(g), &DequeInterp, &[])
                .map(|_| ())
                .ok_or_else(lin_violation)
        },
    );
    assert!(report.exhausted, "should exhaust: {report}");
    report.assert_clean();
}
