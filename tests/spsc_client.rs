//! Integration: the SPSC client of §3.2 — end-to-end FIFO transfer.

use compass_repro::structures::clients::{check_spsc, run_spsc};
use orc11::{random_strategy, Explorer};

#[test]
fn spsc_random_sweep() {
    for n in [1usize, 2, 4, 8] {
        for seed in 0..60 {
            let out = run_spsc(n, random_strategy(seed));
            let res = out
                .result
                .unwrap_or_else(|e| panic!("n={n} seed={seed}: {e}"));
            check_spsc(&res, n).unwrap_or_else(|e| panic!("n={n} seed={seed}: {e}"));
        }
    }
}

#[test]
fn spsc_exhaustive_small() {
    // n = 1 is small enough to exhaust the scheduler tree completely.
    let report = Explorer::default().dfs(
        50_000,
        |strategy| run_spsc(1, strategy),
        |desc, out| {
            let res = out
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{desc}: {e}"));
            check_spsc(res, 1).unwrap_or_else(|e| panic!("{desc}: {e}"));
        },
    );
    assert!(
        report.exhausted,
        "n=1 SPSC should be fully explorable: {report}"
    );
    assert_eq!(report.error_count, 0);
}

#[test]
fn spsc_graph_shape() {
    // The graph has exactly n enqueues and n dequeues, fully matched.
    use compass::queue_spec::QueueEvent;
    let n = 4;
    let out = run_spsc(n, random_strategy(17));
    let res = out.result.unwrap();
    let enqs = res
        .graph
        .iter()
        .filter(|(_, e)| matches!(e.ty, QueueEvent::Enq(_)))
        .count();
    let deqs = res
        .graph
        .iter()
        .filter(|(_, e)| matches!(e.ty, QueueEvent::Deq(_)))
        .count();
    assert_eq!(enqs, n);
    assert_eq!(deqs, n);
    assert_eq!(res.graph.so().len(), n);
}
