//! Integration: the §2.2 two-queue client protocol.
//!
//! "With an invariant that ties together two queues by a relation R ...
//! we can verify clients that use the two queues and adhere to the
//! protocol R. For example, R may require ... that one queue contains
//! only odd numbers and the other contains only even numbers."
//!
//! The router threads below maintain exactly that protocol; the final
//! graphs prove they adhered to it (every enqueue in q₁ is odd, every
//! enqueue in q₂ even), and both queues independently satisfy
//! `QueueConsistent` — composing two logically atomic libraries under one
//! client invariant.

use compass::queue_spec::{check_queue_consistent, QueueEvent};
use compass_repro::structures::queue::{ModelQueue, MsQueue};
use orc11::{random_strategy, run_model, BodyFn, Config, ThreadCtx, Val};

#[test]
fn odd_even_protocol_is_maintained() {
    for seed in 0..100 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| (MsQueue::new(ctx), MsQueue::new(ctx)),
            vec![
                // Two routers: each takes a batch of numbers and routes
                // odds to q1, evens to q2.
                Box::new(|ctx: &mut ThreadCtx, (q1, q2): &(MsQueue, MsQueue)| {
                    for v in 1..=4i64 {
                        if v % 2 == 1 {
                            q1.enqueue(ctx, Val::Int(v));
                        } else {
                            q2.enqueue(ctx, Val::Int(v));
                        }
                    }
                }) as BodyFn<'_, _, ()>,
                Box::new(|ctx: &mut ThreadCtx, (q1, q2): &(MsQueue, MsQueue)| {
                    for v in 5..=8i64 {
                        if v % 2 == 1 {
                            q1.enqueue(ctx, Val::Int(v));
                        } else {
                            q2.enqueue(ctx, Val::Int(v));
                        }
                    }
                }),
                // A consumer draining both, asserting the protocol on the
                // values it sees.
                Box::new(|ctx: &mut ThreadCtx, (q1, q2): &(MsQueue, MsQueue)| {
                    for _ in 0..3 {
                        if let (Some(v), _) = q1.try_dequeue(ctx) {
                            assert_eq!(v.expect_int() % 2, 1, "q1 must hold odds");
                        }
                        if let (Some(v), _) = q2.try_dequeue(ctx) {
                            assert_eq!(v.expect_int() % 2, 0, "q2 must hold evens");
                        }
                    }
                }),
            ],
            |_, (q1, q2), _| (q1.obj().snapshot(), q2.obj().snapshot()),
        );
        let (g1, g2) = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_queue_consistent(&g1).unwrap_or_else(|v| panic!("seed {seed} q1: {v}"));
        check_queue_consistent(&g2).unwrap_or_else(|v| panic!("seed {seed} q2: {v}"));
        // The protocol R, read off the graphs.
        for (id, ev) in g1.iter() {
            if let QueueEvent::Enq(v) = ev.ty {
                assert_eq!(v.expect_int() % 2, 1, "seed {seed}: {id} broke R in q1");
            }
        }
        for (id, ev) in g2.iter() {
            if let QueueEvent::Enq(v) = ev.ty {
                assert_eq!(v.expect_int() % 2, 0, "seed {seed}: {id} broke R in q2");
            }
        }
        // Conservation: 4 odds and 4 evens were enqueued in total.
        let enqs = |g: &compass::Graph<QueueEvent>| {
            g.iter()
                .filter(|(_, e)| matches!(e.ty, QueueEvent::Enq(_)))
                .count()
        };
        assert_eq!(enqs(&g1), 4, "seed {seed}");
        assert_eq!(enqs(&g2), 4, "seed {seed}");
    }
}
