//! Integration: substrate-level guarantees across the stack — race
//! freedom of the shipped structures, race detection on broken clients,
//! litmus outcomes.

use compass_repro::structures::queue::{HwQueue, ModelQueue, MsQueue};
use compass_repro::structures::stack::{ModelStack, TreiberStack};
use orc11::litmus::gallery;
use orc11::{random_strategy, run_model, BodyFn, Config, Mode, ModelError, ThreadCtx, Val};

#[test]
fn shipped_structures_are_race_free() {
    // Any data race would abort the execution; 3-thread mixed workloads
    // over many seeds must all complete.
    for seed in 0..120 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| {
                (
                    MsQueue::new(ctx),
                    HwQueue::new(ctx, 8),
                    TreiberStack::new(ctx),
                )
            },
            vec![
                Box::new(
                    |ctx: &mut ThreadCtx, (q, h, s): &(MsQueue, HwQueue, TreiberStack)| {
                        q.enqueue(ctx, Val::Int(1));
                        h.enqueue(ctx, Val::Int(2));
                        s.push(ctx, Val::Int(3));
                    },
                ) as BodyFn<'_, _, ()>,
                Box::new(
                    |ctx: &mut ThreadCtx, (q, h, s): &(MsQueue, HwQueue, TreiberStack)| {
                        q.try_dequeue(ctx);
                        h.try_dequeue(ctx);
                        s.pop(ctx);
                    },
                ),
                Box::new(
                    |ctx: &mut ThreadCtx, (q, h, s): &(MsQueue, HwQueue, TreiberStack)| {
                        s.push(ctx, Val::Int(4));
                        q.enqueue(ctx, Val::Int(5));
                        h.try_dequeue(ctx);
                    },
                ),
            ],
            |_, _, _| (),
        );
        out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn unsynchronized_nonatomic_sharing_races() {
    // A broken "client" that shares a non-atomic cell through a relaxed
    // flag must be caught by the race detector in some interleaving.
    let mut races = 0;
    for seed in 0..100 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| {
                (
                    ctx.alloc("cell", Val::Int(0)),
                    ctx.alloc("flag", Val::Int(0)),
                )
            },
            vec![
                Box::new(
                    |ctx: &mut ThreadCtx, &(cell, flag): &(orc11::Loc, orc11::Loc)| {
                        ctx.write(cell, Val::Int(1), Mode::NonAtomic);
                        ctx.write(flag, Val::Int(1), Mode::Relaxed); // BUG: not release
                    },
                ) as BodyFn<'_, _, ()>,
                Box::new(
                    |ctx: &mut ThreadCtx, &(cell, flag): &(orc11::Loc, orc11::Loc)| {
                        ctx.read_await(flag, Mode::Acquire, |v| v == Val::Int(1));
                        ctx.read(cell, Mode::NonAtomic);
                    },
                ),
            ],
            |_, _, _| (),
        );
        if matches!(out.result, Err(ModelError::Race(_))) {
            races += 1;
        }
    }
    assert!(races > 0, "the relaxed-flag MP race should be detected");
}

#[test]
fn litmus_mp_hierarchy() {
    let strong = gallery::mp_rel_acq().dfs(100_000);
    assert!(strong.report.exhausted);
    strong.assert_never(&[0, 0]);

    let weak = gallery::mp_relaxed().dfs(100_000);
    assert!(weak.report.exhausted);
    weak.assert_observable(&[0, 0]);

    let fenced = gallery::mp_fences().dfs(100_000);
    assert!(fenced.report.exhausted);
    fenced.assert_never(&[0, 0]);
}

#[test]
fn litmus_relaxed_behaviours_exist() {
    let sb = gallery::sb().dfs(100_000);
    sb.assert_observable(&[0, 0]);
    let iriw = gallery::iriw_acq().dfs(600_000);
    iriw.assert_observable(&[0, 0, 10, 10]);
}

#[test]
fn model_queue_multiset_preserved() {
    // Cross-check the model structures against a counting oracle: every
    // dequeued value was enqueued, no duplicates.
    use std::collections::BTreeMap;
    for seed in 0..60 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            MsQueue::new,
            vec![
                Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                    vec![
                        (true, Val::Int(1), q.enqueue(ctx, Val::Int(1))),
                        (true, Val::Int(2), q.enqueue(ctx, Val::Int(2))),
                    ]
                }) as BodyFn<'_, _, Vec<(bool, Val, compass::EventId)>>,
                Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                    let mut v = Vec::new();
                    for _ in 0..2 {
                        let (r, ev) = q.try_dequeue(ctx);
                        if let Some(x) = r {
                            v.push((false, x, ev));
                        }
                    }
                    v
                }),
            ],
            |_, _, outs| outs.concat(),
        );
        let records = out.result.unwrap();
        let mut counts: BTreeMap<Val, i64> = BTreeMap::new();
        for (is_enq, v, _) in records {
            *counts.entry(v).or_insert(0) += if is_enq { 1 } else { -1 };
        }
        assert!(
            counts.values().all(|&c| (0..=1).contains(&c)),
            "seed {seed}: multiset broken: {counts:?}"
        );
    }
}

#[test]
fn op_log_records_full_executions() {
    use orc11::{render_ops, OpKindRecord};
    let out = run_model(
        &Config {
            record_ops: true,
            ..Config::default()
        },
        random_strategy(5),
        MsQueue::new,
        vec![
            Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                q.enqueue(ctx, Val::Int(7));
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                q.try_dequeue(ctx);
            }),
        ],
        |_, _, _| (),
    );
    assert!(out.result.is_ok());
    assert_eq!(
        out.ops.len() as u64,
        out.steps,
        "one record per instruction"
    );
    // The log contains the release-CAS commit of the enqueue...
    assert!(out.ops.iter().any(
        |op| matches!(&op.kind, OpKindRecord::Rmw { new: Some(v), .. } if v.as_loc().is_some())
    ));
    // ...and renders one line per instruction with location names.
    let rendered = render_ops(&out.ops);
    assert_eq!(rendered.lines().count(), out.ops.len());
    assert!(rendered.contains("ms.head") || rendered.contains("ms.tail"));
    // By default nothing is recorded.
    let quiet = run_model(
        &Config::default(),
        random_strategy(5),
        |ctx| ctx.alloc("x", Val::Int(0)),
        Vec::<BodyFn<'_, _, ()>>::new(),
        |_, _, _| (),
    );
    assert!(quiet.ops.is_empty());
}
