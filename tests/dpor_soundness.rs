//! Integration: DPOR-pruned DFS is *sound* — it reports exactly the
//! distinct behaviours plain DFS does, in (often far) fewer executions.
//!
//! The contract (see `orc11::dpor`) has three observable faces, each
//! pinned here:
//!
//! 1. on every litmus test in the gallery, the outcome set, error count,
//!    and exhaustion flag match plain DFS — only execution/node counts
//!    may differ;
//! 2. the reduction is real: on store buffering and on the MP client of
//!    Figure 1/3, DPOR explores at least 2× fewer executions;
//! 3. violations survive pruning: a buggy structure fails the same spec
//!    clauses under DPOR as under plain DFS, and the DPOR report is
//!    byte-identical at 1 and 4 worker threads.

use std::collections::BTreeSet;
use std::sync::Mutex;

use compass::checker::{check_executions_with, CheckOptions, Exploration};
use compass::queue_spec::check_queue_consistent;
use compass_repro::structures::buggy::RelaxedMsQueue;
use compass_repro::structures::clients::{check_mp, run_mp};
use compass_repro::structures::queue::{HwQueue, ModelQueue, MsQueue};
use orc11::litmus::{gallery, Litmus};
use orc11::{run_model, BodyFn, Config, Explorer, Json, Strategy, ThreadCtx, Val, WorkSpec};

const BUDGET: u64 = 500_000;

/// Distinct-outcome set, error count, and exhaustion of one litmus
/// exploration at an explicit thread count.
fn litmus_summary<S: Sync + 'static>(
    t: &Litmus<S>,
    spec: &WorkSpec,
    threads: usize,
) -> (BTreeSet<Vec<i64>>, u64, bool, u64) {
    let outcomes = Mutex::new(BTreeSet::new());
    let report = Explorer::with_threads(threads).explore(spec, t, |_, out| {
        if let Ok(o) = &out.result {
            outcomes.lock().unwrap().insert(o.clone());
        }
    });
    (
        outcomes.into_inner().unwrap(),
        report.error_count,
        report.exhausted,
        report.execs,
    )
}

fn assert_litmus_sound<S: Sync + 'static>(t: &Litmus<S>) {
    let name = t.name().to_string();
    let (plain_outcomes, plain_errs, plain_exh, plain_execs) =
        litmus_summary(t, &WorkSpec::Dfs { budget: BUDGET }, 1);
    assert!(plain_exh, "{name}: plain DFS must exhaust within budget");
    for threads in [1, 4] {
        let (outcomes, errs, exh, execs) =
            litmus_summary(t, &WorkSpec::DfsDpor { budget: BUDGET }, threads);
        assert_eq!(
            outcomes, plain_outcomes,
            "{name}: DPOR at {threads} threads changed the outcome set"
        );
        assert_eq!(errs, plain_errs, "{name}: DPOR changed the error count");
        assert!(exh, "{name}: DPOR must exhaust whenever plain DFS does");
        assert!(
            execs <= plain_execs,
            "{name}: DPOR explored more executions ({execs}) than plain DFS ({plain_execs})"
        );
    }
}

#[test]
fn litmus_gallery_outcomes_survive_dpor() {
    assert_litmus_sound(&gallery::mp_rel_acq());
    assert_litmus_sound(&gallery::mp_relaxed());
    assert_litmus_sound(&gallery::mp_fences());
    assert_litmus_sound(&gallery::sb());
    assert_litmus_sound(&gallery::sb_sc_fences());
    assert_litmus_sound(&gallery::corr());
    assert_litmus_sound(&gallery::iriw_acq());
    assert_litmus_sound(&gallery::lb());
    assert_litmus_sound(&gallery::two_plus_two_w());
    assert_litmus_sound(&gallery::cowr());
    assert_litmus_sound(&gallery::release_sequence());
    assert_litmus_sound(&gallery::rmw_atomicity());
}

#[test]
fn store_buffering_prunes_at_least_2x() {
    let t = gallery::sb();
    let plain = t.dfs_plain(BUDGET);
    let dpor = t.dfs_dpor(BUDGET);
    assert!(plain.report.exhausted && dpor.report.exhausted);
    assert!(
        dpor.report.execs * 2 <= plain.report.execs,
        "SB: expected >= 2x reduction, got {} vs {}",
        dpor.report.execs,
        plain.report.execs
    );
    let plain_keys: BTreeSet<_> = plain.histogram.keys().collect();
    let dpor_keys: BTreeSet<_> = dpor.histogram.keys().collect();
    assert_eq!(plain_keys, dpor_keys);
}

/// The MP client's observable behaviour: what the right thread dequeued,
/// and how many successful dequeues the graph ended with.
fn mp_summary<Q: ModelQueue>(
    make: impl Fn(&mut ThreadCtx) -> Q + Clone + Send + Sync,
    spec: &WorkSpec,
    threads: usize,
) -> (BTreeSet<(Option<Val>, usize)>, bool, u64) {
    let outcomes = Mutex::new(BTreeSet::new());
    let report = Explorer::with_threads(threads).explore(
        spec,
        &move |s: Box<dyn Strategy>| run_mp(make.clone(), true, s),
        |desc, out| {
            let res = out
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{desc}: {e}"));
            check_mp(res, true).unwrap_or_else(|e| panic!("{desc}: {e}"));
            outcomes
                .lock()
                .unwrap()
                .insert((res.right_value, res.graph.so().len()));
        },
    );
    (
        outcomes.into_inner().unwrap(),
        report.exhausted,
        report.execs,
    )
}

#[test]
fn mp_client_prunes_at_least_2x_with_identical_outcomes() {
    let hw = |ctx: &mut ThreadCtx| HwQueue::new(ctx, 4);
    let ms = MsQueue::new;
    // Two queue implementations under the same client: one array-based,
    // one ghost-commit-heavy linked list.
    let (hw_plain, hw_plain_exh, hw_plain_execs) =
        mp_summary(hw, &WorkSpec::Dfs { budget: BUDGET }, 1);
    let (ms_plain, ms_plain_exh, ms_plain_execs) =
        mp_summary(ms, &WorkSpec::Dfs { budget: BUDGET }, 1);
    assert!(hw_plain_exh && ms_plain_exh);
    for threads in [1, 4] {
        let (o, exh, execs) = mp_summary(hw, &WorkSpec::DfsDpor { budget: BUDGET }, threads);
        assert_eq!(o, hw_plain, "HwQueue MP outcomes changed under DPOR");
        assert!(exh);
        assert!(
            execs * 2 <= hw_plain_execs,
            "HwQueue MP: expected >= 2x reduction, got {execs} vs {hw_plain_execs}"
        );
        let (o, exh, execs) = mp_summary(ms, &WorkSpec::DfsDpor { budget: BUDGET }, threads);
        assert_eq!(o, ms_plain, "MsQueue MP outcomes changed under DPOR");
        assert!(exh);
        assert!(
            execs * 2 <= ms_plain_execs,
            "MsQueue MP: expected >= 2x reduction, got {execs} vs {ms_plain_execs}"
        );
    }
}

fn check_relaxed_queue(dpor: bool, threads: usize) -> compass::checker::CheckReport {
    check_executions_with(
        &Exploration::Dfs { budget: BUDGET },
        &CheckOptions {
            threads,
            dpor: Some(dpor),
            ..CheckOptions::default()
        },
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                RelaxedMsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.enqueue(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        check_queue_consistent,
    )
}

#[test]
fn buggy_structure_violations_survive_dpor() {
    let plain = check_relaxed_queue(false, 1);
    assert!(plain.exhausted);
    let plain_clauses: BTreeSet<_> = plain.violations.keys().copied().collect();
    assert!(
        plain_clauses.contains("QUEUE-SO-LHB"),
        "the buggy queue must actually fail: {plain_clauses:?}"
    );

    let serial = check_relaxed_queue(true, 1);
    let parallel = check_relaxed_queue(true, 4);
    for (label, report) in [("serial", &serial), ("threads=4", &parallel)] {
        assert!(report.exhausted, "{label}: DPOR run must exhaust");
        let clauses: BTreeSet<_> = report.violations.keys().copied().collect();
        assert_eq!(
            clauses, plain_clauses,
            "{label}: DPOR changed the set of violated clauses"
        );
        assert!(
            report.dpor.is_some(),
            "{label}: DPOR runs must report pruning counters"
        );
    }

    // Byte-identical reports across thread counts (wall-clock excepted),
    // sample origins and pruning counters included.
    let normalize = |r: &compass::checker::CheckReport| {
        r.to_json()
            .set("check_ns", 0u64)
            .set("check_ns_by_rule", Json::obj())
            .set("phase_ns", orc11::PhaseNs::ZERO.to_json())
            .render_pretty()
    };
    assert_eq!(normalize(&serial), normalize(&parallel));
}
