//! Integration: Figure 3's proof sketch of the MP client, replayed as
//! executable assertions.
//!
//! The paper's proof outline annotates each program point with
//! `SeenQueue(q, G, M)` assertions and a `deqPerm`-counting invariant.
//! This test runs the same client and checks each annotation *as data* on
//! every explored execution:
//!
//! * all threads start with `SeenQueue(q, ∅, ∅)`;
//! * after its enqueues, the left thread holds
//!   `SeenQueue(q, G₁, {e₁, e₂})`;
//! * the release write of `flag` transfers that assertion: after the
//!   acquire loop, the right thread's `Seen` contains `{e₁, e₂}`;
//! * the invariant `deqPerm(size(G.so)) ∧ size(G.so) ≤ 2` holds at every
//!   commit (checked on the final graph and every prefix);
//! * the right thread's dequeue yields `v ∈ {41, 42}` with
//!   `SeenQueue(q, G₃, {e₁, e₂, d₃})`.

use compass::queue_spec::{check_queue_consistent_prefixes, QueueEvent};
use compass::{EventId, Seen};
use compass_repro::structures::queue::{ModelQueue, MsQueue};
use orc11::{random_strategy, run_model, BodyFn, Config, Loc, Mode, ThreadCtx, Val};

#[test]
fn figure3_annotations_hold() {
    for seed in 0..200 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| {
                let q = MsQueue::new(ctx);
                let flag = ctx.alloc("flag", Val::Int(0));
                (q, flag)
            },
            vec![
                // Left thread: { SeenQueue(q, ∅, ∅) } enq; enq; flag :=ʳᵉˡ 1.
                Box::new(|ctx: &mut ThreadCtx, (q, flag): &(MsQueue, Loc)| {
                    let s_init = Seen::capture(q.obj(), ctx);
                    assert!(s_init.logview.is_empty(), "starts with M = ∅");
                    let e1 = q.enqueue(ctx, Val::Int(41));
                    let e2 = q.enqueue(ctx, Val::Int(42));
                    // { SeenQueue(q, G₁, {e₁, e₂}) }
                    let s1 = Seen::capture(q.obj(), ctx);
                    assert!(s1.observed(e1) && s1.observed(e2));
                    assert!(s_init.le(&s1), "Seen is monotone");
                    ctx.write(*flag, Val::Int(1), Mode::Release);
                    (Some((e1, e2)), None)
                })
                    as BodyFn<'_, _, (Option<(EventId, EventId)>, Option<(Val, Seen)>)>,
                // Middle thread: one dequeue, no flag.
                Box::new(|ctx: &mut ThreadCtx, (q, _): &(MsQueue, Loc)| {
                    q.try_dequeue(ctx);
                    (None, None)
                }),
                // Right thread: await flag, then dequeue.
                Box::new(|ctx: &mut ThreadCtx, (q, flag): &(MsQueue, Loc)| {
                    ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                    // { SeenQueue(q, G₁, {e₁, e₂}) } — received through the flag.
                    let s = Seen::capture(q.obj(), ctx);
                    assert!(s.graph_len >= 2, "snapshot G₁ contains both enqueues");
                    let (v, d3) = q.try_dequeue(ctx);
                    // { v ∈ {41, 42} ∧ SeenQueue(q, G₃, {e₁, e₂, d₃}) }
                    let v = v.expect("Figure 3: cannot be empty");
                    assert!(v == Val::Int(41) || v == Val::Int(42));
                    let s3 = Seen::capture(q.obj(), ctx);
                    assert!(s3.observed(d3), "own dequeue is observed");
                    assert!(s.le(&s3));
                    (None, Some((v, s3)))
                }),
            ],
            |_, (q, _), outs| {
                let g = q.obj().snapshot();
                // The client invariant: at most two successful dequeues ever
                // (deqPerm(2) in the whole system), at every prefix.
                check_queue_consistent_prefixes(&g).unwrap();
                assert!(g.so().len() <= 2, "size(G.so) ≤ 2");
                // The left thread's enqueue events are observed by the
                // right thread.
                let (e1, e2) = outs[0].0.expect("left thread ids");
                let (v, s3) = outs[2].1.clone().expect("right thread result");
                assert!(s3.observed(e1) && s3.observed(e2), "M₀ ⊇ {{e₁, e₂}}");
                s3.still_valid(&g).unwrap();
                // And the value the right thread got matches an enqueue
                // it has observed.
                let matches_observed = g
                    .iter()
                    .any(|(id, ev)| s3.observed(id) && ev.ty == QueueEvent::Enq(v));
                assert!(matches_observed);
            },
        );
        out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn figure3_contradiction_branch_is_unreachable() {
    // The proof's final step derives a contradiction from "d₃ is an empty
    // dequeue": with ≤ 1 other dequeue and 2 observed enqueues, some
    // observed enqueue is un-dequeued, contradicting QUEUE-EMPDEQ. Here:
    // the empty case simply never occurs, over many seeds, while the graph
    // invariants that power the contradiction always hold.
    let mut right_values = std::collections::BTreeSet::new();
    for seed in 0..200 {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| {
                let q = MsQueue::new(ctx);
                let flag = ctx.alloc("flag", Val::Int(0));
                (q, flag)
            },
            vec![
                Box::new(|ctx: &mut ThreadCtx, (q, flag): &(MsQueue, Loc)| {
                    q.enqueue(ctx, Val::Int(41));
                    q.enqueue(ctx, Val::Int(42));
                    ctx.write(*flag, Val::Int(1), Mode::Release);
                    None
                }) as BodyFn<'_, _, Option<Val>>,
                Box::new(|ctx: &mut ThreadCtx, (q, _): &(MsQueue, Loc)| q.try_dequeue(ctx).0),
                Box::new(|ctx: &mut ThreadCtx, (q, flag): &(MsQueue, Loc)| {
                    ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                    q.try_dequeue(ctx).0
                }),
            ],
            |_, _, outs| outs[2],
        );
        let right = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let v = right.unwrap_or_else(|| panic!("seed {seed}: empty dequeue reached"));
        right_values.insert(v);
    }
    // Both branches of "41 or 42" are exercised.
    assert!(right_values.contains(&Val::Int(41)));
    assert!(right_values.contains(&Val::Int(42)));
}
