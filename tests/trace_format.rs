//! Integration: the Chrome trace-event export of `orc11::trace`.
//!
//! Runs real explorations under a trace session and validates the
//! written file structurally — parseable JSON with a `traceEvents`
//! array, well-nested B/E duration events per track, monotone
//! timestamps per track, and pids/tids that map onto the worker count
//! (pid 0 everywhere; main = tid 0, worker *i* = tid *i* + 1). The
//! session machinery is process-global, so everything session-related
//! lives in this one `#[test]` (integration tests share a process;
//! concurrent sessions in sibling tests would interleave).

use orc11::trace;
use orc11::{
    run_model, BodyFn, Config, Explorer, Json, Loc, Mode, RunOutcome, ThreadCtx, Val, WorkSpec,
};

/// The store-buffering litmus — enough schedule branching for DFS/DPOR
/// to exercise spans, backtrack analysis, and frontier gauges.
fn sb(strategy: Box<dyn orc11::Strategy>) -> RunOutcome<(i64, i64)> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("y", Val::Int(0))),
        vec![
            Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                ctx.read(y, Mode::Relaxed).expect_int()
            }) as BodyFn<'_, _, _>,
            Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                ctx.write(y, Val::Int(1), Mode::Relaxed);
                ctx.read(x, Mode::Relaxed).expect_int()
            }),
        ],
        |_, _, outs| (outs[0], outs[1]),
    )
}

const THREADS: usize = 4;

#[test]
fn trace_file_is_structurally_valid() {
    let tmp = std::env::temp_dir().join(format!("compass-trace-fmt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let path = tmp.join("exploration.trace.json");

    assert!(
        trace::finish().unwrap().is_none(),
        "no session should be active at test start"
    );
    assert!(!trace::enabled());

    trace::start(&path).expect("fresh session starts");
    assert!(trace::enabled());
    // A second start while active must refuse, not corrupt the session.
    let err = trace::start(tmp.join("other.json")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);

    // A DPOR DFS exploration on 4 workers: exec + batch + dpor-analyze
    // spans, frontier-depth counter events, worker thread registration.
    let report = Explorer::with_threads(THREADS).explore(
        &WorkSpec::DfsDpor { budget: 10_000 },
        &sb,
        |_, _| {},
    );
    assert!(report.exhausted, "SB must exhaust within budget");

    let summary = trace::finish()
        .expect("trace file writable")
        .expect("session was active");
    assert!(!trace::enabled());
    assert_eq!(summary.path, path);
    assert!(summary.events > 0, "exploration must record events");
    assert!(
        summary.tracks >= 2,
        "expected main plus at least one worker track, got {}",
        summary.tracks
    );

    // Structural validation: parseable, pid 0, monotone ts per track,
    // well-nested B/E per track, numeric counter values.
    let check = trace::validate_trace_file(&path).expect("trace validates");
    assert_eq!(check.events, summary.events);
    assert_eq!(check.tracks, summary.tracks);
    assert!(check.spans > 0, "expected B/E span pairs");
    assert!(
        check.counters > 0,
        "expected frontier-depth counter samples from the DFS claim path"
    );
    // Tids map onto the worker count: main = 0, worker i = i + 1, and
    // nothing else (no anonymous >= 1000 tracks in this workload).
    assert!(
        check.max_tid as usize <= THREADS,
        "tid {} exceeds the {} worker threads",
        check.max_tid,
        THREADS
    );

    // The raw text round-trips through the hand-rolled parser too (the
    // validator uses it, but pin the top-level shape explicitly).
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("trace file parses as JSON");
    let events = doc.get("traceEvents").expect("traceEvents key");
    assert!(matches!(events, Json::Arr(_)));

    // After finish, recording is off and a new session can start.
    let path2 = tmp.join("second.trace.json");
    trace::start(&path2).expect("session restarts after finish");
    {
        let _span = trace::span(trace::Phase::Check, "post-restart");
    }
    let summary2 = trace::finish().unwrap().expect("second session active");
    assert!(summary2.events >= 1, "span after restart must be recorded");
    trace::validate_trace_file(&path2).expect("second trace validates");

    let _ = std::fs::remove_dir_all(&tmp);
}
