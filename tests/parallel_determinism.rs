//! Integration: parallel exploration is observably identical to serial.
//!
//! The engine's contract (see `orc11::parallel`) is that a report is a
//! deterministic function of the work specification alone — never of the
//! worker count. These tests pin that end to end: the raw `orc11`
//! explorer on the store-buffering litmus, and the full `compass`
//! checker on a buggy structure, each rendered to JSON at `threads = 1`
//! and `threads = 4` and compared byte for byte.

use compass::checker::{check_executions_with, CheckOptions, Exploration};
use compass::queue_spec::check_queue_consistent;
use compass_repro::structures::buggy::RelaxedMsQueue;
use compass_repro::structures::queue::ModelQueue;
use orc11::{
    run_model, BodyFn, Config, Explorer, Json, Loc, Mode, RunOutcome, ThreadCtx, Val, WorkSpec,
};

/// The classic store-buffering litmus: both threads may read 0.
fn sb(strategy: Box<dyn orc11::Strategy>) -> RunOutcome<(i64, i64)> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("y", Val::Int(0))),
        vec![
            Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                ctx.read(y, Mode::Relaxed).expect_int()
            }) as BodyFn<'_, _, _>,
            Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                ctx.write(y, Val::Int(1), Mode::Relaxed);
                ctx.read(x, Mode::Relaxed).expect_int()
            }),
        ],
        |_, _, outs| (outs[0], outs[1]),
    )
}

#[test]
fn sb_litmus_reports_are_thread_count_independent() {
    for spec in [
        WorkSpec::Random {
            iters: 400,
            seed0: 7,
        },
        WorkSpec::Pct {
            iters: 400,
            seed0: 7,
            depth: 2,
            horizon: 16,
        },
        WorkSpec::Dfs { budget: 10_000 },
        WorkSpec::DfsDpor { budget: 10_000 },
    ] {
        let norm = |r: &orc11::ExploreReport| {
            r.to_json()
                .set("phase_ns", orc11::PhaseNs::ZERO.to_json())
                .render()
        };
        let serial = Explorer::serial().explore(&spec, &sb, |_, _| {});
        let parallel = Explorer::with_threads(4).explore(&spec, &sb, |_, _| {});
        assert_eq!(
            norm(&serial),
            norm(&parallel),
            "threads=4 must match serial for {spec:?}"
        );
    }
}

/// The checker report with its wall-clock fields pinned (`check_ns`,
/// `check_ns_by_rule`, and the per-phase `phase_ns` breakdown);
/// everything else — violation counts, per-clause attribution, samples,
/// search stats, coverage — must be thread-count independent.
fn normalized(report: &compass::checker::CheckReport) -> String {
    report
        .to_json()
        .set("check_ns", 0u64)
        .set("check_ns_by_rule", Json::obj())
        .set("phase_ns", orc11::PhaseNs::ZERO.to_json())
        .render_pretty()
}

fn check_buggy_queue(exploration: &Exploration, threads: usize) -> String {
    let opts = CheckOptions {
        threads,
        ..CheckOptions::default()
    };
    let report = check_executions_with(
        exploration,
        &opts,
        |strategy| {
            run_model(
                &Config::default(),
                strategy,
                RelaxedMsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.enqueue(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        check_queue_consistent,
    );
    normalized(&report)
}

#[test]
fn buggy_structure_checker_reports_are_thread_count_independent() {
    for exploration in [
        Exploration::Random {
            iters: 200,
            seed0: 0,
        },
        Exploration::Pct {
            iters: 200,
            seed0: 0,
            depth: 3,
        },
        Exploration::Dfs { budget: 400_000 },
        Exploration::DfsDpor { budget: 400_000 },
    ] {
        let serial = check_buggy_queue(&exploration, 1);
        let parallel = check_buggy_queue(&exploration, 4);
        assert_eq!(
            serial, parallel,
            "threads=4 must match serial for {exploration:?}"
        );
        // The buggy queue actually fails, so the comparison covers
        // violation attribution and sample selection, not just zeros.
        if !matches!(exploration, Exploration::Random { .. }) {
            assert!(
                serial.contains("\"truncated\": false"),
                "an exhaustive DFS run must not be truncated:\n{serial}"
            );
            assert!(
                serial.contains("QUEUE-SO-LHB"),
                "expected a violation in the compared report:\n{serial}"
            );
        }
    }
}

/// A DFS budget too small for the tree: the run must say so. A truncated
/// parallel DFS legitimately visits a thread-count-dependent *subset* of
/// the tree (each worker races the budget), so the report's counts are
/// only comparable across thread counts when `truncated` is false — the
/// flag is what lets consumers tell the two regimes apart.
#[test]
fn budget_truncated_dfs_reports_say_truncated() {
    for spec in [WorkSpec::Dfs { budget: 5 }, WorkSpec::DfsDpor { budget: 5 }] {
        for threads in [1, 4] {
            let report = Explorer::with_threads(threads).explore(&spec, &sb, |_, _| {});
            assert!(
                report.truncated,
                "budget 5 cannot exhaust SB ({spec:?}, {threads} threads)"
            );
            assert!(!report.exhausted);
            assert_eq!(report.to_json().get("truncated"), Some(&Json::Bool(true)));
        }
        // A sufficient budget at any thread count: not truncated.
        let report_big = Explorer::with_threads(4).explore(
            &match spec {
                WorkSpec::Dfs { .. } => WorkSpec::Dfs { budget: 10_000 },
                _ => WorkSpec::DfsDpor { budget: 10_000 },
            },
            &sb,
            |_, _| {},
        );
        assert!(report_big.exhausted && !report_big.truncated);
    }
}

/// Reads every file under `dir` (recursively), as `(relative path,
/// bytes)` sorted by path — the comparable form of a replay bundle.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("readable bundle dir") {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p
                    .strip_prefix(dir)
                    .expect("path under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&p).expect("readable bundle file")));
            }
        }
    }
    out.sort();
    out
}

/// Tracing must not perturb determinism: with a trace session active,
/// the (wall-clock-normalized) checker report and the replay bundle are
/// byte-identical to a tracing-off run, at 1 and 4 threads — timestamps
/// exist only in the trace file. Uses the buggy queue so the comparison
/// covers violation attribution and bundle capture, not just zeros.
#[test]
fn tracing_on_and_off_runs_are_byte_identical() {
    let exploration = Exploration::Random {
        iters: 120,
        seed0: 0,
    };
    let tmp = std::env::temp_dir().join(format!("compass-trace-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let run = |threads: usize, bundle_root: &std::path::Path| {
        let opts = CheckOptions {
            threads,
            bundle_dir: Some(bundle_root.to_path_buf()),
            ..CheckOptions::default()
        };
        let report = check_executions_with(
            &exploration,
            &opts,
            |strategy| {
                run_model(
                    &Config::default(),
                    strategy,
                    RelaxedMsQueue::new,
                    vec![
                        Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                            q.enqueue(ctx, Val::Int(1));
                        }) as BodyFn<'_, _, ()>,
                        Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                            q.try_dequeue(ctx);
                        }),
                    ],
                    |_, q, _| q.obj().snapshot(),
                )
            },
            check_queue_consistent,
        );
        let bundle = report.bundle.clone().expect("buggy queue writes a bundle");
        (normalized(&report), dir_contents(&bundle))
    };
    for threads in [1usize, 4] {
        let off_root = tmp.join(format!("off-{threads}"));
        let (off_report, off_bundle) = run(threads, &off_root);

        let trace_path = tmp.join(format!("trace-{threads}.json"));
        orc11::trace::start(&trace_path).expect("no other trace session active");
        let on_root = tmp.join(format!("on-{threads}"));
        let (on_report, on_bundle) = run(threads, &on_root);
        let summary = orc11::trace::finish()
            .expect("trace file writable")
            .expect("session was active");
        assert!(summary.events > 0, "tracing-on run recorded no events");

        assert_eq!(
            off_report, on_report,
            "tracing changed the report at {threads} threads"
        );
        assert_eq!(
            off_bundle, on_bundle,
            "tracing changed the replay bundle at {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Random/PCT runs always perform exactly the requested iterations —
/// `truncated` is a DFS-only concept and must stay false there.
#[test]
fn seed_based_reports_are_never_truncated() {
    let report = Explorer::with_threads(4).explore(
        &WorkSpec::Random {
            iters: 50,
            seed0: 3,
        },
        &sb,
        |_, _| {},
    );
    assert!(!report.truncated);
}
