//! Integration tests for the runtime conformance harness: the full
//! record → reconstruct → check → bundle → recheck pipeline, on both
//! hand-built histories and real native executions (DESIGN.md §7).

use compass::conform::{linearize, recheck, run_conformance, ConformOptions, History};
use compass::queue_spec::QueueEvent::{self, Deq, EmpDeq, Enq};
use compass::stack_spec::StackEvent;
use compass::EventId;
use compass_bench::conform_subjects::{
    DequeSubject, ExchangerSubject, QueueSubject, SpscSubject, StackSubject,
};
use compass_native::{MsQueue, TreiberStack, WeakMsQueue};
use orc11::Val;

fn int(i: i64) -> Val {
    Val::Int(i)
}

fn id(i: u64) -> EventId {
    EventId::from_raw(i)
}

/// A hand-built history whose intervals are pairwise disjoint has
/// exactly one linearization candidate — the real-time order — and the
/// conform checker must recover exactly that order.
#[test]
fn unique_linearization_round_trips_through_the_checker() {
    // t1 enqueues 1 then 2; t2 dequeues 1, dequeues 2, then sees empty.
    // Every interval is disjoint from every other, so the interval order
    // is total: the only permutation respecting it is ids 0..5 in order
    // (ids are assigned in invocation order), and FIFO accepts it.
    let h: History<QueueEvent> = History::from_tuples(vec![
        vec![(Enq(int(1)), 0, 9), (Enq(int(2)), 20, 29)],
        vec![
            (Deq(int(1)), 40, 49),
            (Deq(int(2)), 60, 69),
            (EmpDeq, 80, 89),
        ],
    ]);
    let g = h.to_graph();
    let order = linearize(&g).expect("sequential history must linearize");
    assert_eq!(order, (0..5).map(id).collect::<Vec<_>>());

    // Same discipline for a stack: push 1, push 2, pop 2, pop 1 is the
    // unique LIFO-respecting total order.
    let h: History<StackEvent> = History::from_tuples(vec![
        vec![
            (StackEvent::Push(int(1)), 0, 1),
            (StackEvent::Push(int(2)), 2, 3),
        ],
        vec![
            (StackEvent::Pop(int(2)), 10, 11),
            (StackEvent::Pop(int(1)), 12, 13),
        ],
    ]);
    let order = linearize(&h.to_graph()).expect("LIFO history must linearize");
    assert_eq!(order, (0..4).map(id).collect::<Vec<_>>());
}

fn quick(rounds: u64) -> ConformOptions {
    ConformOptions {
        rounds,
        threads: 4,
        ops_per_thread: 48,
        seed0: 7,
        ..ConformOptions::default()
    }
}

/// Correct native structures pass runtime conformance (a failure here
/// would be a true violation on this host — see the soundness notes in
/// `compass::conform`).
#[test]
fn correct_native_structures_conform() {
    run_conformance(&QueueSubject::new("MsQueue", |_| MsQueue::new()), &quick(4)).assert_clean();
    run_conformance(
        &StackSubject::new("TreiberStack", TreiberStack::new),
        &quick(4),
    )
    .assert_clean();
    run_conformance(&SpscSubject, &quick(4)).assert_clean();
    run_conformance(&DequeSubject, &quick(4)).assert_clean();
    run_conformance(&ExchangerSubject, &quick(4)).assert_clean();
}

/// The positive control: the deliberately weakened queue is flagged
/// within a bounded number of seeded rounds, and its replay bundle
/// re-checks offline to the same violated clause.
#[test]
fn weak_queue_is_flagged_and_its_bundle_rechecks() {
    let root = std::env::temp_dir().join(format!("compass-conform-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let weak = QueueSubject::new("WeakMsQueue", |_| WeakMsQueue::new());
    let mut flagged = None;
    for batch in 0..10u64 {
        let report = run_conformance(
            &weak,
            &ConformOptions {
                seed0: 1 + batch * 50,
                rounds: 50,
                stop_on_violation: true,
                bundle_dir: Some(root.clone()),
                ..quick(50)
            },
        );
        if report.consistent < report.execs {
            flagged = Some(report);
            break;
        }
    }
    let report = flagged.expect("weakened queue never flagged");
    let (_, violation) = &report.samples[0];
    let dir = report.bundle.as_ref().expect("no bundle written");
    assert!(dir.join("history.txt").is_file());
    assert!(dir.join("report.txt").is_file());
    assert!(dir.join("graph.dot").is_file());
    assert!(dir.join("bundle.json").is_file());
    let (g, result) = recheck::<QueueEvent>(dir).expect("bundle must parse");
    assert!(!g.is_empty());
    assert_eq!(
        result.expect_err("bundle must still violate").rule,
        violation.rule,
        "offline recheck must reproduce the live clause"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
