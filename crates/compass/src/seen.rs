//! Client-side `Seen` assertions — the executable `SeenQueue(q, G₀, M₀)`.
//!
//! In the paper (§3.1), a thread's persistent `SeenQueue(q, G₀, M₀)`
//! assertion records a snapshot `G₀` of the object's graph together with
//! the thread's local logical view `M₀` — a lower bound on the operations
//! the thread has synchronized with. The assertion is *monotone*: later
//! snapshots extend earlier ones, and operations only grow `M₀`.
//!
//! [`Seen`] captures the same data from a live execution; its methods are
//! the assertion's laws, checkable per execution:
//!
//! * [`Seen::still_valid`] — `G₀ ⊑ G` and `M₀` is inside the graph;
//! * [`Seen::le`] — `⊑` between snapshots taken along one thread's run;
//! * [`Seen::observed`] — membership in `M₀`, e.g. the MP client's
//!   "the right thread has seen both enqueues".

use std::collections::BTreeSet;

use orc11::ThreadCtx;

use crate::event::EventId;
use crate::graph::Graph;
use crate::object::LibObj;
use crate::spec::{SpecResult, Violation};

/// A snapshot of a thread's knowledge about one library object (see
/// module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Seen {
    /// Number of events in the snapshot `G₀` (ids are commit-ordered, so
    /// the prefix length determines the snapshot).
    pub graph_len: usize,
    /// The thread's local logical view `M₀`.
    pub logview: BTreeSet<EventId>,
}

impl Seen {
    /// Captures the calling thread's current `Seen` assertion for `obj`.
    pub fn capture<T>(obj: &LibObj<T>, ctx: &ThreadCtx) -> Self {
        Seen {
            graph_len: obj.graph().len(),
            logview: obj.seen(ctx),
        }
    }

    /// Whether event `e` is in `M₀`.
    pub fn observed(&self, e: EventId) -> bool {
        self.logview.contains(&e)
    }

    /// Monotonicity between two snapshots taken (in order) by one thread:
    /// `G₀ ⊑ G₁` and `M₀ ⊆ M₁`.
    pub fn le(&self, later: &Seen) -> bool {
        self.graph_len <= later.graph_len && self.logview.is_subset(&later.logview)
    }

    /// Validates the assertion against the (current or final) graph:
    /// the snapshot is a prefix, and every observed event exists and
    /// carries its own logview (i.e. `M₀` is made of committed events).
    pub fn still_valid<T>(&self, g: &Graph<T>) -> SpecResult {
        if self.graph_len > g.len() {
            return Err(Violation::new(
                "SEEN-SNAPSHOT",
                format!(
                    "snapshot claims {} events but the graph has {}",
                    self.graph_len,
                    g.len()
                ),
                vec![],
            ));
        }
        for &e in &self.logview {
            if e.index() >= g.len() {
                return Err(Violation::new(
                    "SEEN-LOGVIEW",
                    format!("observed event {e} is not in the graph"),
                    vec![e],
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_spec::QueueEvent;
    use orc11::{random_strategy, run_model, BodyFn, Config, Loc, Mode, Val};

    #[test]
    fn seen_is_monotone_along_a_thread() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| {
                let flag = ctx.alloc("flag", Val::Int(0));
                (flag, LibObj::<QueueEvent>::new("q"))
            },
            vec![Box::new(
                |ctx: &mut orc11::ThreadCtx, (flag, obj): &(Loc, LibObj<QueueEvent>)| {
                    let s0 = Seen::capture(obj, ctx);
                    ctx.write_with(*flag, Val::Int(1), Mode::Release, |gh| {
                        obj.commit(gh, QueueEvent::Enq(Val::Int(1)));
                    });
                    let s1 = Seen::capture(obj, ctx);
                    ctx.write_with(*flag, Val::Int(2), Mode::Release, |gh| {
                        obj.commit(gh, QueueEvent::Enq(Val::Int(2)));
                    });
                    let s2 = Seen::capture(obj, ctx);
                    assert!(s0.le(&s1) && s1.le(&s2) && s0.le(&s2));
                    assert!(!s2.le(&s0));
                    assert!(s2.observed(EventId::from_raw(0)));
                    assert!(s2.observed(EventId::from_raw(1)));
                    assert!(!s0.observed(EventId::from_raw(0)));
                    (s0, s2)
                },
            ) as BodyFn<'_, _, (Seen, Seen)>],
            |_, (_, obj), outs| {
                let g = obj.snapshot();
                let (s0, s2) = &outs[0];
                s0.still_valid(&g).unwrap();
                s2.still_valid(&g).unwrap();
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn seen_transfers_through_synchronization() {
        // The MP pattern at the Seen level: the acquiring thread's capture
        // contains the releasing thread's events.
        let out = run_model(
            &Config::default(),
            random_strategy(3),
            |ctx| {
                let flag = ctx.alloc("flag", Val::Int(0));
                (flag, LibObj::<QueueEvent>::new("q"))
            },
            vec![
                Box::new(
                    |ctx: &mut orc11::ThreadCtx, (flag, obj): &(Loc, LibObj<QueueEvent>)| {
                        ctx.write_with(*flag, Val::Int(1), Mode::Release, |gh| {
                            obj.commit(gh, QueueEvent::Enq(Val::Int(41)));
                        });
                        Seen::capture(obj, ctx)
                    },
                ) as BodyFn<'_, _, Seen>,
                Box::new(
                    |ctx: &mut orc11::ThreadCtx, (flag, obj): &(Loc, LibObj<QueueEvent>)| {
                        ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                        Seen::capture(obj, ctx)
                    },
                ),
            ],
            |_, (_, obj), outs| {
                let g = obj.snapshot();
                for s in &outs {
                    s.still_valid(&g).unwrap();
                }
                // The releasing thread's M₀ flowed to the acquirer.
                assert!(outs[0].logview.is_subset(&outs[1].logview));
                assert!(outs[1].observed(EventId::from_raw(0)));
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn invalid_snapshots_are_rejected() {
        let g: Graph<QueueEvent> = Graph::new();
        let s = Seen {
            graph_len: 3,
            logview: BTreeSet::new(),
        };
        assert_eq!(s.still_valid(&g).unwrap_err().rule, "SEEN-SNAPSHOT");
        let s = Seen {
            graph_len: 0,
            logview: [EventId::from_raw(5)].into_iter().collect(),
        };
        assert_eq!(s.still_valid(&g).unwrap_err().rule, "SEEN-LOGVIEW");
    }
}
