//! # Runtime conformance: checking *native* executions against the specs
//!
//! The model checker (`compass::checker`) explores the paper's
//! structures on the orc11 *model* semantics. This module closes the
//! loop on the other side: it takes timestamped invocation/response
//! histories recorded from the **real** implementations
//! (`compass-native` with `feature = "recorder"`) running on real
//! threads, reconstructs a Compass event graph, and checks the same
//! style of consistency clauses the model checker uses — reporting
//! through the same [`CheckReport`] shape and serializing failures to
//! replay bundles (`compass::bundle`, schema v3) that re-check offline.
//!
//! ## Soundness
//!
//! The model checker knows the true happens-before of each execution;
//! at runtime we only observe wall-clock intervals on one shared
//! monotonic clock. The harness uses the **real-time interval order**:
//! `a → b` iff `a` *responded strictly before* `b` was *invoked*
//! ([`History::to_graph`]). On the platforms we run on, an operation's
//! effects are released no later than its response and acquired no
//! earlier than its invocation (commit points are release/acquire
//! accesses inside the interval), so every interval-order edge is a true
//! happens-before edge: the reconstructed order **under-approximates**
//! `lhb`. Fewer order constraints can only make *more* candidate
//! linearizations admissible, therefore:
//!
//! * a violation this harness reports is a **true violation** — no
//!   consistent explanation of the observed values and order exists;
//! * absence of violations is **not a proof** — a weak behavior may hide
//!   inside overlapping intervals (and scheduling only samples the
//!   behavior space). That is the model checker's job; the harness's job
//!   is catching real-world divergence from the verified model, with a
//!   deterministic artefact when it does.
//!
//! Timestamp ties (`resp(a) == inv(b)`) are treated as concurrent —
//! again the sound direction.
//!
//! ## Shape
//!
//! * [`ConformSubject`] — a structure under test: names itself and runs
//!   one recorded round for a [`RoundSpec`].
//! * [`run_conformance`] — runs seeded rounds, reconstructs and checks
//!   each, aggregates a [`CheckReport`], writes a
//!   [`crate::bundle::write_conform_bundle`] for the first violation.
//! * [`ConformEvent`] — ties a library's event vocabulary
//!   ([`crate::queue_spec::QueueEvent`] & friends — the harness reuses
//!   the model's event types, it defines none of its own) to its
//!   conformance check and `history.txt` codec.
//! * [`recheck`] — loads a bundle's `history.txt` and re-runs the check
//!   offline; deterministic, so it reproduces the violated clause.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::bundle::write_conform_bundle;
use crate::checker::{CheckReport, ExecOrigin, PASS_RULE};
use crate::event::EventId;
use crate::graph::Graph;
use crate::history::take_search_stats;
use crate::spec::SpecResult;

mod check;
mod record;

pub use check::{
    check_conform_deque, check_conform_exchanger, check_conform_queue, check_conform_stack,
    ConformEvent,
};
pub use record::{History, TimedOp};

/// Cap on [`CheckReport::samples`] kept by [`run_conformance`].
const SAMPLE_CAP: usize = 8;

/// How to drive a conformance run.
#[derive(Clone, Debug)]
pub struct ConformOptions {
    /// Number of recorded rounds (each with a fresh structure instance).
    pub rounds: u64,
    /// Worker threads per round.
    pub threads: usize,
    /// Operations each thread attempts per round.
    pub ops_per_thread: usize,
    /// Seed of the first round; round `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Stop at the first violating round (positive controls want the
    /// witness, not the tally).
    pub stop_on_violation: bool,
    /// Where to write the first violation's replay bundle, if anywhere.
    pub bundle_dir: Option<PathBuf>,
}

impl Default for ConformOptions {
    fn default() -> Self {
        ConformOptions {
            rounds: 64,
            threads: 4,
            ops_per_thread: 256,
            seed0: 1,
            stop_on_violation: false,
            bundle_dir: None,
        }
    }
}

/// One round's parameters, handed to the subject's driver.
#[derive(Clone, Copy, Debug)]
pub struct RoundSpec {
    /// Seed for the round's yield/backoff jitter (and any driver
    /// randomness).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Operations each thread attempts.
    pub ops_per_thread: usize,
}

/// A native structure wired up for conformance checking: runs one
/// recorded round on real threads and returns the history.
pub trait ConformSubject {
    /// The event vocabulary (decides which consistency check applies).
    type Ev: ConformEvent;

    /// Display name (used in reports and bundle directory names).
    fn name(&self) -> &str;

    /// Runs one round — fresh structure instance, `spec.threads` real
    /// threads, recorded timestamps — and returns the history.
    fn round(&self, spec: &RoundSpec) -> History<Self::Ev>;
}

/// Stress-runs `subject` and checks every recorded round, aggregating a
/// [`CheckReport`] (execs = rounds; `graph_sizes`, `search`, `check_ns*`
/// filled; exploration-only fields left at their defaults). The round
/// seed is reported as [`ExecOrigin::Random`] in samples and the bundle.
pub fn run_conformance<S: ConformSubject>(subject: &S, opts: &ConformOptions) -> CheckReport {
    let mut report = CheckReport::default();
    let phase_mark = orc11::trace::thread_phases();
    for i in 0..opts.rounds {
        let spec = RoundSpec {
            seed: opts.seed0 + i,
            threads: opts.threads,
            ops_per_thread: opts.ops_per_thread,
        };
        let (hist, g) = {
            let _span = orc11::trace::span(orc11::trace::Phase::Conform, "conform-round");
            let hist = subject.round(&spec);
            let g = hist.to_graph();
            (hist, g)
        };
        report.execs += 1;
        report.graph_sizes.record(g.len() as u64);
        let t0 = Instant::now();
        let result = {
            let _span = orc11::trace::span(orc11::trace::Phase::Check, "conform-check");
            S::Ev::check(&g)
        };
        let ns = t0.elapsed().as_nanos() as u64;
        report.search.merge(&take_search_stats());
        report.check_ns += ns;
        match result {
            Ok(()) => {
                report.consistent += 1;
                *report.check_ns_by_rule.entry(PASS_RULE).or_insert(0) += ns;
            }
            Err(v) => {
                *report.check_ns_by_rule.entry(v.rule).or_insert(0) += ns;
                *report.violations.entry(v.rule).or_insert(0) += 1;
                let origin = ExecOrigin::Random { seed: spec.seed };
                if report.bundle.is_none() {
                    if let Some(root) = &opts.bundle_dir {
                        report.bundle =
                            write_conform_bundle(root, subject.name(), &hist, &g, &v, &spec).ok();
                    }
                }
                if report.samples.len() < SAMPLE_CAP {
                    report.samples.push((origin, v));
                }
                if opts.stop_on_violation {
                    break;
                }
            }
        }
    }
    report
        .phase_ns
        .merge(&orc11::trace::thread_phases().delta_since(&phase_mark));
    report
}

/// A witness order for a conforming graph (see
/// [`ConformEvent::linearize`] for what "order" means per library).
pub fn linearize<E: ConformEvent>(g: &Graph<E>) -> Option<Vec<EventId>> {
    E::linearize(g)
}

/// Re-checks a conformance bundle offline: loads `<dir>/history.txt`,
/// reconstructs the graph, and re-runs the consistency check. The
/// reconstruction and check are deterministic, so a violation bundle
/// re-checks to the same violated clause.
///
/// # Errors
///
/// Propagates filesystem errors and history-parse failures.
pub fn recheck<E: ConformEvent>(dir: &Path) -> io::Result<(Graph<E>, SpecResult)> {
    let text = std::fs::read_to_string(dir.join("history.txt"))?;
    let hist: History<E> = History::parse(&text)?;
    let g = hist.to_graph();
    let result = E::check(&g);
    Ok((g, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_spec::QueueEvent::{self, Deq, EmpDeq, Enq};
    use orc11::Val;

    /// A scripted "subject" replaying canned histories — exercises the
    /// runner itself without real threads.
    struct Scripted {
        rounds: Vec<History<QueueEvent>>,
    }

    impl ConformSubject for Scripted {
        type Ev = QueueEvent;

        fn name(&self) -> &str {
            "scripted"
        }

        fn round(&self, spec: &RoundSpec) -> History<QueueEvent> {
            self.rounds[(spec.seed % self.rounds.len() as u64) as usize].clone()
        }
    }

    fn int(i: i64) -> Val {
        Val::Int(i)
    }

    fn good() -> History<QueueEvent> {
        History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1), (Enq(int(2)), 2, 3)],
            vec![
                (Deq(int(1)), 10, 11),
                (Deq(int(2)), 12, 13),
                (EmpDeq, 14, 15),
            ],
        ])
    }

    fn dup() -> History<QueueEvent> {
        History::from_tuples(vec![
            vec![(Enq(int(7)), 0, 1)],
            vec![(Deq(int(7)), 2, 3)],
            vec![(Deq(int(7)), 2, 3)],
        ])
    }

    #[test]
    fn clean_run_aggregates_passes() {
        let subject = Scripted {
            rounds: vec![good()],
        };
        let report = run_conformance(
            &subject,
            &ConformOptions {
                rounds: 5,
                ..ConformOptions::default()
            },
        );
        report.assert_clean();
        assert_eq!(report.execs, 5);
        assert_eq!(report.graph_sizes.count(), 5);
        assert!(report.search.searches > 0, "order stages ran");
        assert!(report.check_ns_by_rule.contains_key(PASS_RULE));
    }

    #[test]
    fn violating_run_samples_and_bundles() {
        // Seeds 0..4 alternate good (even) / duplicated (odd).
        let subject = Scripted {
            rounds: vec![good(), dup()],
        };
        let root =
            std::env::temp_dir().join(format!("compass-conform-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let report = run_conformance(
            &subject,
            &ConformOptions {
                rounds: 4,
                seed0: 0,
                bundle_dir: Some(root.clone()),
                ..ConformOptions::default()
            },
        );
        assert_eq!(report.execs, 4);
        assert_eq!(report.consistent, 2);
        assert_eq!(report.violations.get("CONFORM-QUEUE-DUP"), Some(&2));
        assert_eq!(report.samples.len(), 2);
        assert!(matches!(
            report.samples[0].0,
            ExecOrigin::Random { seed: 1 }
        ));

        // The bundle re-checks offline to the same clause.
        let dir = report.bundle.as_ref().expect("bundle written");
        let (g, result) = recheck::<QueueEvent>(dir).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(result.unwrap_err().rule, "CONFORM-QUEUE-DUP");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_on_violation_short_circuits() {
        let subject = Scripted {
            rounds: vec![dup()],
        };
        let report = run_conformance(
            &subject,
            &ConformOptions {
                rounds: 100,
                stop_on_violation: true,
                ..ConformOptions::default()
            },
        );
        assert_eq!(report.execs, 1);
        assert_eq!(report.consistent, 0);
    }
}
