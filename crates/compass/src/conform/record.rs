//! Timestamped histories and their reconstruction into event graphs.
//!
//! A [`History`] is what the native-side recorder hands back: per-thread
//! sequences of operations, each bracketed by invocation/response
//! timestamps from one shared monotonic clock. [`History::to_graph`]
//! turns it into a Compass [`Graph`] whose `lhb` is the **real-time
//! interval order**: `a` happens-before `b` iff `a` responded strictly
//! before `b` was invoked. See the module docs of [`crate::conform`] for
//! why that under-approximation is the sound direction.

use std::collections::BTreeSet;
use std::io;

use orc11::ThreadId;

use crate::event::EventId;
use crate::graph::Graph;

use super::check::ConformEvent;

/// One operation with its invocation/response interval (`inv <= resp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp<E> {
    /// The operation (what was called and what it returned).
    pub op: E,
    /// Invocation timestamp (shared-clock nanoseconds).
    pub inv: u64,
    /// Response timestamp.
    pub resp: u64,
}

/// A complete per-thread invocation/response history of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History<E> {
    /// `threads[i]` is thread `i+1`'s ops in program order (thread ids
    /// are 1-based, matching the model convention that thread 0 is the
    /// coordinating main thread).
    threads: Vec<Vec<TimedOp<E>>>,
}

impl<E: ConformEvent> History<E> {
    /// Wraps per-thread op logs into a history.
    ///
    /// # Panics
    ///
    /// Panics if any op has `resp < inv` — intervals must be intervals,
    /// or the reconstructed order would not be transitive.
    pub fn new(threads: Vec<Vec<TimedOp<E>>>) -> Self {
        for ops in &threads {
            for t in ops {
                assert!(t.inv <= t.resp, "op {:?} responds before invocation", t.op);
            }
        }
        History { threads }
    }

    /// Builds a history from `(op, inv, resp)` tuples, one `Vec` per
    /// thread.
    ///
    /// # Panics
    ///
    /// As [`History::new`].
    pub fn from_tuples(rows: Vec<Vec<(E, u64, u64)>>) -> Self {
        History::new(
            rows.into_iter()
                .map(|ops| {
                    ops.into_iter()
                        .map(|(op, inv, resp)| TimedOp { op, inv, resp })
                        .collect()
                })
                .collect(),
        )
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of recorded operations.
    pub fn ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Iterates `(thread id, op)` pairs, thread by thread.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &TimedOp<E>)> {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(i, ops)| ops.iter().map(move |t| (i + 1, t)))
    }

    /// Reconstructs the Compass event graph of this history.
    ///
    /// Events get ids (and `step`s) in invocation order; the logical view
    /// of an event is itself plus every operation that **responded
    /// strictly before it was invoked** — the real-time interval order.
    /// That order is transitive (`resp(a) < inv(b) <= resp(b) < inv(c)`
    /// implies `resp(a) < inv(c)` because `inv <= resp`), so the logviews
    /// are downward closed and the graph is well-formed by construction.
    /// Same-thread operations are sequential, hence automatically ordered
    /// (program order is a sub-order of interval order).
    ///
    /// The `so` matching relation is left empty: the conformance checks
    /// recover matching structurally from the recorded values.
    pub fn to_graph(&self) -> Graph<E> {
        let mut flat: Vec<(ThreadId, TimedOp<E>)> = self.iter().map(|(tid, t)| (tid, *t)).collect();
        // Stable keys beyond `inv` make the reconstruction deterministic
        // even under timestamp ties.
        flat.sort_by_key(|&(tid, t)| (t.inv, t.resp, tid));
        let mut g = Graph::new();
        for (i, &(tid, t)) in flat.iter().enumerate() {
            let mut logview: BTreeSet<EventId> = flat[..i]
                .iter()
                .enumerate()
                .filter(|(_, &(_, p))| p.resp < t.inv)
                .map(|(j, _)| EventId::from_raw(j as u64))
                .collect();
            logview.insert(EventId::from_raw(i as u64));
            g.add_event(t.op, tid, i as u64, logview);
        }
        g
    }

    /// Serializes the history in the `history.txt` line format (see
    /// [`crate::conform`] module docs): `#` comment lines from `meta`,
    /// then one `<tid> <inv> <resp> <op>` line per operation.
    pub fn render(&self, meta: &[(&str, String)]) -> String {
        let mut s = String::from("# compass conform history v1\n");
        for (k, v) in meta {
            s.push_str(&format!("# {k}: {v}\n"));
        }
        s.push_str("# <tid> <inv> <resp> <op>\n");
        for (tid, t) in self.iter() {
            s.push_str(&format!("{tid} {} {} {}\n", t.inv, t.resp, t.op.encode()));
        }
        s
    }

    /// Parses the `history.txt` line format back into a history.
    ///
    /// # Errors
    ///
    /// `InvalidData` on malformed lines, undecodable ops, zero thread
    /// ids, or inverted intervals.
    pub fn parse(text: &str) -> io::Result<History<E>> {
        let bad = |line: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed history line: {line:?}"),
            )
        };
        let mut threads: Vec<Vec<TimedOp<E>>> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, char::is_whitespace);
            let tid: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(line))?;
            let inv: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(line))?;
            let resp: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(line))?;
            let op = parts
                .next()
                .and_then(|s| E::decode(s.trim()))
                .ok_or_else(|| bad(line))?;
            if tid == 0 || resp < inv {
                return Err(bad(line));
            }
            if threads.len() < tid {
                threads.resize_with(tid, Vec::new);
            }
            threads[tid - 1].push(TimedOp { op, inv, resp });
        }
        Ok(History { threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_spec::QueueEvent;
    use orc11::Val;
    use QueueEvent::{Deq, EmpDeq, Enq};

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    #[test]
    fn to_graph_orders_by_interval() {
        // t1: Enq(1) [0,10], Enq(2) [20,30]; t2: Deq(1) [5,25] overlaps
        // both enqueues' gap partially: ordered after nothing except what
        // responded before inv=5 (nothing), and before nothing.
        let h = History::from_tuples(vec![
            vec![(Enq(Val::Int(1)), 0, 10), (Enq(Val::Int(2)), 20, 30)],
            vec![(Deq(Val::Int(1)), 5, 25)],
        ]);
        let g = h.to_graph();
        g.check_well_formed().unwrap();
        assert_eq!(g.len(), 3);
        // Ids in invocation order: Enq(1)@0, Deq(1)@5, Enq(2)@20.
        assert_eq!(g.event(id(0)).ty, Enq(Val::Int(1)));
        assert_eq!(g.event(id(1)).ty, Deq(Val::Int(1)));
        assert_eq!(g.event(id(2)).ty, Enq(Val::Int(2)));
        // Program order within t1 is interval order.
        assert!(g.lhb(id(0), id(2)));
        // Enq(1) responded (10) after Deq(1) was invoked (5): unordered.
        assert!(!g.lhb(id(0), id(1)) && !g.lhb(id(1), id(0)));
        // Deq(1) responds at 25, Enq(2) invoked at 20: unordered too.
        assert!(!g.lhb(id(1), id(2)) && !g.lhb(id(2), id(1)));
    }

    #[test]
    fn equal_timestamps_leave_events_unordered() {
        // resp(a) == inv(b): NOT strictly before, so no edge — ties are
        // treated as concurrent (the sound direction).
        let h = History::from_tuples(vec![
            vec![(Enq(Val::Int(1)), 0, 10)],
            vec![(EmpDeq, 10, 20)],
        ]);
        let g = h.to_graph();
        assert!(!g.lhb(id(0), id(1)));
        g.check_well_formed().unwrap();
    }

    #[test]
    #[should_panic(expected = "responds before invocation")]
    fn inverted_interval_is_rejected() {
        let _ = History::from_tuples(vec![vec![(EmpDeq, 10, 5)]]);
    }

    #[test]
    fn render_parse_round_trip() {
        let h = History::from_tuples(vec![
            vec![(Enq(Val::Int(1)), 0, 10), (Deq(Val::Int(1)), 20, 30)],
            vec![(EmpDeq, 2, 4)],
        ]);
        let text = h.render(&[("subject", "MsQueue".into()), ("seed", "7".into())]);
        assert!(text.contains("# subject: MsQueue"));
        let back: History<QueueEvent> = History::parse(&text).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_graph(), h.to_graph());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(History::<QueueEvent>::parse("1 0 10 warble").is_err());
        assert!(
            History::<QueueEvent>::parse("0 0 10 empdeq").is_err(),
            "tid 0"
        );
        assert!(
            History::<QueueEvent>::parse("1 10 5 empdeq").is_err(),
            "inverted"
        );
        assert!(History::<QueueEvent>::parse("1 x 5 empdeq").is_err());
        assert!(
            History::<QueueEvent>::parse("# only comments\n")
                .unwrap()
                .ops()
                == 0
        );
    }
}
