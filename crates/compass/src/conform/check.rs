//! Conformance checks over runtime-reconstructed graphs.
//!
//! The model checker's clause checkers (`queue_spec::check_fifo` & co.)
//! compare commit `step`s, which are exact in the model but meaningless
//! for overlapping runtime operations — reusing them here would flag
//! legal concurrent histories. The conformance checks below use only
//! facts that are sound under the real-time interval order:
//!
//! 1. **Structural** (`*-MATCH`, `*-DUP`, `*-CAUSALITY`, `DEQUE-OWNER`):
//!    every taken value was produced, no value is taken more often than
//!    produced, no take responds before its unique producer is invoked.
//!    These need no search and catch the gross races (duplicated or
//!    invented elements) with an exact witness.
//! 2. **Interval-empty** (`*-EMPTY`): an operation reported "empty"
//!    although some element was provably inside the structure for the
//!    operation's whole interval (produced before it started, taken —
//!    if ever — only after it ended).
//! 3. **Order** (`*-ORDER`, via [`find_linearization`]): the mutators
//!    admit a total order that respects the interval order and replays
//!    through the library's sequential semantics (FIFO/LIFO/deque).
//! 4. **Placement of empties** (queue/stack only): the *full* graph,
//!    empty observations included, linearizes. Deques skip this stage:
//!    a correct work-stealing deque is not linearizable with thief
//!    empty-results included (see [`crate::deque_spec::check_empty`]),
//!    so stage 2 is their sound empty check.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

use orc11::Val;

use crate::deque_spec::{mutator_subgraph, DequeEvent, DequeInterp};
use crate::event::EventId;
use crate::exchanger_spec::ExchangeEvent;
use crate::graph::Graph;
use crate::history::{find_linearization, QueueInterp, StackInterp};
use crate::queue_spec::QueueEvent;
use crate::spec::{SpecResult, Violation};
use crate::stack_spec::StackEvent;

/// An event vocabulary the conformance harness can record, check, and
/// serialize. Implemented for the library event types the paper's specs
/// already define — the harness adds no op enums of its own.
pub trait ConformEvent: Copy + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// Stable one-line encoding for `history.txt` ([`Self::decode`]
    /// inverts it).
    fn encode(&self) -> String;

    /// Parses [`Self::encode`]'s output.
    fn decode(s: &str) -> Option<Self>;

    /// The staged conformance check for this library (see module docs).
    fn check(g: &Graph<Self>) -> SpecResult;

    /// A witness order for the strongest ordering stage this library
    /// supports: a linearization of the full graph for queues/stacks, of
    /// the mutator subgraph (compacted ids!) for deques, and a
    /// topological order of `lhb` for exchangers (whose consistency is
    /// pairwise, not sequential).
    fn linearize(g: &Graph<Self>) -> Option<Vec<EventId>>;
}

fn encode_val(v: Val) -> String {
    match v {
        Val::Null => "null".to_string(),
        Val::Int(i) => i.to_string(),
        // Runtime histories never contain locations; encode loudly and
        // refuse to decode (the bundle stays human-readable regardless).
        Val::Loc(l) => format!("loc?{l:?}"),
    }
}

fn decode_val(s: &str) -> Option<Val> {
    if s == "null" {
        return Some(Val::Null);
    }
    s.parse::<i64>().ok().map(Val::Int)
}

/// Clause names of the generic produce/take checks, per library.
struct TakeRules {
    unmatched: &'static str,
    dup: &'static str,
    causality: &'static str,
    empty: &'static str,
}

/// Stages 1 and 2 of the module docs, generic over how the event type
/// spells "produce", "take", and "observed empty".
fn check_takes<E: Copy + fmt::Debug>(
    g: &Graph<E>,
    produced: impl Fn(&E) -> Option<Val>,
    taken: impl Fn(&E) -> Option<Val>,
    observed_empty: impl Fn(&E) -> bool,
    rules: &TakeRules,
) -> SpecResult {
    let mut producers: BTreeMap<Val, Vec<EventId>> = BTreeMap::new();
    let mut takers: BTreeMap<Val, Vec<EventId>> = BTreeMap::new();
    let mut empties: Vec<EventId> = Vec::new();
    for (id, ev) in g.iter() {
        if let Some(v) = produced(&ev.ty) {
            producers.entry(v).or_default().push(id);
        }
        if let Some(v) = taken(&ev.ty) {
            takers.entry(v).or_default().push(id);
        }
        if observed_empty(&ev.ty) {
            empties.push(id);
        }
    }

    for (v, took) in &takers {
        let prod = producers.get(v).map_or(&[][..], Vec::as_slice);
        if prod.is_empty() {
            return Err(Violation::new(
                rules.unmatched,
                format!("value {v:?} was taken ({:?}) but never produced", took),
                took.clone(),
            ));
        }
        if took.len() > prod.len() {
            return Err(Violation::new(
                rules.dup,
                format!(
                    "value {v:?} was produced {} time(s) but taken {} times ({:?})",
                    prod.len(),
                    took.len(),
                    took
                ),
                took.clone(),
            ));
        }
    }

    // With the driver's distinct-values discipline every value has (at
    // most) one producer and one taker; only such unambiguous pairs feed
    // the causality and interval-empty reasoning (ambiguous values are
    // skipped — conservative, hence sound).
    for (v, prod) in &producers {
        let took = takers.get(v).map_or(&[][..], Vec::as_slice);
        if prod.len() != 1 || took.len() > 1 {
            continue;
        }
        let p = prod[0];
        let t = took.first().copied();
        if let Some(t) = t {
            if g.lhb(t, p) {
                return Err(Violation::new(
                    rules.causality,
                    format!("take {t} of {v:?} responded before its producer {p} was invoked"),
                    vec![p, t],
                ));
            }
        }
        for &e in &empties {
            // The element was in the structure for all of `e`'s interval:
            // produced before `e` started, taken (if ever) only after `e`
            // ended — yet `e` reported empty.
            if g.lhb(p, e) && t.is_none_or(|t| g.lhb(e, t)) {
                return Err(Violation::new(
                    rules.empty,
                    format!(
                        "{e} reported empty although {v:?} (produced by {p}, {}) \
                         was inside for its whole interval",
                        match t {
                            Some(t) => format!("taken by {t} only later"),
                            None => "never taken".to_string(),
                        }
                    ),
                    vec![p, e],
                ));
            }
        }
    }
    Ok(())
}

/// A topological order of `lhb` (Kahn's algorithm over the logviews).
/// Always exists: interval orders are acyclic. Ties break by id, so the
/// output is deterministic.
fn lhb_topological_order<E>(g: &Graph<E>) -> Vec<EventId> {
    let n = g.len();
    let mut indegree = vec![0usize; n];
    for (id, ev) in g.iter() {
        indegree[id.index()] = ev
            .logview
            .iter()
            .filter(|&&e| e != id && !g.event(e).logview.contains(&id))
            .count();
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        let id = EventId::from_raw(i as u64);
        order.push(id);
        for (j, ev) in g.iter() {
            if j != id && ev.logview.contains(&id) && !g.event(id).logview.contains(&j) {
                indegree[j.index()] -= 1;
                if indegree[j.index()] == 0 {
                    ready.push(std::cmp::Reverse(j.index()));
                }
            }
        }
    }
    order
}

const QUEUE_RULES: TakeRules = TakeRules {
    unmatched: "CONFORM-QUEUE-MATCH",
    dup: "CONFORM-QUEUE-DUP",
    causality: "CONFORM-QUEUE-CAUSALITY",
    empty: "CONFORM-QUEUE-EMPTY",
};

/// The staged queue conformance check (see module docs).
pub fn check_conform_queue(g: &Graph<QueueEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_takes(
        g,
        |e| e.enq_value(),
        |e| match e {
            QueueEvent::Deq(v) => Some(*v),
            _ => None,
        },
        |e| matches!(e, QueueEvent::EmpDeq),
        &QUEUE_RULES,
    )?;
    let mutators = g.retain(|_, ev| !matches!(ev.ty, QueueEvent::EmpDeq));
    if find_linearization(&mutators, &QueueInterp, &[]).is_none() {
        return Err(Violation::new(
            "CONFORM-QUEUE-ORDER",
            "no FIFO order of the enqueues/dequeues respects the observed real-time order",
            Vec::new(),
        ));
    }
    if find_linearization(g, &QueueInterp, &[]).is_none() {
        return Err(Violation::new(
            "CONFORM-QUEUE-EMPTY",
            "the empty dequeues cannot be placed: no FIFO linearization \
             including them respects the observed real-time order",
            Vec::new(),
        ));
    }
    Ok(())
}

const STACK_RULES: TakeRules = TakeRules {
    unmatched: "CONFORM-STACK-MATCH",
    dup: "CONFORM-STACK-DUP",
    causality: "CONFORM-STACK-CAUSALITY",
    empty: "CONFORM-STACK-EMPTY",
};

/// The staged stack conformance check (see module docs).
pub fn check_conform_stack(g: &Graph<StackEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_takes(
        g,
        |e| e.push_value(),
        |e| match e {
            StackEvent::Pop(v) => Some(*v),
            _ => None,
        },
        |e| matches!(e, StackEvent::EmpPop),
        &STACK_RULES,
    )?;
    let mutators = g.retain(|_, ev| !matches!(ev.ty, StackEvent::EmpPop));
    if find_linearization(&mutators, &StackInterp, &[]).is_none() {
        return Err(Violation::new(
            "CONFORM-STACK-ORDER",
            "no LIFO order of the pushes/pops respects the observed real-time order",
            Vec::new(),
        ));
    }
    if find_linearization(g, &StackInterp, &[]).is_none() {
        return Err(Violation::new(
            "CONFORM-STACK-EMPTY",
            "the empty pops cannot be placed: no LIFO linearization \
             including them respects the observed real-time order",
            Vec::new(),
        ));
    }
    Ok(())
}

const DEQUE_RULES: TakeRules = TakeRules {
    unmatched: "CONFORM-DEQUE-MATCH",
    dup: "CONFORM-DEQUE-DUP",
    causality: "CONFORM-DEQUE-CAUSALITY",
    empty: "CONFORM-DEQUE-EMPTY",
};

/// The staged work-stealing-deque conformance check.
///
/// No full-graph linearization stage: a *correct* deque is not
/// linearizable with thief empty-results included (a thief can report
/// empty while the owner's reservation-then-pop of the last element
/// straddles it — [`crate::deque_spec::check_empty`]), so the
/// interval-empty stage is the deque's sound empty check.
pub fn check_conform_deque(g: &Graph<DequeEvent>) -> SpecResult {
    g.check_well_formed()?;
    let mut owner = None;
    for (id, ev) in g.iter() {
        if ev.ty.is_owner_op() {
            match owner {
                None => owner = Some((id, ev.tid)),
                Some((first, tid)) if tid != ev.tid => {
                    return Err(Violation::new(
                        "CONFORM-DEQUE-OWNER",
                        format!(
                            "owner ops from two threads: {first} (t{tid}) and {id} (t{})",
                            ev.tid
                        ),
                        vec![first, id],
                    ));
                }
                Some(_) => {}
            }
        }
    }
    check_takes(
        g,
        |e| e.push_value(),
        |e| match e {
            DequeEvent::Pop(v) | DequeEvent::Steal(v) => Some(*v),
            _ => None,
        },
        |e| matches!(e, DequeEvent::EmpPop | DequeEvent::EmpSteal),
        &DEQUE_RULES,
    )?;
    if find_linearization(&mutator_subgraph(g), &DequeInterp, &[]).is_none() {
        return Err(Violation::new(
            "CONFORM-DEQUE-ORDER",
            "no owner-LIFO/thief-FIFO order of the mutators respects the observed real-time order",
            Vec::new(),
        ));
    }
    Ok(())
}

/// The staged exchanger conformance check: every successful exchange has
/// a symmetric cross-over partner whose interval overlaps ours.
pub fn check_conform_exchanger(g: &Graph<ExchangeEvent>) -> SpecResult {
    g.check_well_formed()?;
    let mut partner: BTreeMap<EventId, EventId> = BTreeMap::new();
    for (id, ev) in g.iter() {
        let Some(got) = ev.ty.got else { continue };
        if got == ev.ty.give {
            return Err(Violation::new(
                "CONFORM-XCHG-MATCH",
                format!("{id} received its own offered value {got:?} back"),
                vec![id],
            ));
        }
        // Candidates: a *different* event that offered what we received.
        let offers: Vec<EventId> = g
            .iter()
            .filter(|&(p, pe)| p != id && pe.ty.give == got)
            .map(|(p, _)| p)
            .collect();
        if offers.is_empty() {
            return Err(Violation::new(
                "CONFORM-XCHG-MATCH",
                format!("{id} received {got:?}, which nobody offered"),
                vec![id],
            ));
        }
        let symmetric: Vec<EventId> = offers
            .iter()
            .copied()
            .filter(|&p| g.event(p).ty.got == Some(ev.ty.give))
            .collect();
        if symmetric.is_empty() {
            return Err(Violation::new(
                "CONFORM-XCHG-SYM",
                format!(
                    "{id} received {got:?} but no offerer of {got:?} received {:?} back",
                    ev.ty.give
                ),
                offers,
            ));
        }
        // A matched pair must have been in the exchanger at the same
        // time: real-time-disjoint intervals cannot have exchanged.
        let overlapping: Vec<EventId> = symmetric
            .iter()
            .copied()
            .filter(|&p| !g.lhb(id, p) && !g.lhb(p, id) && g.event(p).tid != g.event(id).tid)
            .collect();
        if overlapping.is_empty() {
            return Err(Violation::new(
                "CONFORM-XCHG-OVERLAP",
                format!(
                    "{id} and its only possible partner(s) {symmetric:?} \
                     did not overlap in real time"
                ),
                symmetric,
            ));
        }
        // With distinct offered values the partner is unique; record it
        // for the injectivity check below.
        if let [p] = overlapping[..] {
            if let Some(&prev) = partner.get(&p) {
                if prev != id {
                    return Err(Violation::new(
                        "CONFORM-XCHG-MATCH",
                        format!("{prev} and {id} both exchanged with {p}"),
                        vec![prev, id, p],
                    ));
                }
            }
            partner.insert(id, p);
            partner.insert(p, id);
        }
    }
    Ok(())
}

impl ConformEvent for QueueEvent {
    fn encode(&self) -> String {
        match self {
            QueueEvent::Enq(v) => format!("enq {}", encode_val(*v)),
            QueueEvent::Deq(v) => format!("deq {}", encode_val(*v)),
            QueueEvent::EmpDeq => "empdeq".to_string(),
        }
    }

    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split_whitespace();
        let ev = match (parts.next()?, parts.next()) {
            ("enq", Some(v)) => QueueEvent::Enq(decode_val(v)?),
            ("deq", Some(v)) => QueueEvent::Deq(decode_val(v)?),
            ("empdeq", None) => QueueEvent::EmpDeq,
            _ => return None,
        };
        parts.next().is_none().then_some(ev)
    }

    fn check(g: &Graph<Self>) -> SpecResult {
        check_conform_queue(g)
    }

    fn linearize(g: &Graph<Self>) -> Option<Vec<EventId>> {
        find_linearization(g, &QueueInterp, &[])
    }
}

impl ConformEvent for StackEvent {
    fn encode(&self) -> String {
        match self {
            StackEvent::Push(v) => format!("push {}", encode_val(*v)),
            StackEvent::Pop(v) => format!("pop {}", encode_val(*v)),
            StackEvent::EmpPop => "emppop".to_string(),
        }
    }

    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split_whitespace();
        let ev = match (parts.next()?, parts.next()) {
            ("push", Some(v)) => StackEvent::Push(decode_val(v)?),
            ("pop", Some(v)) => StackEvent::Pop(decode_val(v)?),
            ("emppop", None) => StackEvent::EmpPop,
            _ => return None,
        };
        parts.next().is_none().then_some(ev)
    }

    fn check(g: &Graph<Self>) -> SpecResult {
        check_conform_stack(g)
    }

    fn linearize(g: &Graph<Self>) -> Option<Vec<EventId>> {
        find_linearization(g, &StackInterp, &[])
    }
}

impl ConformEvent for DequeEvent {
    fn encode(&self) -> String {
        match self {
            DequeEvent::Push(v) => format!("push {}", encode_val(*v)),
            DequeEvent::Pop(v) => format!("pop {}", encode_val(*v)),
            DequeEvent::EmpPop => "emppop".to_string(),
            DequeEvent::Steal(v) => format!("steal {}", encode_val(*v)),
            DequeEvent::EmpSteal => "empsteal".to_string(),
        }
    }

    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split_whitespace();
        let ev = match (parts.next()?, parts.next()) {
            ("push", Some(v)) => DequeEvent::Push(decode_val(v)?),
            ("pop", Some(v)) => DequeEvent::Pop(decode_val(v)?),
            ("steal", Some(v)) => DequeEvent::Steal(decode_val(v)?),
            ("emppop", None) => DequeEvent::EmpPop,
            ("empsteal", None) => DequeEvent::EmpSteal,
            _ => return None,
        };
        parts.next().is_none().then_some(ev)
    }

    fn check(g: &Graph<Self>) -> SpecResult {
        check_conform_deque(g)
    }

    fn linearize(g: &Graph<Self>) -> Option<Vec<EventId>> {
        find_linearization(&mutator_subgraph(g), &DequeInterp, &[])
    }
}

impl ConformEvent for ExchangeEvent {
    fn encode(&self) -> String {
        match self.got {
            Some(w) => format!("xchg {} {}", encode_val(self.give), encode_val(w)),
            None => format!("xchg {} -", encode_val(self.give)),
        }
    }

    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split_whitespace();
        let ev = match (parts.next()?, parts.next()?, parts.next()?) {
            ("xchg", give, "-") => ExchangeEvent {
                give: decode_val(give)?,
                got: None,
            },
            ("xchg", give, got) => ExchangeEvent {
                give: decode_val(give)?,
                got: Some(decode_val(got)?),
            },
            _ => return None,
        };
        parts.next().is_none().then_some(ev)
    }

    fn check(g: &Graph<Self>) -> SpecResult {
        check_conform_exchanger(g)
    }

    fn linearize(g: &Graph<Self>) -> Option<Vec<EventId>> {
        Some(lhb_topological_order(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conform::History;
    use DequeEvent as De;
    use QueueEvent::{Deq, EmpDeq, Enq};
    use StackEvent::{EmpPop, Pop, Push};

    fn int(i: i64) -> Val {
        Val::Int(i)
    }

    #[test]
    fn event_codecs_round_trip() {
        let queue = [Enq(int(5)), Deq(int(-3)), EmpDeq];
        for e in queue {
            assert_eq!(QueueEvent::decode(&e.encode()), Some(e));
        }
        let stack = [Push(int(1)), Pop(int(2)), EmpPop];
        for e in stack {
            assert_eq!(StackEvent::decode(&e.encode()), Some(e));
        }
        let deque = [
            De::Push(int(1)),
            De::Pop(int(2)),
            De::EmpPop,
            De::Steal(int(3)),
            De::EmpSteal,
        ];
        for e in deque {
            assert_eq!(DequeEvent::decode(&e.encode()), Some(e));
        }
        let xchg = [
            ExchangeEvent {
                give: int(1),
                got: Some(int(2)),
            },
            ExchangeEvent {
                give: int(1),
                got: None,
            },
            ExchangeEvent {
                give: Val::Null,
                got: Some(Val::Null),
            },
        ];
        for e in xchg {
            assert_eq!(ExchangeEvent::decode(&e.encode()), Some(e));
        }
        assert_eq!(QueueEvent::decode("enq"), None);
        assert_eq!(QueueEvent::decode("empdeq 3"), None);
        assert_eq!(StackEvent::decode("frob 1"), None);
        assert_eq!(ExchangeEvent::decode("xchg 1"), None);
    }

    #[test]
    fn sequential_queue_history_conforms() {
        let h = History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1), (Enq(int(2)), 2, 3)],
            vec![
                (Deq(int(1)), 10, 11),
                (Deq(int(2)), 12, 13),
                (EmpDeq, 14, 15),
            ],
        ]);
        check_conform_queue(&h.to_graph()).unwrap();
    }

    #[test]
    fn duplicated_take_is_flagged() {
        // Two dequeues of the same once-enqueued value: the weak-queue
        // signature.
        let h = History::from_tuples(vec![
            vec![(Enq(int(7)), 0, 1)],
            vec![(Deq(int(7)), 2, 3)],
            vec![(Deq(int(7)), 2, 3)],
        ]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-DUP");
    }

    #[test]
    fn invented_value_is_flagged() {
        let h = History::from_tuples(vec![vec![(Deq(int(9)), 0, 1)]]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-MATCH");
    }

    #[test]
    fn take_before_produce_is_flagged() {
        let h = History::from_tuples(vec![vec![(Enq(int(4)), 10, 11)], vec![(Deq(int(4)), 0, 1)]]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-CAUSALITY");
    }

    #[test]
    fn empty_despite_resident_element_is_flagged() {
        // Enq finished at 1; EmpDeq ran [5,6]; the only Deq started at 10.
        let h = History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1)],
            vec![(EmpDeq, 5, 6)],
            vec![(Deq(int(1)), 10, 11)],
        ]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-EMPTY");
    }

    #[test]
    fn concurrent_empty_observation_is_allowed() {
        // The taker overlaps the empty observation: the EmpDeq can
        // linearize after the Deq.
        let h = History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1)],
            vec![(EmpDeq, 5, 8)],
            vec![(Deq(int(1)), 4, 9)],
        ]);
        check_conform_queue(&h.to_graph()).unwrap();
    }

    #[test]
    fn fifo_inversion_is_flagged_as_order() {
        // enq1 before enq2 (real time), deq2 before deq1 (real time), no
        // structural anomaly — only the linearization search sees it.
        let h = History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1), (Enq(int(2)), 2, 3)],
            vec![(Deq(int(2)), 10, 11), (Deq(int(1)), 12, 13)],
        ]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-ORDER");
    }

    #[test]
    fn unplaceable_empty_is_flagged() {
        // t2 observes empty strictly between deq(1) and deq(2) — but in
        // any FIFO order value 2 is still inside at that point.
        let h = History::from_tuples(vec![
            vec![(Enq(int(1)), 0, 1), (Enq(int(2)), 2, 3)],
            vec![(Deq(int(1)), 10, 11), (Deq(int(2)), 20, 21)],
            vec![(EmpDeq, 14, 15)],
        ]);
        let err = check_conform_queue(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-QUEUE-EMPTY");
    }

    #[test]
    fn lifo_inversion_is_flagged() {
        // Stack: push1 push2 sequentially, then pop1 before pop2 with a
        // real-time edge between the pops — not LIFO.
        let h = History::from_tuples(vec![
            vec![(Push(int(1)), 0, 1), (Push(int(2)), 2, 3)],
            vec![(Pop(int(1)), 10, 11), (Pop(int(2)), 12, 13)],
        ]);
        let err = check_conform_stack(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-STACK-ORDER");
        // Concurrent pops are fine (either take order linearizes? No —
        // LIFO still forces pop2 first; but with overlap the search may
        // reorder them).
        let ok = History::from_tuples(vec![
            vec![(Push(int(1)), 0, 1), (Push(int(2)), 2, 3)],
            vec![(Pop(int(1)), 10, 20)],
            vec![(Pop(int(2)), 10, 20)],
        ]);
        check_conform_stack(&ok.to_graph()).unwrap();
    }

    #[test]
    fn deque_owner_and_order_checks() {
        // Two threads doing owner ops: flagged.
        let h = History::from_tuples(vec![
            vec![(De::Push(int(1)), 0, 1)],
            vec![(De::Pop(int(1)), 2, 3)],
        ]);
        let err = check_conform_deque(&h.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-DEQUE-OWNER");
        // Owner pushes 1,2 and pops 2 (LIFO); thief steals 1 (FIFO): ok.
        let ok = History::from_tuples(vec![
            vec![
                (De::Push(int(1)), 0, 1),
                (De::Push(int(2)), 2, 3),
                (De::Pop(int(2)), 4, 5),
            ],
            vec![(De::Steal(int(1)), 10, 11), (De::EmpSteal, 12, 13)],
        ]);
        check_conform_deque(&ok.to_graph()).unwrap();
        // Thief steals the *bottom* element while the top one is still
        // there: order violation.
        let bad = History::from_tuples(vec![
            vec![(De::Push(int(1)), 0, 1), (De::Push(int(2)), 2, 3)],
            vec![(De::Steal(int(2)), 10, 11), (De::Steal(int(1)), 12, 13)],
        ]);
        let err = check_conform_deque(&bad.to_graph()).unwrap_err();
        assert_eq!(err.rule, "CONFORM-DEQUE-ORDER");
    }

    #[test]
    fn thief_empty_during_owner_pop_is_allowed() {
        // The deque-specific relaxation: EmpSteal while the owner's pop
        // of the last element is in flight. A full-graph linearization
        // would reject this; the staged check must not.
        let h = History::from_tuples(vec![
            vec![(De::Push(int(1)), 0, 1), (De::Pop(int(1)), 4, 9)],
            vec![(De::EmpSteal, 5, 6)],
        ]);
        check_conform_deque(&h.to_graph()).unwrap();
    }

    #[test]
    fn exchanger_checks() {
        let ok = History::from_tuples(vec![
            vec![(
                ExchangeEvent {
                    give: int(1),
                    got: Some(int(2)),
                },
                0,
                10,
            )],
            vec![(
                ExchangeEvent {
                    give: int(2),
                    got: Some(int(1)),
                },
                1,
                9,
            )],
            vec![(
                ExchangeEvent {
                    give: int(3),
                    got: None,
                },
                0,
                5,
            )],
        ]);
        check_conform_exchanger(&ok.to_graph()).unwrap();

        // Received a value nobody offered.
        let h = History::from_tuples(vec![vec![(
            ExchangeEvent {
                give: int(1),
                got: Some(int(9)),
            },
            0,
            1,
        )]]);
        assert_eq!(
            check_conform_exchanger(&h.to_graph()).unwrap_err().rule,
            "CONFORM-XCHG-MATCH"
        );

        // Partner did not get our value back.
        let h = History::from_tuples(vec![
            vec![(
                ExchangeEvent {
                    give: int(1),
                    got: Some(int(2)),
                },
                0,
                10,
            )],
            vec![(
                ExchangeEvent {
                    give: int(2),
                    got: None,
                },
                1,
                9,
            )],
        ]);
        assert_eq!(
            check_conform_exchanger(&h.to_graph()).unwrap_err().rule,
            "CONFORM-XCHG-SYM"
        );

        // Symmetric pair without real-time overlap.
        let h = History::from_tuples(vec![
            vec![(
                ExchangeEvent {
                    give: int(1),
                    got: Some(int(2)),
                },
                0,
                1,
            )],
            vec![(
                ExchangeEvent {
                    give: int(2),
                    got: Some(int(1)),
                },
                5,
                6,
            )],
        ]);
        assert_eq!(
            check_conform_exchanger(&h.to_graph()).unwrap_err().rule,
            "CONFORM-XCHG-OVERLAP"
        );
    }

    #[test]
    fn topological_order_respects_lhb() {
        let h = History::from_tuples(vec![
            vec![(
                ExchangeEvent {
                    give: int(1),
                    got: None,
                },
                0,
                1,
            )],
            vec![(
                ExchangeEvent {
                    give: int(2),
                    got: None,
                },
                5,
                6,
            )],
        ]);
        let g = h.to_graph();
        let order = ExchangeEvent::linearize(&g).unwrap();
        assert_eq!(order.len(), 2);
        let pos = |id: EventId| order.iter().position(|&x| x == id).unwrap();
        for (d, ev) in g.iter() {
            for &e in &ev.logview {
                if e != d {
                    assert!(pos(e) < pos(d));
                }
            }
        }
    }
}
