//! Deterministic violation replay bundles.
//!
//! When exploration finds a violating (or racy) execution, everything
//! needed to understand *and re-execute* it fits in a small directory:
//!
//! | file | contents |
//! |---|---|
//! | `report.txt`  | rendered failure report ([`crate::report::render_failure`]) |
//! | `graph.dot`   | Graphviz rendering of the event graph (violations only) |
//! | `oplog.txt`   | instruction log, if `orc11::Config::record_ops` was set |
//! | `trace.txt`   | the recorded choice trace, one decision per line |
//! | `bundle.json` | machine-readable summary (schema below) |
//!
//! The trace is the key artefact: the model's only nondeterminism is the
//! recorded [`Choice`] sequence, so [`replay`] (a [`orc11::replay_strategy`]
//! over the saved trace) re-executes the *exact* interleaving — same
//! instruction log, same graph, same violation. `compass::checker`
//! writes a bundle for the first failure of a run (in serial exploration
//! order, whatever the worker-thread count — the failing origin is
//! re-executed once the exploration finishes) when
//! [`crate::checker::CheckOptions::bundle_dir`] is set (env:
//! `COMPASS_BUNDLE_DIR`). A bundle found by any parallel worker replays
//! with the same serial [`replay`] below.
//!
//! The *runtime conformance* harness (`compass::conform`) writes a
//! sibling bundle kind via [`write_conform_bundle`]: no model trace
//! exists there, so instead of `trace.txt`/`oplog.txt` the bundle holds
//! `history.txt` — the recorded per-thread invocation/response history,
//! which [`crate::conform::recheck`] deterministically re-checks offline
//! to the same violated clause.
//!
//! ## `trace.txt` format (version 1)
//!
//! `#`-prefixed lines are comments. Every other line is
//! `<kind> <chosen> <arity>` where `<kind>` is `T` (thread choice) or `R`
//! (read choice), e.g. `T 1 3`.
//!
//! ## `bundle.json` schema (version 3)
//!
//! `{schema_version, kind: "violation"|"model-error", rule, message,
//! events: [..], origin: {mode, ...}, trace_len, steps, ops_recorded}`.
//! (v2 dropped the `index` field from DFS origins: the forced prefix
//! alone identifies the path, and a serial position is meaningless under
//! parallel exploration. v3 adds the `"conform-violation"` kind, whose
//! objects carry `{schema_version, kind, rule, message, events, origin:
//! {mode: "conform", seed}, subject, threads, ops}` instead of the
//! trace fields.)

use std::fs;
use std::io::{self};
use std::path::{Path, PathBuf};

use orc11::{render_ops, replay_strategy, Choice, ChoiceKind, Json, RunOutcome, Strategy};

use crate::checker::{CheckTarget, ExecOrigin};
use crate::conform::{ConformEvent, History, RoundSpec};
use crate::graph::Graph;
use crate::report::render_failure;
use crate::spec::Violation;

/// Version of the `bundle.json` schema (see module docs for the
/// changelog).
pub const SCHEMA_VERSION: u64 = 3;

/// Serializes a choice trace in the `trace.txt` line format.
pub fn render_trace(trace: &[Choice], origin: &ExecOrigin) -> String {
    let mut s = String::new();
    s.push_str("# compass replay trace v1\n");
    s.push_str(&format!("# origin: {origin}\n"));
    s.push_str("# <kind T|R> <chosen> <arity>\n");
    for c in trace {
        let k = match c.kind {
            ChoiceKind::Thread => 'T',
            ChoiceKind::Read => 'R',
        };
        s.push_str(&format!("{k} {} {}\n", c.chosen, c.arity));
    }
    s
}

/// Parses the `trace.txt` line format back into a choice trace.
///
/// # Errors
///
/// `InvalidData` on any malformed line.
pub fn parse_trace(text: &str) -> io::Result<Vec<Choice>> {
    let bad = |line: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed trace line: {line:?}"),
        )
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = match parts.next() {
            Some("T") => ChoiceKind::Thread,
            Some("R") => ChoiceKind::Read,
            _ => return Err(bad(line)),
        };
        let chosen: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(line))?;
        let arity: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(line))?;
        if parts.next().is_some() || chosen >= arity {
            return Err(bad(line));
        }
        out.push(Choice {
            kind,
            chosen,
            arity,
        });
    }
    Ok(out)
}

/// Reads a saved `trace.txt`.
pub fn load_trace(path: &Path) -> io::Result<Vec<Choice>> {
    parse_trace(&fs::read_to_string(path)?)
}

/// Re-executes the exact interleaving of a saved trace.
///
/// Thin on purpose: the whole replay mechanism is that `program` is
/// deterministic given its strategy, so driving it with the recorded
/// decisions ([`orc11::replay_strategy`]) reproduces the execution
/// byte-for-byte (instruction log included, if recording is on).
pub fn replay<G>(
    trace: &[Choice],
    program: impl FnOnce(Box<dyn Strategy>) -> RunOutcome<G>,
) -> RunOutcome<G> {
    program(replay_strategy(trace))
}

/// Picks a fresh `root/<stem>[-k]` directory name (no clock, no
/// randomness: probes for the first unused suffix, so repeat runs get
/// `-2`, `-3`, ...).
fn fresh_dir(root: &Path, stem: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(root)?;
    for k in 1u32.. {
        let name = if k == 1 {
            stem.to_string()
        } else {
            format!("{stem}-{k}")
        };
        let path = root.join(name);
        // `create_dir` (not `create_dir_all`) is the existence probe.
        match fs::create_dir(&path) {
            Ok(()) => return Ok(path),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("u32 suffixes exhausted")
}

#[allow(clippy::too_many_arguments)]
fn summary_json(
    kind: &str,
    rule: &str,
    message: &str,
    events: Vec<String>,
    origin: &ExecOrigin,
    steps: u64,
    trace_len: usize,
    ops_recorded: bool,
) -> Json {
    Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", kind)
        .set("rule", rule)
        .set("message", message)
        .set("events", events)
        .set("origin", origin.to_json())
        .set("trace_len", trace_len)
        .set("steps", steps)
        .set("ops_recorded", ops_recorded)
}

/// Writes a replay bundle for a consistency violation into a fresh
/// subdirectory of `root` and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bundle<G: CheckTarget>(
    root: &Path,
    g: &G,
    violation: &Violation,
    out: &RunOutcome<G>,
    origin: &ExecOrigin,
) -> io::Result<PathBuf> {
    let _span = orc11::trace::span(orc11::trace::Phase::Io, "bundle-write");
    let dir = fresh_dir(root, &format!("violation-{}", violation.rule))?;
    fs::write(
        dir.join("report.txt"),
        g.failure_report(violation, &out.ops),
    )?;
    fs::write(dir.join("graph.dot"), g.dot())?;
    write_common(
        &dir,
        out,
        origin,
        summary_json(
            "violation",
            violation.rule,
            &violation.message,
            violation.events.iter().map(|e| e.to_string()).collect(),
            origin,
            out.steps,
            out.trace.len(),
            !out.ops.is_empty(),
        ),
    )?;
    Ok(dir)
}

/// Writes a replay bundle for an aborted execution (data race, model
/// panic) into a fresh subdirectory of `root` and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_error_bundle<G>(
    root: &Path,
    error: &orc11::ModelError,
    out: &RunOutcome<G>,
    origin: &ExecOrigin,
) -> io::Result<PathBuf> {
    let _span = orc11::trace::span(orc11::trace::Phase::Io, "bundle-write");
    let dir = fresh_dir(root, "model-error")?;
    fs::write(
        dir.join("report.txt"),
        format!("════ MODEL ERROR ════\n{error}\n"),
    )?;
    write_common(
        &dir,
        out,
        origin,
        summary_json(
            "model-error",
            "MODEL-ERROR",
            &error.to_string(),
            Vec::new(),
            origin,
            out.steps,
            out.trace.len(),
            !out.ops.is_empty(),
        ),
    )?;
    Ok(dir)
}

/// Writes a runtime-conformance violation bundle (`compass::conform`)
/// into a fresh subdirectory of `root` and returns its path.
///
/// Instead of a model choice trace, the re-execution artefact is
/// `history.txt`: the recorded invocation/response history, from which
/// [`crate::conform::recheck`] deterministically reconstructs the graph
/// and reproduces the violated clause offline.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_conform_bundle<E: ConformEvent>(
    root: &Path,
    subject: &str,
    hist: &History<E>,
    g: &Graph<E>,
    violation: &Violation,
    spec: &RoundSpec,
) -> io::Result<PathBuf> {
    let _span = orc11::trace::span(orc11::trace::Phase::Io, "bundle-write");
    let dir = fresh_dir(root, &format!("conform-{subject}-{}", violation.rule))?;
    fs::write(dir.join("report.txt"), render_failure(g, violation, &[]))?;
    fs::write(dir.join("graph.dot"), crate::dot::to_dot(g, "violation"))?;
    fs::write(
        dir.join("history.txt"),
        hist.render(&[
            ("subject", subject.to_string()),
            ("seed", spec.seed.to_string()),
            ("threads", spec.threads.to_string()),
            ("ops_per_thread", spec.ops_per_thread.to_string()),
        ]),
    )?;
    let summary = Json::obj()
        .set("schema_version", SCHEMA_VERSION)
        .set("kind", "conform-violation")
        .set("rule", violation.rule)
        .set("message", violation.message.as_str())
        .set(
            "events",
            violation
                .events
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>(),
        )
        .set(
            "origin",
            Json::obj().set("mode", "conform").set("seed", spec.seed),
        )
        .set("subject", subject)
        .set("threads", spec.threads)
        .set("ops", hist.ops());
    fs::write(dir.join("bundle.json"), summary.render_pretty())?;
    Ok(dir)
}

fn write_common<G>(
    dir: &Path,
    out: &RunOutcome<G>,
    origin: &ExecOrigin,
    summary: Json,
) -> io::Result<()> {
    fs::write(dir.join("trace.txt"), render_trace(&out.trace, origin))?;
    let oplog = if out.ops.is_empty() {
        "(no instruction log: run with orc11::Config::record_ops = true)\n".to_string()
    } else {
        render_ops(&out.ops)
    };
    fs::write(dir.join("oplog.txt"), oplog)?;
    fs::write(dir.join("bundle.json"), summary.render_pretty())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Choice> {
        vec![
            Choice {
                kind: ChoiceKind::Thread,
                chosen: 1,
                arity: 3,
            },
            Choice {
                kind: ChoiceKind::Read,
                chosen: 0,
                arity: 2,
            },
        ]
    }

    #[test]
    fn trace_round_trips_through_text() {
        let t = trace();
        let text = render_trace(&t, &ExecOrigin::Random { seed: 7 });
        assert!(text.contains("# origin: random seed 7"));
        assert_eq!(parse_trace(&text).unwrap(), t);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_trace("X 0 2").is_err());
        assert!(parse_trace("T 0").is_err());
        assert!(parse_trace("T 2 2").is_err(), "chosen out of range");
        assert!(parse_trace("T 0 2 9").is_err(), "trailing field");
        assert!(parse_trace("# comment\n\nT 0 2").unwrap().len() == 1);
    }

    #[test]
    fn fresh_dir_never_collides() {
        let root = std::env::temp_dir().join(format!("compass-bundle-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let a = fresh_dir(&root, "violation-X").unwrap();
        let b = fresh_dir(&root, "violation-X").unwrap();
        assert_ne!(a, b);
        assert!(b.ends_with("violation-X-2"));
        fs::remove_dir_all(&root).unwrap();
    }
}
