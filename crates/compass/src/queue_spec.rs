//! Queue consistency conditions (the paper's `QueueConsistent`, §3.1).

use orc11::Val;

#[cfg(test)]
use crate::event::EventId;
use crate::graph::Graph;
use crate::spec::{SpecResult, Violation};

/// Queue events (Figure 2): enqueues, successful dequeues, and failing
/// (empty) dequeues.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueueEvent {
    /// `Enq(v)`: `v` was enqueued.
    Enq(Val),
    /// `Deq(v)`: `v` was dequeued.
    Deq(Val),
    /// `Deq(ε)`: a dequeue observed the queue as empty.
    EmpDeq,
}

impl QueueEvent {
    /// The enqueued value, if this is an enqueue.
    pub fn enq_value(self) -> Option<Val> {
        match self {
            QueueEvent::Enq(v) => Some(v),
            _ => None,
        }
    }
}

/// QUEUE-MATCHES: every `so` edge goes from an `Enq(v)` to a `Deq(v)` of
/// the same value, committed later.
pub fn check_matches(g: &Graph<QueueEvent>) -> SpecResult {
    for &(e, d) in g.so() {
        let (ee, de) = (g.event(e), g.event(d));
        match (&ee.ty, &de.ty) {
            (QueueEvent::Enq(v), QueueEvent::Deq(w)) => {
                if v != w {
                    return Err(Violation::new(
                        "QUEUE-MATCHES",
                        format!("dequeue {d} returned {w} but matches enqueue {e} of {v}"),
                        vec![e, d],
                    ));
                }
                if ee.step >= de.step {
                    return Err(Violation::new(
                        "QUEUE-MATCHES",
                        format!("dequeue {d} committed before its enqueue {e}"),
                        vec![e, d],
                    ));
                }
            }
            _ => {
                return Err(Violation::new(
                    "QUEUE-MATCHES",
                    format!("so edge ({e}, {d}) is not an Enq→Deq pair"),
                    vec![e, d],
                ))
            }
        }
    }
    Ok(())
}

/// QUEUE-INJ: `so` is a partial bijection — an element is dequeued at most
/// once, every successful dequeue takes its value from exactly one
/// enqueue, and empty dequeues match nothing.
pub fn check_injective(g: &Graph<QueueEvent>) -> SpecResult {
    for (id, ev) in g.iter() {
        let outgoing = g.so().iter().filter(|&&(a, _)| a == id).count();
        let incoming = g.so().iter().filter(|&&(_, b)| b == id).count();
        match ev.ty {
            QueueEvent::Enq(_) => {
                if outgoing > 1 {
                    return Err(Violation::new(
                        "QUEUE-INJ",
                        format!("enqueue {id} dequeued {outgoing} times"),
                        vec![id],
                    ));
                }
                if incoming > 0 {
                    return Err(Violation::new(
                        "QUEUE-INJ",
                        format!("enqueue {id} is an so-target"),
                        vec![id],
                    ));
                }
            }
            QueueEvent::Deq(_) => {
                if incoming != 1 {
                    return Err(Violation::new(
                        "QUEUE-INJ",
                        format!("dequeue {id} has {incoming} sources (wants exactly 1)"),
                        vec![id],
                    ));
                }
                if outgoing > 0 {
                    return Err(Violation::new(
                        "QUEUE-INJ",
                        format!("dequeue {id} is an so-source"),
                        vec![id],
                    ));
                }
            }
            QueueEvent::EmpDeq => {
                if incoming + outgoing > 0 {
                    return Err(Violation::new(
                        "QUEUE-INJ",
                        format!("empty dequeue {id} participates in so"),
                        vec![id],
                    ));
                }
            }
        }
    }
    Ok(())
}

/// QUEUE-SO-LHB: a dequeue synchronizes with the enqueue it matches
/// (`(e, d) ∈ so ⇒ (e, d) ∈ lhb`). This is the `LAT_so^abs` (Cosmo-style)
/// view-transfer guarantee of §2.3.
pub fn check_so_lhb(g: &Graph<QueueEvent>) -> SpecResult {
    for &(e, d) in g.so() {
        if !g.lhb(e, d) {
            return Err(Violation::new(
                "QUEUE-SO-LHB",
                format!("dequeue {d} does not happen-after its enqueue {e}"),
                vec![e, d],
            ));
        }
    }
    Ok(())
}

/// QUEUE-FIFO (§3.1): if `(e1, d1) ∈ so` and another enqueue `e2` happens
/// before `e1`, then `e2` must already have been dequeued by some `d2` at
/// `d1`'s commit, with `(d1, d2) ∉ lhb`.
pub fn check_fifo(g: &Graph<QueueEvent>) -> SpecResult {
    for &(e1, d1) in g.so() {
        let d1_step = g.event(d1).step;
        for (e2, ev2) in g.iter() {
            if e2 == e1 || ev2.ty.enq_value().is_none() || !g.lhb(e2, e1) {
                continue;
            }
            match g.so_target(e2) {
                None => {
                    return Err(Violation::new(
                        "QUEUE-FIFO",
                        format!(
                            "{d1} dequeued {e1}, but older enqueue {e2} (lhb-before {e1}) \
                             was never dequeued"
                        ),
                        vec![e1, d1, e2],
                    ))
                }
                Some(d2) => {
                    if g.event(d2).step >= d1_step {
                        return Err(Violation::new(
                            "QUEUE-FIFO",
                            format!(
                                "{d1} dequeued {e1} before the older enqueue {e2} \
                                 (lhb-before {e1}) was dequeued (by {d2})"
                            ),
                            vec![e1, d1, e2, d2],
                        ));
                    }
                    if g.lhb(d1, d2) {
                        return Err(Violation::new(
                            "QUEUE-FIFO",
                            format!("{d1} happens before {d2}, which dequeued the older {e2}"),
                            vec![e1, d1, e2, d2],
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// QUEUE-EMPDEQ (§3.1): an empty dequeue `d` cannot happen-after an
/// enqueue that had not been dequeued by `d`'s commit — otherwise `d`
/// would have found that element.
pub fn check_empdeq(g: &Graph<QueueEvent>) -> SpecResult {
    for (d, ev) in g.iter() {
        if ev.ty != QueueEvent::EmpDeq {
            continue;
        }
        for (e, ee) in g.iter() {
            if ee.ty.enq_value().is_none() || !g.lhb(e, d) {
                continue;
            }
            let dequeued_before = g.so_target(e).is_some_and(|d2| g.event(d2).step < ev.step);
            if !dequeued_before {
                return Err(Violation::new(
                    "QUEUE-EMPDEQ",
                    format!(
                        "empty dequeue {d} happens-after enqueue {e}, which was not \
                         dequeued before {d}'s commit"
                    ),
                    vec![d, e],
                ));
            }
        }
    }
    Ok(())
}

/// The full `QueueConsistent` predicate: structural well-formedness plus
/// every clause above.
pub fn check_queue_consistent(g: &Graph<QueueEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_matches(g)?;
    check_injective(g)?;
    check_so_lhb(g)?;
    check_fifo(g)?;
    check_empdeq(g)?;
    Ok(())
}

/// Checks `QueueConsistent` on every commit-step prefix of the graph, not
/// just the final graph — consistency must hold *invariantly* (it is
/// carried by the `Queue(q, G)` ownership at every step).
pub fn check_queue_consistent_prefixes(g: &Graph<QueueEvent>) -> SpecResult {
    let mut steps: Vec<u64> = g.iter().map(|(_, e)| e.step).collect();
    steps.push(u64::MAX);
    steps.sort_unstable();
    steps.dedup();
    for &s in &steps {
        check_queue_consistent(&g.prefix_at(s))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    /// Builds a graph from (type, step, lhb-predecessors).
    fn graph(events: &[(QueueEvent, u64, &[u64])], so: &[(u64, u64)]) -> Graph<QueueEvent> {
        let mut g = Graph::new();
        for (i, (ty, step, preds)) in events.iter().enumerate() {
            let mut lv: BTreeSet<EventId> = preds.iter().map(|&p| id(p)).collect();
            // Close under lhb.
            let mut closed = lv.clone();
            for &p in &lv {
                closed.extend(g.event(p).logview.iter().copied());
            }
            lv = closed;
            lv.insert(id(i as u64));
            g.add_event(*ty, 1, *step, lv);
        }
        for &(a, b) in so {
            g.add_so(id(a), id(b));
        }
        g
    }

    use QueueEvent::*;

    #[test]
    fn sequential_fifo_history_is_consistent() {
        let v = |i| Val::Int(i);
        let g = graph(
            &[
                (Enq(v(1)), 1, &[]),
                (Enq(v(2)), 2, &[0]),
                (Deq(v(1)), 3, &[0, 1]),
                (Deq(v(2)), 4, &[0, 1, 2]),
            ],
            &[(0, 2), (1, 3)],
        );
        check_queue_consistent(&g).unwrap();
        check_queue_consistent_prefixes(&g).unwrap();
    }

    #[test]
    fn value_mismatch_fails_matches() {
        let g = graph(
            &[(Enq(Val::Int(1)), 1, &[]), (Deq(Val::Int(9)), 2, &[0])],
            &[(0, 1)],
        );
        assert_eq!(check_matches(&g).unwrap_err().rule, "QUEUE-MATCHES");
    }

    #[test]
    fn dequeue_before_enqueue_fails_matches() {
        let g = graph(
            &[(Deq(Val::Int(1)), 1, &[]), (Enq(Val::Int(1)), 2, &[])],
            &[(1, 0)],
        );
        assert_eq!(check_matches(&g).unwrap_err().rule, "QUEUE-MATCHES");
    }

    #[test]
    fn double_dequeue_fails_injectivity() {
        let v = Val::Int(7);
        let g = graph(
            &[(Enq(v), 1, &[]), (Deq(v), 2, &[0]), (Deq(v), 3, &[0])],
            &[(0, 1), (0, 2)],
        );
        assert_eq!(check_injective(&g).unwrap_err().rule, "QUEUE-INJ");
    }

    #[test]
    fn sourceless_dequeue_fails_injectivity() {
        let g = graph(&[(Deq(Val::Int(1)), 1, &[])], &[]);
        assert_eq!(check_injective(&g).unwrap_err().rule, "QUEUE-INJ");
    }

    #[test]
    fn unsynchronized_match_fails_so_lhb() {
        let v = Val::Int(7);
        // so edge without lhb: the dequeue never acquired the enqueue.
        let g = graph(&[(Enq(v), 1, &[]), (Deq(v), 2, &[])], &[(0, 1)]);
        assert_eq!(check_so_lhb(&g).unwrap_err().rule, "QUEUE-SO-LHB");
    }

    #[test]
    fn fifo_violation_detected() {
        // e0 lhb e1 (same producer), but only e1 is dequeued.
        let g = graph(
            &[
                (Enq(Val::Int(1)), 1, &[]),
                (Enq(Val::Int(2)), 2, &[0]),
                (Deq(Val::Int(2)), 3, &[0, 1]),
            ],
            &[(1, 2)],
        );
        assert_eq!(check_fifo(&g).unwrap_err().rule, "QUEUE-FIFO");
    }

    #[test]
    fn fifo_requires_older_dequeue_to_commit_first() {
        // Both dequeued, but the newer enqueue's dequeue commits first.
        let g = graph(
            &[
                (Enq(Val::Int(1)), 1, &[]),
                (Enq(Val::Int(2)), 2, &[0]),
                (Deq(Val::Int(2)), 3, &[0, 1]),
                (Deq(Val::Int(1)), 4, &[0, 1]),
            ],
            &[(1, 2), (0, 3)],
        );
        assert_eq!(check_fifo(&g).unwrap_err().rule, "QUEUE-FIFO");
    }

    #[test]
    fn fifo_accepts_unordered_enqueues() {
        // Concurrent enqueues (no lhb between them): either dequeue order
        // is fine.
        let g = graph(
            &[
                (Enq(Val::Int(1)), 1, &[]),
                (Enq(Val::Int(2)), 2, &[]),
                (Deq(Val::Int(2)), 3, &[1]),
                (Deq(Val::Int(1)), 4, &[0]),
            ],
            &[(1, 2), (0, 3)],
        );
        check_fifo(&g).unwrap();
    }

    #[test]
    fn empdeq_violation_detected() {
        // The empty dequeue happens-after an un-dequeued enqueue.
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (EmpDeq, 2, &[0])], &[]);
        assert_eq!(check_empdeq(&g).unwrap_err().rule, "QUEUE-EMPDEQ");
    }

    #[test]
    fn empdeq_ok_when_not_synchronized() {
        // The enqueue is concurrent (not in the empty dequeue's logview):
        // a weak dequeue may miss it.
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (EmpDeq, 2, &[])], &[]);
        check_empdeq(&g).unwrap();
    }

    #[test]
    fn empdeq_ok_when_element_was_taken() {
        let v = Val::Int(1);
        let g = graph(
            &[(Enq(v), 1, &[]), (Deq(v), 2, &[0]), (EmpDeq, 3, &[0, 1])],
            &[(0, 1)],
        );
        check_queue_consistent(&g).unwrap();
    }

    #[test]
    fn prefix_check_catches_late_repair() {
        // Final graph is FIFO-consistent, but at d(2)'s commit the older
        // enqueue had not yet been dequeued: the prefix check catches it.
        let g = graph(
            &[
                (Enq(Val::Int(1)), 1, &[]),
                (Enq(Val::Int(2)), 2, &[0]),
                (Deq(Val::Int(2)), 3, &[0, 1]),
                (Deq(Val::Int(1)), 4, &[0, 1]),
            ],
            &[(1, 2), (0, 3)],
        );
        // Even the final check sees the step ordering here:
        assert_eq!(check_queue_consistent(&g).unwrap_err().rule, "QUEUE-FIFO");
        assert!(check_queue_consistent_prefixes(&g).is_err());
    }

    #[test]
    fn empty_graph_is_consistent() {
        check_queue_consistent(&Graph::new()).unwrap();
        check_queue_consistent_prefixes(&Graph::new()).unwrap();
    }
}
