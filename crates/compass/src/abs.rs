//! Abstract-state checks (`LAT_hb^abs`, §3.1, and the commit-order replay
//! argument of §3.2).
//!
//! An implementation satisfies a `LAT_hb^abs`-style spec when the abstract
//! state `vs` can be *constructed at the commit points*: the commit order
//! itself must be a valid sequential history. The Michael-Scott queue
//! (release/acquire) satisfies this; the relaxed Herlihy-Wing queue does
//! not in general — its commit order may interleave in a way no sequential
//! queue allows, which is exactly why the paper verifies it against the
//! weaker `LAT_hb` specs (§3.2). [`replay_commit_order`] makes that
//! distinction *measurable* on executions (experiment E2 of `DESIGN.md`).

use crate::event::EventId;
use crate::graph::Graph;
use crate::history::SeqInterp;
use crate::spec::Violation;

/// Replays the graph's *state-changing* events in commit order (event-id
/// order, which is the order commits entered the shared graph) through the
/// sequential interpretation.
///
/// Read-only events ([`SeqInterp::read_only`], e.g. empty dequeues) are
/// skipped: the paper's abs-style specs give no facts about the abstract
/// state for read-only operations (§2.3) — those are governed by the graph
/// conditions (QUEUE-EMPDEQ) instead.
///
/// `Ok(final_state)` means the commit order is itself a valid sequential
/// history of the mutators — the implementation could have constructed the
/// abstract state at its commit points, i.e. it satisfies the
/// `LAT_hb^abs` style.
pub fn replay_commit_order<I: SeqInterp>(
    g: &Graph<I::Ev>,
    interp: &I,
) -> Result<I::State, Violation>
where
    I::Ev: std::fmt::Debug,
{
    let mut st = I::State::default();
    for (id, ev) in g.iter() {
        if interp.read_only(&ev.ty) {
            continue;
        }
        match interp.apply(&st, &ev.ty) {
            Some(next) => st = next,
            None => {
                return Err(Violation::new(
                    "ABS-COMMIT-ORDER",
                    format!(
                        "event {id} ({:?}) is not sequentially enabled at its commit point \
                         (state {st:?})",
                        ev.ty
                    ),
                    vec![id],
                ))
            }
        }
    }
    Ok(st)
}

/// Convenience: `true` iff the commit order replays successfully.
pub fn commit_order_is_linearization<I: SeqInterp>(g: &Graph<I::Ev>, interp: &I) -> bool
where
    I::Ev: std::fmt::Debug,
{
    replay_commit_order(g, interp).is_ok()
}

/// The commit order as a vector of event ids (useful as a linearization
/// witness for [`crate::history::validate_linearization`]).
pub fn commit_order<T>(g: &Graph<T>) -> Vec<EventId> {
    g.iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{QueueInterp, StackInterp};
    use crate::queue_spec::QueueEvent::{Deq, EmpDeq, Enq};
    use crate::stack_spec::StackEvent::{Pop, Push};
    use orc11::Val;
    use std::collections::BTreeSet;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    fn graph<T: Copy>(events: &[T]) -> Graph<T> {
        let mut g = Graph::new();
        for (i, ty) in events.iter().enumerate() {
            let lv: BTreeSet<EventId> = [id(i as u64)].into_iter().collect();
            g.add_event(*ty, 1, i as u64, lv);
        }
        g
    }

    #[test]
    fn fifo_commit_order_replays() {
        let g = graph(&[
            Enq(Val::Int(1)),
            Enq(Val::Int(2)),
            Deq(Val::Int(1)),
            Deq(Val::Int(2)),
            EmpDeq,
        ]);
        let st = replay_commit_order(&g, &QueueInterp).unwrap();
        assert!(st.is_empty());
    }

    #[test]
    fn out_of_order_commit_fails_abs() {
        // Dequeue committed before the matching enqueue's commit: the
        // abstract state cannot be constructed at commit points, even if a
        // reordered linearization exists.
        let g = graph(&[Deq(Val::Int(1)), Enq(Val::Int(1))]);
        let err = replay_commit_order(&g, &QueueInterp).unwrap_err();
        assert_eq!(err.rule, "ABS-COMMIT-ORDER");
        assert!(!commit_order_is_linearization(&g, &QueueInterp));
        // ...but the LAT_hb^hist search does find a reordering:
        assert!(crate::history::find_linearization(&g, &QueueInterp, &[]).is_some());
    }

    #[test]
    fn stack_commit_order() {
        let g = graph(&[Push(Val::Int(1)), Push(Val::Int(2)), Pop(Val::Int(2))]);
        let st = replay_commit_order(&g, &StackInterp).unwrap();
        assert_eq!(st, vec![Val::Int(1)]);
    }

    #[test]
    fn commit_order_witness() {
        let g = graph(&[Enq(Val::Int(1)), Deq(Val::Int(1))]);
        let order = commit_order(&g);
        assert_eq!(order, vec![id(0), id(1)]);
        crate::history::validate_linearization(&g, &QueueInterp, &order).unwrap();
    }
}
