//! Linearizable histories (`LAT_hb^hist`, §3.3): searching for a total
//! order `to` that *respects* (but need not imply) local happens-before
//! and interprets to a sequential abstract state.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use orc11::Val;

use crate::event::EventId;
use crate::graph::Graph;
use crate::queue_spec::QueueEvent;
use crate::spec::{SpecResult, Violation};
use crate::stack_spec::StackEvent;

/// A sequential interpretation of events (the paper's `interp(to, vs)`):
/// applies one event to an abstract state, failing if the event is not
/// enabled.
pub trait SeqInterp {
    /// The event type.
    type Ev;
    /// The abstract state (`vs`).
    type State: Clone + Eq + Hash + Default + fmt::Debug;

    /// Applies `ev` to `st`, or `None` if the sequential semantics forbids
    /// it (e.g. `Pop(v)` when `v` is not on top).
    fn apply(&self, st: &Self::State, ev: &Self::Ev) -> Option<Self::State>;

    /// Whether `ev` is read-only (does not modify the abstract state) —
    /// e.g. an empty dequeue. The `LAT_hb^abs` commit-order replay skips
    /// read-only events, because the paper's abs-style specs give no facts
    /// about `vs` for them (§2.3); the `LAT_hb^hist` linearization search
    /// does *not* skip them (§3.3 demands a total order in which even an
    /// empty pop sees a truly empty state).
    fn read_only(&self, ev: &Self::Ev) -> bool {
        let _ = ev;
        false
    }
}

/// Sequential FIFO queue semantics.
#[derive(Copy, Clone, Debug, Default)]
pub struct QueueInterp;

impl SeqInterp for QueueInterp {
    type Ev = QueueEvent;
    type State = std::collections::VecDeque<Val>;

    fn apply(&self, st: &Self::State, ev: &Self::Ev) -> Option<Self::State> {
        let mut st = st.clone();
        match ev {
            QueueEvent::Enq(v) => {
                st.push_back(*v);
                Some(st)
            }
            QueueEvent::Deq(v) => {
                if st.front() == Some(v) {
                    st.pop_front();
                    Some(st)
                } else {
                    None
                }
            }
            QueueEvent::EmpDeq => st.is_empty().then_some(st),
        }
    }

    fn read_only(&self, ev: &Self::Ev) -> bool {
        matches!(ev, QueueEvent::EmpDeq)
    }
}

/// Sequential LIFO stack semantics (the paper's `interp` in Figure 4).
#[derive(Copy, Clone, Debug, Default)]
pub struct StackInterp;

impl SeqInterp for StackInterp {
    type Ev = StackEvent;
    type State = Vec<Val>;

    fn apply(&self, st: &Self::State, ev: &Self::Ev) -> Option<Self::State> {
        let mut st = st.clone();
        match ev {
            StackEvent::Push(v) => {
                st.push(*v);
                Some(st)
            }
            StackEvent::Pop(v) => {
                if st.last() == Some(v) {
                    st.pop();
                    Some(st)
                } else {
                    None
                }
            }
            StackEvent::EmpPop => st.is_empty().then_some(st),
        }
    }

    fn read_only(&self, ev: &Self::Ev) -> bool {
        matches!(ev, StackEvent::EmpPop)
    }
}

/// Counters for the linearization search ([`find_linearization`]).
///
/// The search is the checker's only super-linear component, so these are
/// the numbers to look at when a spec check is slow: `nodes` is the size
/// of the explored search tree, `backtracks` how much of it was dead
/// ends, and `memo_prunes` how much the (done-set, abstract-state)
/// memoization saved.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Completed calls to [`find_linearization`].
    pub searches: u64,
    /// Search-tree nodes expanded (events tentatively appended to `to`).
    pub nodes: u64,
    /// Nodes retracted after their subtree failed.
    pub backtracks: u64,
    /// Subtrees skipped because an equivalent (done-set, state) pair had
    /// already failed.
    pub memo_prunes: u64,
}

impl SearchStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &SearchStats) {
        self.searches += other.searches;
        self.nodes += other.nodes;
        self.backtracks += other.backtracks;
        self.memo_prunes += other.memo_prunes;
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} searches, {} nodes ({} backtracks, {} memo prunes)",
            self.searches, self.nodes, self.backtracks, self.memo_prunes
        )
    }
}

thread_local! {
    /// Per-thread accumulator filled by [`find_linearization`] and
    /// drained by [`take_search_stats`]. Thread-local (not a parameter)
    /// so the checker can observe searches that happen inside opaque
    /// user-supplied check closures.
    static SEARCH_STATS: RefCell<SearchStats> = const { RefCell::new(SearchStats {
        searches: 0,
        nodes: 0,
        backtracks: 0,
        memo_prunes: 0,
    }) };
}

/// Returns the search counters accumulated on this thread since the last
/// call, resetting them to zero.
///
/// `compass::checker::check_executions` drains this after every check to
/// attribute linearization-search work to its report.
pub fn take_search_stats() -> SearchStats {
    SEARCH_STATS.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// A growable bitset over event indices.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
}

/// Searches for a linearization: a permutation `to` of the graph's events
/// such that
///
/// * `to` respects `lhb` (`H.lhb ⊆ to`) and every `extra` edge, and
/// * replaying `to` through `interp` from the default state succeeds
///   (`interp(to, vs)` for some `vs`).
///
/// Returns the first such order found, or `None` if none exists. The
/// search is exponential in the worst case but memoizes on
/// (done-set, abstract state), which keeps the histories produced by model
/// executions tractable.
///
/// ```
/// use compass::history::{find_linearization, QueueInterp};
/// use compass::queue_spec::QueueEvent;
/// use compass::{EventId, Graph};
/// use orc11::Val;
///
/// // A dequeue committed before its (concurrent) enqueue: the commit
/// // order is not sequential, but a reordering exists.
/// let mut g = Graph::new();
/// g.add_event(QueueEvent::Deq(Val::Int(1)), 2, 10,
///             [EventId::from_raw(0)].into_iter().collect());
/// g.add_event(QueueEvent::Enq(Val::Int(1)), 1, 20,
///             [EventId::from_raw(1)].into_iter().collect());
/// let to = find_linearization(&g, &QueueInterp, &[]).expect("linearizable");
/// assert_eq!(to, vec![EventId::from_raw(1), EventId::from_raw(0)]);
/// ```
pub fn find_linearization<I: SeqInterp>(
    g: &Graph<I::Ev>,
    interp: &I,
    extra: &[(EventId, EventId)],
) -> Option<Vec<EventId>> {
    let _span = orc11::trace::span(orc11::trace::Phase::Linearize, "linearize");
    let n = g.len();
    if n == 0 {
        SEARCH_STATS.with(|s| s.borrow_mut().searches += 1);
        return Some(Vec::new());
    }
    // preds[i] = events that must precede i.
    let mut preds: Vec<Vec<usize>> = g
        .iter()
        .map(|(id, ev)| {
            ev.logview
                .iter()
                .copied()
                .filter(|&e| e != id)
                .map(|e| e.index())
                .collect::<Vec<usize>>()
        })
        .collect();
    for &(a, b) in extra {
        preds[b.index()].push(a.index());
    }
    // Mutual lhb (helping pairs have each other in their logviews) would
    // make the constraints unsatisfiable; keep only the id-ordered half
    // (helpee before helper).
    for (i, pred) in preds.iter_mut().enumerate() {
        let me = EventId::from_raw(i as u64);
        pred.retain(|&p| {
            let mutual = g.event(EventId::from_raw(p as u64)).logview.contains(&me);
            !(mutual && p > i)
        });
        pred.sort_unstable();
        pred.dedup();
    }

    let mut done = BitSet::new(n);
    let mut order: Vec<EventId> = Vec::with_capacity(n);
    let mut memo: HashSet<(BitSet, I::State)> = HashSet::new();
    let state = I::State::default();
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };

    #[allow(clippy::too_many_arguments)]
    fn dfs<I: SeqInterp>(
        g: &Graph<I::Ev>,
        interp: &I,
        preds: &[Vec<usize>],
        done: &mut BitSet,
        order: &mut Vec<EventId>,
        state: &I::State,
        memo: &mut HashSet<(BitSet, I::State)>,
        stats: &mut SearchStats,
        n: usize,
    ) -> bool {
        if order.len() == n {
            return true;
        }
        if !memo.insert((done.clone(), state.clone())) {
            stats.memo_prunes += 1;
            return false;
        }
        for i in 0..n {
            if done.get(i) || !preds[i].iter().all(|&p| done.get(p)) {
                continue;
            }
            let id = EventId::from_raw(i as u64);
            if let Some(next) = interp.apply(state, &g.event(id).ty) {
                done.set(i);
                order.push(id);
                stats.nodes += 1;
                if dfs(g, interp, preds, done, order, &next, memo, stats, n) {
                    return true;
                }
                order.pop();
                done.clear(i);
                stats.backtracks += 1;
            }
        }
        false
    }

    let found = dfs(
        g, interp, &preds, &mut done, &mut order, &state, &mut memo, &mut stats, n,
    );
    SEARCH_STATS.with(|s| s.borrow_mut().merge(&stats));
    if found {
        Some(order)
    } else {
        None
    }
}

/// Validates that `order` is a linearization of `g`: a permutation
/// respecting `lhb` whose replay through `interp` succeeds.
pub fn validate_linearization<I: SeqInterp>(
    g: &Graph<I::Ev>,
    interp: &I,
    order: &[EventId],
) -> SpecResult {
    if order.len() != g.len() {
        return Err(Violation::new(
            "HIST-PERMUTE",
            format!("order has {} events, graph has {}", order.len(), g.len()),
            order.to_vec(),
        ));
    }
    let mut pos = vec![usize::MAX; g.len()];
    for (k, &id) in order.iter().enumerate() {
        if id.index() >= g.len() || pos[id.index()] != usize::MAX {
            return Err(Violation::new(
                "HIST-PERMUTE",
                format!("{id} repeated or unknown"),
                vec![id],
            ));
        }
        pos[id.index()] = k;
    }
    for (d, ev) in g.iter() {
        for &e in &ev.logview {
            if e == d {
                continue;
            }
            // Helping pairs are mutually lhb-related; only the id order is
            // required of `to` for them.
            if g.event(e).logview.contains(&d) {
                continue;
            }
            if pos[e.index()] > pos[d.index()] {
                return Err(Violation::new(
                    "HIST-RESPECTS-LHB",
                    format!("{e} lhb {d} but comes later in to"),
                    vec![e, d],
                ));
            }
        }
    }
    let mut st = I::State::default();
    for &id in order {
        match interp.apply(&st, &g.event(id).ty) {
            Some(next) => st = next,
            None => {
                return Err(Violation::new(
                    "HIST-INTERP",
                    format!(
                        "{id} ({:?}-th in to) is not sequentially enabled",
                        pos[id.index()]
                    ),
                    vec![id],
                ))
            }
        }
    }
    Ok(())
}

/// The `LAT_hb^hist` satisfaction check (HIST-HB-*-LINEARIZABLE): some
/// linearization exists.
pub fn check_linearizable<I: SeqInterp>(g: &Graph<I::Ev>, interp: &I) -> SpecResult {
    match find_linearization(g, interp, &[]) {
        Some(order) => validate_linearization(g, interp, &order),
        None => Err(Violation::new(
            "HIST-LINEARIZABLE",
            "no linearization respecting lhb exists".to_string(),
            Vec::new(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    fn graph<T: Copy>(events: &[(T, u64, &[u64])]) -> Graph<T> {
        let mut g = Graph::new();
        for (i, (ty, step, preds)) in events.iter().enumerate() {
            let mut lv: BTreeSet<EventId> = preds.iter().map(|&p| id(p)).collect();
            let mut closed = lv.clone();
            for &p in &lv {
                closed.extend(g.event(p).logview.iter().copied());
            }
            lv = closed;
            lv.insert(id(i as u64));
            g.add_event(*ty, 1, *step, lv);
        }
        g
    }

    use QueueEvent::{Deq, EmpDeq, Enq};
    use StackEvent::{EmpPop, Pop, Push};

    #[test]
    fn queue_interp_semantics() {
        let i = QueueInterp;
        let st = i.apply(&Default::default(), &Enq(Val::Int(1))).unwrap();
        let st = i.apply(&st, &Enq(Val::Int(2))).unwrap();
        assert!(i.apply(&st, &Deq(Val::Int(2))).is_none(), "not FIFO head");
        let st = i.apply(&st, &Deq(Val::Int(1))).unwrap();
        assert!(i.apply(&st, &EmpDeq).is_none(), "not empty yet");
        let st = i.apply(&st, &Deq(Val::Int(2))).unwrap();
        i.apply(&st, &EmpDeq).unwrap();
    }

    #[test]
    fn stack_interp_semantics() {
        let i = StackInterp;
        let st = i.apply(&Default::default(), &Push(Val::Int(1))).unwrap();
        let st = i.apply(&st, &Push(Val::Int(2))).unwrap();
        assert!(i.apply(&st, &Pop(Val::Int(1))).is_none(), "not on top");
        let st = i.apply(&st, &Pop(Val::Int(2))).unwrap();
        let st = i.apply(&st, &Pop(Val::Int(1))).unwrap();
        i.apply(&st, &EmpPop).unwrap();
    }

    #[test]
    fn finds_reordering_against_commit_order() {
        // Commit order is Deq-before-Enq-completion impossible sequentially;
        // here: events with NO lhb edges, committed in a "wrong" order, and
        // the search must reorder them.
        let g = graph(&[(Deq(Val::Int(1)), 10, &[]), (Enq(Val::Int(1)), 20, &[])]);
        let to = find_linearization(&g, &QueueInterp, &[]).unwrap();
        assert_eq!(to, vec![id(1), id(0)]);
        validate_linearization(&g, &QueueInterp, &to).unwrap();
    }

    #[test]
    fn respects_lhb_constraints() {
        // EmpDeq happens-after the enqueue: no valid linearization (the
        // enqueue would have to come first but then the queue is nonempty).
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (EmpDeq, 2, &[0])]);
        assert!(find_linearization(&g, &QueueInterp, &[]).is_none());
        assert!(check_linearizable(&g, &QueueInterp).is_err());
    }

    #[test]
    fn emppop_can_slide_before_concurrent_push() {
        // The empty pop is concurrent with the push: linearize it first.
        let g = graph(&[(Push(Val::Int(1)), 1, &[]), (EmpPop, 2, &[])]);
        let to = find_linearization(&g, &StackInterp, &[]).unwrap();
        assert_eq!(to, vec![id(1), id(0)]);
    }

    #[test]
    fn extra_edges_constrain_search() {
        let g = graph(&[(Push(Val::Int(1)), 1, &[]), (EmpPop, 2, &[])]);
        // Forcing push before emp-pop makes it unsatisfiable.
        assert!(find_linearization(&g, &StackInterp, &[(id(0), id(1))]).is_none());
    }

    #[test]
    fn lifo_reordering_found() {
        // push1 push2 pop2 pop1 committed as push1 push2 pop1 pop2 would be
        // invalid; with no lhb between the pops the search reorders.
        let g = graph(&[
            (Push(Val::Int(1)), 1, &[]),
            (Push(Val::Int(2)), 2, &[0]),
            (Pop(Val::Int(1)), 3, &[0]),
            (Pop(Val::Int(2)), 4, &[1]),
        ]);
        let to = find_linearization(&g, &StackInterp, &[]).unwrap();
        validate_linearization(&g, &StackInterp, &to).unwrap();
    }

    #[test]
    fn validate_rejects_bad_orders() {
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (Deq(Val::Int(1)), 2, &[0])]);
        // Wrong length.
        assert!(validate_linearization(&g, &QueueInterp, &[id(0)]).is_err());
        // Duplicate.
        assert!(validate_linearization(&g, &QueueInterp, &[id(0), id(0)]).is_err());
        // lhb violated.
        assert_eq!(
            validate_linearization(&g, &QueueInterp, &[id(1), id(0)])
                .unwrap_err()
                .rule,
            "HIST-RESPECTS-LHB"
        );
        // Good order.
        validate_linearization(&g, &QueueInterp, &[id(0), id(1)]).unwrap();
    }

    #[test]
    fn helping_pair_mutual_lhb_is_searchable() {
        // Elimination pair: push and pop with each other in their logviews.
        let mut g: Graph<StackEvent> = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        g.add_event(Push(Val::Int(5)), 1, 7, lv.clone());
        g.add_event(Pop(Val::Int(5)), 2, 7, lv);
        let to = find_linearization(&g, &StackInterp, &[]).unwrap();
        assert_eq!(to, vec![id(0), id(1)]);
        validate_linearization(&g, &StackInterp, &to).unwrap();
    }

    #[test]
    fn empty_graph_linearizes() {
        let g: Graph<QueueEvent> = Graph::new();
        assert_eq!(find_linearization(&g, &QueueInterp, &[]), Some(vec![]));
        check_linearizable(&g, &QueueInterp).unwrap();
    }

    #[test]
    fn search_stats_accumulate_and_drain() {
        let _ = take_search_stats();
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (Deq(Val::Int(1)), 2, &[0])]);
        find_linearization(&g, &QueueInterp, &[]).unwrap();
        let s = take_search_stats();
        assert_eq!(s.searches, 1);
        // The straight-line history linearizes without retraction.
        assert_eq!(s.nodes, 2);
        assert_eq!(s.backtracks, 0);
        // Drained: a second take sees zeros.
        assert_eq!(take_search_stats(), SearchStats::default());
    }

    #[test]
    fn failed_search_counts_backtracks() {
        let _ = take_search_stats();
        // EmpDeq after the enqueue: unsatisfiable, so every expansion is
        // eventually retracted.
        let g = graph(&[(Enq(Val::Int(1)), 1, &[]), (EmpDeq, 2, &[0])]);
        assert!(find_linearization(&g, &QueueInterp, &[]).is_none());
        let s = take_search_stats();
        assert_eq!(s.searches, 1);
        assert!(s.nodes > 0);
        assert_eq!(s.backtracks, s.nodes, "all expansions fail: {s}");
    }

    #[test]
    fn memo_prunes_are_counted() {
        let _ = take_search_stats();
        // Two independent enqueues followed by an impossible dequeue: both
        // enqueue interleavings reach the same {0,1}-done state, so the
        // second hits the memo.
        let g = graph(&[
            (Enq(Val::Int(1)), 1, &[]),
            (Enq(Val::Int(1)), 2, &[]),
            (Deq(Val::Int(9)), 3, &[0, 1]),
        ]);
        assert!(find_linearization(&g, &QueueInterp, &[]).is_none());
        let s = take_search_stats();
        assert!(s.memo_prunes > 0, "expected memo hits: {s}");
    }
}
