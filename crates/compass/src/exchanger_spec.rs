//! Exchanger consistency conditions (`ExchangerConsistent`, §4.2) — per
//! the paper, the first CSL spec ever proposed for relaxed-memory
//! exchangers.

use orc11::Val;

use crate::event::EventId;
use crate::graph::Graph;
use crate::spec::{SpecResult, Violation};

/// An exchange event `Exchange(v₁, v₂)`: the caller offered `give` and
/// received `got` (`None` encodes the failure value ⊥).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExchangeEvent {
    /// The value offered by the caller (never ⊥).
    pub give: Val,
    /// The value received, or `None` if the exchange failed.
    pub got: Option<Val>,
}

impl ExchangeEvent {
    /// Whether the exchange succeeded.
    pub fn succeeded(self) -> bool {
        self.got.is_some()
    }
}

/// EXCHANGER-OFFERS: offered values are never ⊥ (`v₁ ≠ ⊥` is a
/// precondition of `exchange`, enforced here as a graph invariant).
pub fn check_offers(g: &Graph<ExchangeEvent>) -> SpecResult {
    for (id, ev) in g.iter() {
        if ev.ty.give.is_null() {
            return Err(Violation::new(
                "EXCHANGER-OFFERS",
                format!("event {id} offered ⊥"),
                vec![id],
            ));
        }
    }
    Ok(())
}

/// EXCHANGER-SYM: `so` is symmetric and irreflexive — matched exchanges
/// synchronize *with each other* (`G'.so = {(e₁,e₂),(e₂,e₁)} ∪ G.so`).
pub fn check_symmetric(g: &Graph<ExchangeEvent>) -> SpecResult {
    for &(a, b) in g.so() {
        if a == b {
            return Err(Violation::new(
                "EXCHANGER-SYM",
                format!("reflexive so edge on {a}"),
                vec![a],
            ));
        }
        if !g.so().contains(&(b, a)) {
            return Err(Violation::new(
                "EXCHANGER-SYM",
                format!("so edge ({a}, {b}) lacks its mirror"),
                vec![a, b],
            ));
        }
    }
    Ok(())
}

/// EXCHANGER-MATCHES: every successful exchange has exactly one partner;
/// the values cross over (`e₁` got what `e₂` gave and vice versa); failed
/// exchanges have no partner.
pub fn check_matches(g: &Graph<ExchangeEvent>) -> SpecResult {
    for (id, ev) in g.iter() {
        let partners: Vec<EventId> = g
            .so()
            .iter()
            .filter(|&&(a, _)| a == id)
            .map(|&(_, b)| b)
            .collect();
        match ev.ty.got {
            None => {
                if !partners.is_empty() {
                    return Err(Violation::new(
                        "EXCHANGER-MATCHES",
                        format!("failed exchange {id} has partners {partners:?}"),
                        vec![id],
                    ));
                }
            }
            Some(v) => {
                if partners.len() != 1 {
                    return Err(Violation::new(
                        "EXCHANGER-MATCHES",
                        format!(
                            "successful exchange {id} has {} partners (wants exactly 1)",
                            partners.len()
                        ),
                        vec![id],
                    ));
                }
                let p = partners[0];
                let pe = &g.event(p).ty;
                if pe.give != v || pe.got != Some(ev.ty.give) {
                    return Err(Violation::new(
                        "EXCHANGER-MATCHES",
                        format!(
                            "pair ({id}, {p}) values do not cross over: \
                             {:?} vs {:?}",
                            ev.ty, pe
                        ),
                        vec![id, p],
                    ));
                }
            }
        }
    }
    Ok(())
}

/// EXCHANGER-ATOMIC-PAIRS: a matched pair is committed atomically together
/// (helping, §4.2): both events share the same commit instruction and the
/// same logical view `M' ∋ {e₁, e₂}`, so no operation can observe the
/// intermediate state between the two commits.
pub fn check_atomic_pairs(g: &Graph<ExchangeEvent>) -> SpecResult {
    for &(a, b) in g.so() {
        if a > b {
            continue; // each pair once
        }
        let (ea, eb) = (g.event(a), g.event(b));
        if ea.step != eb.step {
            return Err(Violation::new(
                "EXCHANGER-ATOMIC-PAIRS",
                format!(
                    "pair ({a}, {b}) committed at different steps {} and {}",
                    ea.step, eb.step
                ),
                vec![a, b],
            ));
        }
        if !ea.logview.contains(&b) || !eb.logview.contains(&a) || ea.logview != eb.logview {
            return Err(Violation::new(
                "EXCHANGER-ATOMIC-PAIRS",
                format!("pair ({a}, {b}) does not share the completed logview M'"),
                vec![a, b],
            ));
        }
        if ea.tid == eb.tid {
            return Err(Violation::new(
                "EXCHANGER-ATOMIC-PAIRS",
                format!("pair ({a}, {b}) belongs to a single thread {}", ea.tid),
                vec![a, b],
            ));
        }
    }
    Ok(())
}

/// The full `ExchangerConsistent` predicate.
///
/// Note (§4.2): in the paper, consistency holds of *completed* graphs;
/// between a helpee's and a helper's commit the exchanger is in an
/// intermediate state. In this executable framework the two commits happen
/// in one instruction ([`crate::LibObj::commit_pair`]), so every observable
/// graph is completed and consistency is checkable unconditionally.
pub fn check_exchanger_consistent(g: &Graph<ExchangeEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_offers(g)?;
    check_symmetric(g)?;
    check_matches(g)?;
    check_atomic_pairs(g)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    fn pair_graph() -> Graph<ExchangeEvent> {
        let mut g = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        g.add_event(
            ExchangeEvent {
                give: Val::Int(1),
                got: Some(Val::Int(2)),
            },
            1,
            5,
            lv.clone(),
        );
        g.add_event(
            ExchangeEvent {
                give: Val::Int(2),
                got: Some(Val::Int(1)),
            },
            2,
            5,
            lv,
        );
        g.add_so(id(0), id(1));
        g.add_so(id(1), id(0));
        g
    }

    #[test]
    fn matched_pair_is_consistent() {
        check_exchanger_consistent(&pair_graph()).unwrap();
    }

    #[test]
    fn failure_event_is_consistent() {
        let mut g = Graph::new();
        g.add_event(
            ExchangeEvent {
                give: Val::Int(1),
                got: None,
            },
            1,
            1,
            [id(0)].into_iter().collect(),
        );
        check_exchanger_consistent(&g).unwrap();
    }

    #[test]
    fn null_offer_rejected() {
        let mut g = Graph::new();
        g.add_event(
            ExchangeEvent {
                give: Val::Null,
                got: None,
            },
            1,
            1,
            [id(0)].into_iter().collect(),
        );
        assert_eq!(
            check_exchanger_consistent(&g).unwrap_err().rule,
            "EXCHANGER-OFFERS"
        );
    }

    #[test]
    fn asymmetric_so_rejected() {
        let mut g = pair_graph();
        g.add_event(
            ExchangeEvent {
                give: Val::Int(3),
                got: None,
            },
            3,
            9,
            [id(2)].into_iter().collect(),
        );
        g.add_so(id(0), id(2));
        assert_eq!(check_symmetric(&g).unwrap_err().rule, "EXCHANGER-SYM");
    }

    #[test]
    fn values_must_cross_over() {
        let mut g = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        g.add_event(
            ExchangeEvent {
                give: Val::Int(1),
                got: Some(Val::Int(9)), // lies about what it got
            },
            1,
            5,
            lv.clone(),
        );
        g.add_event(
            ExchangeEvent {
                give: Val::Int(2),
                got: Some(Val::Int(1)),
            },
            2,
            5,
            lv,
        );
        g.add_so(id(0), id(1));
        g.add_so(id(1), id(0));
        assert_eq!(check_matches(&g).unwrap_err().rule, "EXCHANGER-MATCHES");
    }

    #[test]
    fn split_commit_rejected() {
        // Same pair but committed at different steps: intermediate state
        // was observable.
        let mut g = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        g.add_event(
            ExchangeEvent {
                give: Val::Int(1),
                got: Some(Val::Int(2)),
            },
            1,
            5,
            lv.clone(),
        );
        g.add_event(
            ExchangeEvent {
                give: Val::Int(2),
                got: Some(Val::Int(1)),
            },
            2,
            6,
            lv,
        );
        g.add_so(id(0), id(1));
        g.add_so(id(1), id(0));
        assert_eq!(
            check_atomic_pairs(&g).unwrap_err().rule,
            "EXCHANGER-ATOMIC-PAIRS"
        );
    }

    #[test]
    fn self_exchange_rejected() {
        let mut g = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        for _ in 0..2 {
            g.add_event(
                ExchangeEvent {
                    give: Val::Int(1),
                    got: Some(Val::Int(1)),
                },
                1, // same thread!
                5,
                lv.clone(),
            );
        }
        g.add_so(id(0), id(1));
        g.add_so(id(1), id(0));
        assert_eq!(
            check_atomic_pairs(&g).unwrap_err().rule,
            "EXCHANGER-ATOMIC-PAIRS"
        );
    }
}
