//! Event graphs: events plus the `so` matching relation.

use std::collections::BTreeSet;
use std::fmt;

use orc11::ThreadId;

use crate::event::{Event, EventId};
use crate::spec::{SpecResult, Violation};

/// A library object's event graph (the paper's `G ∈ Graph`, §3.1): the
/// events committed so far and the *synchronized-with* relation `so`
/// between matched operations (enqueue/dequeue, push/pop, or a pair of
/// successful exchanges).
///
/// Local happens-before (`lhb`) is not stored separately: `(e, d) ∈ G.lhb`
/// iff `e ∈ G(d).logview` (see [`Graph::lhb`]).
///
/// ```
/// use compass::{EventId, Graph};
///
/// let mut g: Graph<&str> = Graph::new();
/// let e = g.add_event("enq", 1, 10, [EventId::from_raw(0)].into_iter().collect());
/// let d = g.add_event("deq", 2, 20,
///                     [EventId::from_raw(0), EventId::from_raw(1)].into_iter().collect());
/// g.add_so(e, d);
/// assert!(g.lhb(e, d));
/// assert_eq!(g.so_source(d), Some(e));
/// g.check_well_formed().unwrap();
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph<T> {
    events: Vec<Event<T>>,
    so: BTreeSet<(EventId, EventId)>,
}

impl<T> Graph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        Graph {
            events: Vec::new(),
            so: BTreeSet::new(),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The id the next committed event will get.
    pub fn next_id(&self) -> EventId {
        EventId::from_raw(self.events.len() as u64)
    }

    /// The event with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the graph.
    pub fn event(&self, id: EventId) -> &Event<T> {
        &self.events[id.index()]
    }

    /// Iterates over `(id, event)` pairs in id (commit) order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &Event<T>)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (EventId::from_raw(i as u64), e))
    }

    /// The `so` relation.
    pub fn so(&self) -> &BTreeSet<(EventId, EventId)> {
        &self.so
    }

    /// Local happens-before: `e` happens before `d` (strictly).
    pub fn lhb(&self, e: EventId, d: EventId) -> bool {
        e != d && self.events[d.index()].logview.contains(&e)
    }

    /// Adds an event; returns its id.
    pub fn add_event(
        &mut self,
        ty: T,
        tid: ThreadId,
        step: u64,
        logview: BTreeSet<EventId>,
    ) -> EventId {
        let id = self.next_id();
        self.events.push(Event {
            ty,
            tid,
            step,
            logview,
        });
        id
    }

    /// Adds an `so` edge.
    pub fn add_so(&mut self, from: EventId, to: EventId) {
        self.so.insert((from, to));
    }

    /// The unique `so`-successor of `e`, if any (e.g. the dequeue matching
    /// an enqueue).
    pub fn so_target(&self, e: EventId) -> Option<EventId> {
        self.so.iter().find(|&&(a, _)| a == e).map(|&(_, b)| b)
    }

    /// The unique `so`-predecessor of `d`, if any (e.g. the enqueue a
    /// dequeue took its value from).
    pub fn so_source(&self, d: EventId) -> Option<EventId> {
        self.so.iter().find(|&&(_, b)| b == d).map(|&(a, _)| a)
    }

    /// Structural well-formedness of logical views:
    ///
    /// * every id in a logview is an event of the graph;
    /// * every event is in its own logview (the commit observes itself);
    /// * logviews are closed under `lhb` (if `e ∈ logview(d)` then
    ///   `logview(e) ⊆ logview(d)`) — logical views are *views*, i.e.
    ///   downward-closed sets of the lhb partial order.
    pub fn check_well_formed(&self) -> SpecResult {
        let n = self.events.len() as u64;
        for (id, ev) in self.iter() {
            for &e in &ev.logview {
                if e.raw() >= n {
                    return Err(Violation::new(
                        "WF-LOGVIEW",
                        format!("logview of {id} contains unknown event {e}"),
                        vec![id, e],
                    ));
                }
            }
            if !ev.logview.contains(&id) {
                return Err(Violation::new(
                    "WF-SELF",
                    format!("event {id} is not in its own logview"),
                    vec![id],
                ));
            }
            for &e in &ev.logview {
                if e != id && !self.events[e.index()].logview.is_subset(&ev.logview) {
                    return Err(Violation::new(
                        "WF-CLOSED",
                        format!("logview of {id} contains {e} but not all of {e}'s logview"),
                        vec![id, e],
                    ));
                }
            }
        }
        for &(a, b) in &self.so {
            if a.raw() >= n || b.raw() >= n {
                return Err(Violation::new(
                    "WF-SO",
                    format!("so edge ({a}, {b}) mentions unknown events"),
                    vec![a, b],
                ));
            }
        }
        Ok(())
    }

    /// The subgraph of events satisfying `keep`, with ids compacted (in
    /// id order), logviews and `so` restricted and remapped.
    ///
    /// Useful for checking a property on a projection of the history —
    /// e.g. linearizability of a work-stealing deque's *mutators* only.
    pub fn retain(&self, mut keep: impl FnMut(EventId, &Event<T>) -> bool) -> Graph<T>
    where
        T: Clone,
    {
        // Decide keeps and assign compacted ids first (logviews may refer
        // forward within helping pairs).
        let mut remap: Vec<Option<EventId>> = vec![None; self.events.len()];
        let mut next = 0u64;
        for (id, ev) in self.iter() {
            if keep(id, ev) {
                remap[id.index()] = Some(EventId::from_raw(next));
                next += 1;
            }
        }
        let mut g = Graph::new();
        for (id, ev) in self.iter() {
            if let Some(new_id) = remap[id.index()] {
                let logview: BTreeSet<EventId> = ev
                    .logview
                    .iter()
                    .filter_map(|e| remap.get(e.index()).copied().flatten())
                    .chain(std::iter::once(new_id))
                    .collect();
                g.add_event(ev.ty.clone(), ev.tid, ev.step, logview);
            }
        }
        for &(a, b) in &self.so {
            if let (Some(na), Some(nb)) = (remap[a.index()], remap[b.index()]) {
                g.add_so(na, nb);
            }
        }
        g
    }

    /// The subgraph of events committed strictly before global step
    /// `step`, with `so` restricted accordingly.
    ///
    /// Because ids are assigned in commit order, the prefix keeps ids
    /// stable. Used to check that consistency held *invariantly*, not just
    /// in the final graph.
    pub fn prefix_at(&self, step: u64) -> Graph<T>
    where
        T: Clone,
    {
        let keep = |id: EventId| self.events[id.index()].step < step;
        let events: Vec<Event<T>> = self
            .events
            .iter()
            .take_while(|e| e.step < step)
            .map(|e| Event {
                ty: e.ty.clone(),
                tid: e.tid,
                step: e.step,
                logview: e.logview.iter().copied().filter(|&x| keep(x)).collect(),
            })
            .collect();
        let so = self
            .so
            .iter()
            .copied()
            .filter(|&(a, b)| keep(a) && keep(b))
            .collect();
        Graph { events, so }
    }
}

impl<T: fmt::Debug> fmt::Display for Graph<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph with {} events:", self.len())?;
        for (id, ev) in self.iter() {
            writeln!(
                f,
                "  {id}: {:?} by t{} @step {} lhb-preds {:?}",
                ev.ty,
                ev.tid,
                ev.step,
                ev.logview.iter().filter(|&&e| e != id).collect::<Vec<_>>()
            )?;
        }
        writeln!(f, "  so: {:?}", self.so)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(ids: &[u64]) -> BTreeSet<EventId> {
        ids.iter().map(|&i| EventId::from_raw(i)).collect()
    }

    #[test]
    fn add_and_query() {
        let mut g: Graph<&str> = Graph::new();
        let a = g.add_event("enq", 1, 10, lv(&[0]));
        let b = g.add_event("deq", 2, 20, lv(&[0, 1]));
        assert_eq!(g.len(), 2);
        assert_eq!(g.event(a).ty, "enq");
        assert!(g.lhb(a, b));
        assert!(!g.lhb(b, a));
        assert!(!g.lhb(a, a), "lhb is strict");
        g.add_so(a, b);
        assert_eq!(g.so_target(a), Some(b));
        assert_eq!(g.so_source(b), Some(a));
        assert_eq!(g.so_source(a), None);
    }

    #[test]
    fn well_formed_accepts_good_graph() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("a", 1, 1, lv(&[0]));
        g.add_event("b", 1, 2, lv(&[0, 1]));
        g.check_well_formed().unwrap();
    }

    #[test]
    fn well_formed_rejects_missing_self() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("a", 1, 1, lv(&[]));
        let err = g.check_well_formed().unwrap_err();
        assert_eq!(err.rule, "WF-SELF");
    }

    #[test]
    fn well_formed_rejects_unknown_event() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("a", 1, 1, lv(&[0, 7]));
        assert_eq!(g.check_well_formed().unwrap_err().rule, "WF-LOGVIEW");
    }

    #[test]
    fn well_formed_rejects_unclosed_logview() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("a", 1, 1, lv(&[0]));
        g.add_event("b", 2, 2, lv(&[0, 1]));
        // c sees b but not a, although a ∈ logview(b): not a view.
        g.add_event("c", 3, 3, lv(&[1, 2]));
        assert_eq!(g.check_well_formed().unwrap_err().rule, "WF-CLOSED");
    }

    #[test]
    fn mutual_logviews_are_well_formed() {
        // A helping pair: both events share the same logview.
        let mut g: Graph<&str> = Graph::new();
        g.add_event("x1", 1, 5, lv(&[0, 1]));
        g.add_event("x2", 2, 5, lv(&[0, 1]));
        g.check_well_formed().unwrap();
    }

    #[test]
    fn prefix_filters_events_and_so() {
        let mut g: Graph<&str> = Graph::new();
        let a = g.add_event("a", 1, 1, lv(&[0]));
        let b = g.add_event("b", 2, 5, lv(&[0, 1]));
        g.add_so(a, b);
        let p = g.prefix_at(5);
        assert_eq!(p.len(), 1);
        assert!(p.so().is_empty());
        let full = g.prefix_at(6);
        assert_eq!(full.len(), 2);
        assert_eq!(full.so().len(), 1);
        full.check_well_formed().unwrap();
    }
}
