//! Work-stealing deque consistency conditions.
//!
//! The paper names work-stealing queues (Chase-Lev) as future work (§6);
//! this module extends the framework to them. A work-stealing deque has a
//! single *owner* (pushing and popping at the bottom) and any number of
//! *thieves* (stealing from the top). The conditions mirror the queue's:
//! `so` matches a push with the unique pop or steal that took it, takers
//! happen-after their push, and empty results cannot happen-after an
//! untaken, visible push. Order (owner-LIFO at the bottom, FIFO at the
//! top) is captured by the `LAT_hb^hist` linearization with
//! [`DequeInterp`].

use orc11::Val;

use crate::graph::Graph;
use crate::history::SeqInterp;
use crate::spec::{SpecResult, Violation};

/// Work-stealing deque events.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DequeEvent {
    /// Owner pushed `v` at the bottom.
    Push(Val),
    /// Owner popped `v` from the bottom.
    Pop(Val),
    /// Owner observed the deque as empty.
    EmpPop,
    /// A thief stole `v` from the top.
    Steal(Val),
    /// A thief observed the deque as empty.
    EmpSteal,
}

impl DequeEvent {
    /// The pushed value, if this is a push.
    pub fn push_value(self) -> Option<Val> {
        match self {
            DequeEvent::Push(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this event takes an element (pop or steal).
    pub fn is_taker(self) -> bool {
        matches!(self, DequeEvent::Pop(_) | DequeEvent::Steal(_))
    }

    /// Whether the event belongs to the owner.
    pub fn is_owner_op(self) -> bool {
        matches!(
            self,
            DequeEvent::Push(_) | DequeEvent::Pop(_) | DequeEvent::EmpPop
        )
    }
}

/// DEQUE-MATCHES: every `so` edge goes from a `Push(v)` to a `Pop(v)` or
/// `Steal(v)` of the same value, committed later.
pub fn check_matches(g: &Graph<DequeEvent>) -> SpecResult {
    for &(p, t) in g.so() {
        let (pe, te) = (g.event(p), g.event(t));
        let ok = match (&pe.ty, &te.ty) {
            (DequeEvent::Push(v), DequeEvent::Pop(w))
            | (DequeEvent::Push(v), DequeEvent::Steal(w)) => v == w,
            _ => false,
        };
        if !ok {
            return Err(Violation::new(
                "DEQUE-MATCHES",
                format!("bad so edge ({p}, {t}): {:?} → {:?}", pe.ty, te.ty),
                vec![p, t],
            ));
        }
        if pe.step >= te.step {
            return Err(Violation::new(
                "DEQUE-MATCHES",
                format!("taker {t} committed before its push {p}"),
                vec![p, t],
            ));
        }
    }
    Ok(())
}

/// DEQUE-INJ: each push is taken at most once; each taker has exactly one
/// source; empty results match nothing.
pub fn check_injective(g: &Graph<DequeEvent>) -> SpecResult {
    for (id, ev) in g.iter() {
        let outgoing = g.so().iter().filter(|&&(a, _)| a == id).count();
        let incoming = g.so().iter().filter(|&&(_, b)| b == id).count();
        let bad = match ev.ty {
            DequeEvent::Push(_) => outgoing > 1 || incoming > 0,
            DequeEvent::Pop(_) | DequeEvent::Steal(_) => incoming != 1 || outgoing > 0,
            DequeEvent::EmpPop | DequeEvent::EmpSteal => incoming + outgoing > 0,
        };
        if bad {
            return Err(Violation::new(
                "DEQUE-INJ",
                format!(
                    "event {id} ({:?}) has {incoming} sources and {outgoing} targets",
                    ev.ty
                ),
                vec![id],
            ));
        }
    }
    Ok(())
}

/// DEQUE-SO-LHB: a taker happens-after the push it took.
pub fn check_so_lhb(g: &Graph<DequeEvent>) -> SpecResult {
    for &(p, t) in g.so() {
        if !g.lhb(p, t) {
            return Err(Violation::new(
                "DEQUE-SO-LHB",
                format!("taker {t} does not happen-after its push {p}"),
                vec![p, t],
            ));
        }
    }
    Ok(())
}

/// DEQUE-OWNER: push/pop/empty-pop events all belong to one thread.
pub fn check_single_owner(g: &Graph<DequeEvent>) -> SpecResult {
    let mut owner = None;
    for (id, ev) in g.iter() {
        if ev.ty.is_owner_op() {
            match owner {
                None => owner = Some(ev.tid),
                Some(t) if t == ev.tid => {}
                Some(t) => {
                    return Err(Violation::new(
                        "DEQUE-OWNER",
                        format!(
                            "owner operation {id} by thread {} but owner is thread {t}",
                            ev.tid
                        ),
                        vec![id],
                    ))
                }
            }
        }
    }
    Ok(())
}

/// DEQUE-EMPTY: an empty pop/steal `d` cannot happen-after a push `p`
/// that is never taken, or that is taken only by a *steal* that
/// happens-after `d`.
///
/// This is deliberately weaker than the queue's step-ordered QUEUE-EMPDEQ,
/// in two stages the checker itself forced (the §3.2 methodology: weaken
/// the style until the implementation satisfies it, and document what was
/// given up):
///
/// 1. the taker may be lhb-*unordered* with `d` (not "committed before"):
///    a concurrent take justifies emptiness once the linearization
///    reorders it first;
/// 2. an **owner `Pop`** justifies emptiness even when it commits
///    lhb-*after* `d`: the Chase-Lev owner *reserves* the element by
///    decrementing `bottom` before its take commits, and a thief that
///    observes the (released) decrement legitimately reports empty while
///    the pop's commit — which would need future-dependent placement, the
///    same prophecy-shaped obstacle as §3.2's Herlihy-Wing discussion —
///    happens later. A *steal* performs no reservation, so a steal-taker
///    lhb-after `d` remains a violation.
pub fn check_empty(g: &Graph<DequeEvent>) -> SpecResult {
    for (d, ev) in g.iter() {
        if !matches!(ev.ty, DequeEvent::EmpPop | DequeEvent::EmpSteal) {
            continue;
        }
        for (p, pe) in g.iter() {
            if pe.ty.push_value().is_none() || !g.lhb(p, d) {
                continue;
            }
            let justified = g
                .so_target(p)
                .is_some_and(|t| !g.lhb(d, t) || matches!(g.event(t).ty, DequeEvent::Pop(_)));
            if !justified {
                return Err(Violation::new(
                    "DEQUE-EMPTY",
                    format!(
                        "{d} ({:?}) happens-after push {p}, which is not taken by \
                         any operation except a steal after {d}",
                        ev.ty
                    ),
                    vec![d, p],
                ));
            }
        }
    }
    Ok(())
}

/// The mutator subgraph: pushes, pops, and steals, without the empty
/// results.
///
/// Chase-Lev's `EmpSteal` is advisory (cf. crossbeam's `Steal::Empty`)
/// and **not** linearizable against the naive sequential deque — a thief
/// can report empty while the owner's reservation-then-pop of the last
/// element straddles it (see [`check_empty`]). The `LAT_hb^hist`-style
/// check for deques is therefore: the *mutator* subgraph linearizes, and
/// the empty results satisfy the graph-based [`check_empty`] clause.
pub fn mutator_subgraph(g: &Graph<DequeEvent>) -> Graph<DequeEvent> {
    g.retain(|_, ev| !matches!(ev.ty, DequeEvent::EmpSteal | DequeEvent::EmpPop))
}

/// The full `DequeConsistent` predicate.
pub fn check_deque_consistent(g: &Graph<DequeEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_matches(g)?;
    check_injective(g)?;
    check_so_lhb(g)?;
    check_single_owner(g)?;
    check_empty(g)?;
    Ok(())
}

/// Sequential deque semantics: owner operates at the back, thieves at the
/// front.
#[derive(Copy, Clone, Debug, Default)]
pub struct DequeInterp;

impl SeqInterp for DequeInterp {
    type Ev = DequeEvent;
    type State = std::collections::VecDeque<Val>;

    fn apply(&self, st: &Self::State, ev: &Self::Ev) -> Option<Self::State> {
        let mut st = st.clone();
        match ev {
            DequeEvent::Push(v) => {
                st.push_back(*v);
                Some(st)
            }
            DequeEvent::Pop(v) => {
                if st.back() == Some(v) {
                    st.pop_back();
                    Some(st)
                } else {
                    None
                }
            }
            DequeEvent::Steal(v) => {
                if st.front() == Some(v) {
                    st.pop_front();
                    Some(st)
                } else {
                    None
                }
            }
            DequeEvent::EmpPop | DequeEvent::EmpSteal => st.is_empty().then_some(st),
        }
    }

    fn read_only(&self, ev: &Self::Ev) -> bool {
        matches!(ev, DequeEvent::EmpPop | DequeEvent::EmpSteal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use std::collections::BTreeSet;
    use DequeEvent::*;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    fn graph(events: &[(DequeEvent, u64, u64, &[u64])], so: &[(u64, u64)]) -> Graph<DequeEvent> {
        // events: (type, tid, step, lhb-predecessors)
        let mut g = Graph::new();
        for (i, (ty, tid, step, preds)) in events.iter().enumerate() {
            let lv: BTreeSet<EventId> = preds.iter().map(|&p| id(p)).collect();
            let mut closed = lv.clone();
            for &p in &lv {
                closed.extend(g.event(p).logview.iter().copied());
            }
            let mut lv = closed;
            lv.insert(id(i as u64));
            g.add_event(*ty, *tid as usize, *step, lv);
        }
        for &(a, b) in so {
            g.add_so(id(a), id(b));
        }
        g
    }

    #[test]
    fn owner_lifo_thief_fifo_history_is_consistent() {
        let v = |i| Val::Int(i);
        // Owner (tid 1): push 1, push 2, pop 2. Thief (tid 2): steal 1.
        let g = graph(
            &[
                (Push(v(1)), 1, 1, &[]),
                (Push(v(2)), 1, 2, &[0]),
                (Pop(v(2)), 1, 3, &[0, 1]),
                (Steal(v(1)), 2, 4, &[0]),
            ],
            &[(1, 2), (0, 3)],
        );
        check_deque_consistent(&g).unwrap();
        let to = crate::history::find_linearization(&g, &DequeInterp, &[]).unwrap();
        crate::history::validate_linearization(&g, &DequeInterp, &to).unwrap();
    }

    #[test]
    fn double_take_is_caught() {
        let v = Val::Int(7);
        // The famous weak-fence Chase-Lev bug: pop and steal both take
        // the same push.
        let g = graph(
            &[
                (Push(v), 1, 1, &[]),
                (Pop(v), 1, 2, &[0]),
                (Steal(v), 2, 3, &[0]),
            ],
            &[(0, 1), (0, 2)],
        );
        assert_eq!(check_injective(&g).unwrap_err().rule, "DEQUE-INJ");
    }

    #[test]
    fn two_owners_are_caught() {
        let g = graph(
            &[
                (Push(Val::Int(1)), 1, 1, &[]),
                (Push(Val::Int(2)), 2, 2, &[]),
            ],
            &[],
        );
        assert_eq!(check_single_owner(&g).unwrap_err().rule, "DEQUE-OWNER");
    }

    #[test]
    fn empty_steal_after_visible_push_is_caught() {
        let g = graph(
            &[(Push(Val::Int(1)), 1, 1, &[]), (EmpSteal, 2, 2, &[0])],
            &[],
        );
        assert_eq!(check_empty(&g).unwrap_err().rule, "DEQUE-EMPTY");
    }

    #[test]
    fn steal_without_sync_is_caught() {
        let v = Val::Int(1);
        let g = graph(&[(Push(v), 1, 1, &[]), (Steal(v), 2, 2, &[])], &[(0, 1)]);
        assert_eq!(check_so_lhb(&g).unwrap_err().rule, "DEQUE-SO-LHB");
    }

    #[test]
    fn interp_semantics() {
        let i = DequeInterp;
        let st = i.apply(&Default::default(), &Push(Val::Int(1))).unwrap();
        let st = i.apply(&st, &Push(Val::Int(2))).unwrap();
        assert!(i.apply(&st, &Pop(Val::Int(1))).is_none(), "owner pops back");
        assert!(
            i.apply(&st, &Steal(Val::Int(2))).is_none(),
            "thief steals front"
        );
        let st = i.apply(&st, &Steal(Val::Int(1))).unwrap();
        let st = i.apply(&st, &Pop(Val::Int(2))).unwrap();
        i.apply(&st, &EmpPop).unwrap();
        i.apply(&st, &EmpSteal).unwrap();
        assert!(i.read_only(&EmpPop) && i.read_only(&EmpSteal));
        assert!(!i.read_only(&Push(Val::Int(0))));
    }
}

#[cfg(test)]
mod subgraph_tests {
    use super::*;
    use crate::event::EventId;
    use std::collections::BTreeSet;

    #[test]
    fn mutator_subgraph_drops_empties_and_remaps() {
        use DequeEvent::*;
        let mut g: Graph<DequeEvent> = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> {
            ids.iter().map(|&i| EventId::from_raw(i)).collect()
        };
        g.add_event(EmpSteal, 2, 1, lv(&[0]));
        g.add_event(Push(orc11::Val::Int(1)), 1, 2, lv(&[1]));
        g.add_event(Pop(orc11::Val::Int(1)), 1, 3, lv(&[1, 2]));
        g.add_so(EventId::from_raw(1), EventId::from_raw(2));
        let m = mutator_subgraph(&g);
        assert_eq!(m.len(), 2);
        // Ids compacted: push is now e0, pop e1, so edge remapped.
        assert!(m
            .so()
            .contains(&(EventId::from_raw(0), EventId::from_raw(1))));
        assert!(m.lhb(EventId::from_raw(0), EventId::from_raw(1)));
        m.check_well_formed().unwrap();
    }

    #[test]
    fn owner_reservation_empty_steal_is_consistent() {
        use DequeEvent::*;
        // The forkjoin counterexample shape: EmpSteal happens-after a push
        // whose owner Pop commits lhb-after the EmpSteal. Justified by the
        // reservation rule.
        let mut g: Graph<DequeEvent> = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> {
            ids.iter().map(|&i| EventId::from_raw(i)).collect()
        };
        g.add_event(Push(orc11::Val::Int(4)), 1, 1, lv(&[0]));
        g.add_event(EmpSteal, 2, 2, lv(&[0, 1]));
        g.add_event(Pop(orc11::Val::Int(4)), 1, 3, lv(&[0, 1, 2]));
        g.add_so(EventId::from_raw(0), EventId::from_raw(2));
        check_empty(&g).unwrap();
        // But the same shape with a STEAL taker stays a violation.
        let mut g2: Graph<DequeEvent> = Graph::new();
        g2.add_event(Push(orc11::Val::Int(4)), 1, 1, lv(&[0]));
        g2.add_event(EmpSteal, 2, 2, lv(&[0, 1]));
        g2.add_event(Steal(orc11::Val::Int(4)), 3, 3, lv(&[0, 1, 2]));
        g2.add_so(EventId::from_raw(0), EventId::from_raw(2));
        assert_eq!(check_empty(&g2).unwrap_err().rule, "DEQUE-EMPTY");
    }
}
