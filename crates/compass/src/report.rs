//! Failure reports: everything needed to understand one violating
//! execution in a single artefact.

use std::fmt::Debug;

use orc11::{render_ops, OpRecord};

use crate::dot::to_dot;
use crate::graph::Graph;
use crate::spec::Violation;

/// Renders a self-contained failure report: the violated clause, the
/// involved events (flagged in the event listing), the full graph, the
/// instruction log (if recorded — see `orc11::Config::record_ops`), and a
/// Graphviz rendering for visual inspection.
///
/// ```
/// use compass::queue_spec::{check_queue_consistent, QueueEvent};
/// use compass::report::render_failure;
/// use compass::{EventId, Graph};
/// use orc11::Val;
///
/// let mut g = Graph::new();
/// g.add_event(QueueEvent::Enq(Val::Int(1)), 1, 1,
///             [EventId::from_raw(0)].into_iter().collect());
/// g.add_event(QueueEvent::Deq(Val::Int(9)), 2, 2,
///             [EventId::from_raw(0), EventId::from_raw(1)].into_iter().collect());
/// g.add_so(EventId::from_raw(0), EventId::from_raw(1));
/// let violation = check_queue_consistent(&g).unwrap_err();
/// let report = render_failure(&g, &violation, &[]);
/// assert!(report.contains("QUEUE-MATCHES"));
/// assert!(report.contains("⚠"));
/// assert!(report.contains("digraph"));
/// ```
pub fn render_failure<T: Debug>(g: &Graph<T>, violation: &Violation, ops: &[OpRecord]) -> String {
    let mut out = String::new();
    out.push_str("════ CONSISTENCY VIOLATION ════\n");
    out.push_str(&format!("{violation}\n\n"));
    out.push_str("── event graph ──\n");
    for (id, ev) in g.iter() {
        let marker = if violation.events.contains(&id) {
            "⚠ "
        } else {
            "  "
        };
        out.push_str(&format!(
            "{marker}{id}: {:?} by t{} @step {} lhb-preds {:?}\n",
            ev.ty,
            ev.tid,
            ev.step,
            ev.logview.iter().filter(|&&e| e != id).collect::<Vec<_>>()
        ));
    }
    out.push_str(&format!("  so: {:?}\n", g.so()));
    if !ops.is_empty() {
        out.push_str("\n── instruction log ──\n");
        out.push_str(&render_ops(ops));
    }
    out.push_str("\n── graphviz ──\n");
    out.push_str(&to_dot(g, "violation"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::queue_spec::{check_queue_consistent, QueueEvent};
    use orc11::Val;

    #[test]
    fn report_includes_ops_when_recorded() {
        use orc11::{random_strategy, run_model, BodyFn, Mode};
        // Produce a real execution with op recording and a (synthetic)
        // violation referencing its graph.
        let out = run_model(
            &orc11::Config {
                record_ops: true,
                ..orc11::Config::default()
            },
            random_strategy(0),
            |ctx| ctx.alloc("x", Val::Int(0)),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, &x, _| {
                ctx.write(x, Val::Int(1), Mode::Release);
            },
        );
        let mut g: Graph<QueueEvent> = Graph::new();
        g.add_event(
            QueueEvent::Deq(Val::Int(1)),
            1,
            1,
            [EventId::from_raw(0)].into_iter().collect(),
        );
        let v = check_queue_consistent(&g).unwrap_err();
        let report = render_failure(&g, &v, &out.ops);
        assert!(report.contains("instruction log"));
        assert!(report.contains("write^rel x"));
        assert!(report.contains(v.rule));
    }
}
