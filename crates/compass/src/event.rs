//! Events: the nodes of a library's event graph.

use std::collections::BTreeSet;
use std::fmt;

use orc11::ThreadId;

/// Identifier of an event within one library object's graph.
///
/// Ids are dense indices in commit order of the object's events (ties —
/// helping pairs committed in the same instruction — are broken by id).
/// The raw `u64` doubles as the representation stored in the model's ghost
/// views.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Creates an id from its raw value.
    pub fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }

    /// The raw value (as stored in ghost views).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Converts a ghost-view set into a logical view.
pub fn logview_from_raw(raw: &BTreeSet<u64>) -> BTreeSet<EventId> {
    raw.iter().map(|&r| EventId::from_raw(r)).collect()
}

/// An event of a library object (the paper's `Event` type, §3.1): an event
/// type plus the *logical view* recorded at the operation's commit point.
///
/// The paper also records the commit point's physical view; here the
/// physical view lives in the model and the event instead records the
/// global `step` index of its commit instruction, which serves as the
/// commit order (the `<` of §4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<T> {
    /// The event type (e.g. `Enq(v)`, `Deq(v)`, `EmpDeq`).
    pub ty: T,
    /// The thread whose operation this event represents.
    pub tid: ThreadId,
    /// Global step index of the commit instruction. Events committed by
    /// the same instruction (helping pairs) share a step.
    pub step: u64,
    /// All events of this object that happen before this event — including
    /// the event itself. `e ∈ G(d).logview` is the paper's `(e, d) ∈ G.lhb`.
    pub logview: BTreeSet<EventId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = EventId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "e42");
    }

    #[test]
    fn ids_order_by_raw() {
        assert!(EventId::from_raw(1) < EventId::from_raw(2));
    }

    #[test]
    fn logview_conversion() {
        let raw: BTreeSet<u64> = [3, 1].into_iter().collect();
        let lv = logview_from_raw(&raw);
        assert!(lv.contains(&EventId::from_raw(1)));
        assert!(lv.contains(&EventId::from_raw(3)));
        assert_eq!(lv.len(), 2);
    }
}
