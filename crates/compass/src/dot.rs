//! Graphviz DOT export for event graphs.
//!
//! Renders a graph the way the paper draws them: events as nodes
//! (labelled with their type, thread, and commit step), solid edges for
//! `so`, and dashed edges for the transitive reduction of `lhb` — handy
//! for inspecting a violating execution:
//!
//! ```text
//! cargo run --release -p compass-bench --bin e1_mp | ...
//! dot -Tpng graph.dot -o graph.png
//! ```

use std::fmt::Debug;
use std::fmt::Write as _;

use crate::event::EventId;
use crate::graph::Graph;

/// Renders `g` as a Graphviz digraph named `name`.
///
/// ```
/// use compass::dot::to_dot;
/// use compass::{EventId, Graph};
///
/// let mut g: Graph<&str> = Graph::new();
/// let a = g.add_event("Enq(1)", 1, 5, [EventId::from_raw(0)].into_iter().collect());
/// let b = g.add_event("Deq(1)", 2, 9,
///                     [EventId::from_raw(0), EventId::from_raw(1)].into_iter().collect());
/// g.add_so(a, b);
/// let dot = to_dot(&g, "mp");
/// assert!(dot.contains("digraph mp"));
/// assert!(dot.contains("e0 -> e1"));
/// ```
pub fn to_dot<T: Debug>(g: &Graph<T>, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, ev) in g.iter() {
        let _ = writeln!(
            out,
            "  {id} [label=\"{id}: {:?}\\nt{} @{}\"];",
            ev.ty, ev.tid, ev.step
        );
    }
    // so edges, solid.
    for &(a, b) in g.so() {
        let _ = writeln!(out, "  {a} -> {b} [color=blue, penwidth=2];");
    }
    // lhb, transitively reduced, dashed (skip edges implied by others and
    // mutual helping pairs' back-edges beyond id order).
    for (d, ev) in g.iter() {
        let preds: Vec<EventId> = ev
            .logview
            .iter()
            .copied()
            .filter(|&e| e != d && !(g.lhb(d, e) && e > d))
            .collect();
        for &e in &preds {
            let implied = preds.iter().any(|&m| m != e && g.lhb(e, m));
            if !implied && !g.so().contains(&(e, d)) {
                let _ = writeln!(out, "  {e} -> {d} [style=dashed, color=gray40];");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn lv(ids: &[u64]) -> BTreeSet<EventId> {
        ids.iter().map(|&i| EventId::from_raw(i)).collect()
    }

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("a", 1, 1, lv(&[0]));
        g.add_event("b", 1, 2, lv(&[0, 1]));
        g.add_event("c", 2, 3, lv(&[0, 1, 2]));
        g.add_so(EventId::from_raw(0), EventId::from_raw(2));
        let dot = to_dot(&g, "t");
        assert!(dot.contains("e0 [label="));
        assert!(dot.contains("e0 -> e2 [color=blue"));
        // Transitive reduction: e0 -> e1 dashed, e1 -> e2 dashed, but NOT
        // e0 -> e2 dashed (implied via e1, and already an so edge).
        assert!(dot.contains("e0 -> e1 [style=dashed"));
        assert!(dot.contains("e1 -> e2 [style=dashed"));
        assert!(!dot.contains("e0 -> e2 [style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn helping_pairs_render_without_cycles() {
        let mut g: Graph<&str> = Graph::new();
        g.add_event("x1", 1, 5, lv(&[0, 1]));
        g.add_event("x2", 2, 5, lv(&[0, 1]));
        g.add_so(EventId::from_raw(0), EventId::from_raw(1));
        g.add_so(EventId::from_raw(1), EventId::from_raw(0));
        let dot = to_dot(&g, "pair");
        // Both so edges drawn; no dashed self/back lhb edge for the pair.
        assert!(dot.contains("e0 -> e1 [color=blue"));
        assert!(dot.contains("e1 -> e0 [color=blue"));
        assert!(!dot.contains("e1 -> e0 [style=dashed"));
    }

    #[test]
    fn empty_graph_renders() {
        let g: Graph<&str> = Graph::new();
        let dot = to_dot(&g, "empty");
        assert!(dot.starts_with("digraph empty {"));
    }
}
