//! Stack consistency conditions (`StackConsistent`; the LIFO mirror of
//! §3.1's queue conditions, as used for the elimination stack in §4).

use orc11::Val;

#[cfg(test)]
use crate::event::EventId;
use crate::graph::Graph;
use crate::spec::{SpecResult, Violation};

/// Stack events: pushes, successful pops, and failing (empty) pops.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StackEvent {
    /// `Push(v)`: `v` was pushed.
    Push(Val),
    /// `Pop(v)`: `v` was popped.
    Pop(Val),
    /// `Pop(ε)`: a pop observed the stack as empty.
    EmpPop,
}

impl StackEvent {
    /// The pushed value, if this is a push.
    pub fn push_value(self) -> Option<Val> {
        match self {
            StackEvent::Push(v) => Some(v),
            _ => None,
        }
    }
}

/// STACK-MATCHES: every `so` edge goes from a `Push(v)` to a `Pop(v)` of
/// the same value; the push commits no later than the pop (equal steps are
/// allowed: an elimination pair commits push and pop atomically together).
pub fn check_matches(g: &Graph<StackEvent>) -> SpecResult {
    for &(p, o) in g.so() {
        let (pe, oe) = (g.event(p), g.event(o));
        match (&pe.ty, &oe.ty) {
            (StackEvent::Push(v), StackEvent::Pop(w)) => {
                if v != w {
                    return Err(Violation::new(
                        "STACK-MATCHES",
                        format!("pop {o} returned {w} but matches push {p} of {v}"),
                        vec![p, o],
                    ));
                }
                if pe.step > oe.step {
                    return Err(Violation::new(
                        "STACK-MATCHES",
                        format!("pop {o} committed before its push {p}"),
                        vec![p, o],
                    ));
                }
            }
            _ => {
                return Err(Violation::new(
                    "STACK-MATCHES",
                    format!("so edge ({p}, {o}) is not a Push→Pop pair"),
                    vec![p, o],
                ))
            }
        }
    }
    Ok(())
}

/// STACK-INJ: `so` is a partial bijection (see the queue analogue).
pub fn check_injective(g: &Graph<StackEvent>) -> SpecResult {
    for (id, ev) in g.iter() {
        let outgoing = g.so().iter().filter(|&&(a, _)| a == id).count();
        let incoming = g.so().iter().filter(|&&(_, b)| b == id).count();
        let bad = match ev.ty {
            StackEvent::Push(_) => outgoing > 1 || incoming > 0,
            StackEvent::Pop(_) => incoming != 1 || outgoing > 0,
            StackEvent::EmpPop => incoming + outgoing > 0,
        };
        if bad {
            return Err(Violation::new(
                "STACK-INJ",
                format!(
                    "event {id} ({:?}) has {incoming} so-sources and {outgoing} so-targets",
                    ev.ty
                ),
                vec![id],
            ));
        }
    }
    Ok(())
}

/// STACK-SO-LHB: a pop happens-after the push it matches.
pub fn check_so_lhb(g: &Graph<StackEvent>) -> SpecResult {
    for &(p, o) in g.so() {
        if !g.lhb(p, o) {
            return Err(Violation::new(
                "STACK-SO-LHB",
                format!("pop {o} does not happen-after its push {p}"),
                vec![p, o],
            ));
        }
    }
    Ok(())
}

/// STACK-LIFO: if `(p1, o1) ∈ so` and there is another push `p2` with
/// `p1 →lhb p2 →lhb o1` (an element pushed *on top of* `p1`, visible to the
/// pop), then `p2` must already have been popped by some `o2` at `o1`'s
/// commit, with `(o1, o2) ∉ lhb`.
pub fn check_lifo(g: &Graph<StackEvent>) -> SpecResult {
    for &(p1, o1) in g.so() {
        let o1_step = g.event(o1).step;
        for (p2, ev2) in g.iter() {
            if p2 == p1 || ev2.ty.push_value().is_none() || !g.lhb(p1, p2) || !g.lhb(p2, o1) {
                continue;
            }
            match g.so_target(p2) {
                None => {
                    return Err(Violation::new(
                        "STACK-LIFO",
                        format!(
                            "{o1} popped {p1} although {p2}, pushed on top and visible \
                             to {o1}, was never popped"
                        ),
                        vec![p1, o1, p2],
                    ))
                }
                Some(o2) => {
                    if o2 != o1 && g.event(o2).step > o1_step {
                        return Err(Violation::new(
                            "STACK-LIFO",
                            format!(
                                "{o1} popped {p1} before {p2} (pushed on top, visible to \
                                 {o1}) was popped by {o2}"
                            ),
                            vec![p1, o1, p2, o2],
                        ));
                    }
                    if g.lhb(o1, o2) {
                        return Err(Violation::new(
                            "STACK-LIFO",
                            format!("{o1} happens before {o2}, which popped the upper {p2}"),
                            vec![p1, o1, p2, o2],
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// STACK-EMPPOP: an empty pop cannot happen-after a push that had not been
/// popped by its commit.
pub fn check_emppop(g: &Graph<StackEvent>) -> SpecResult {
    for (o, ev) in g.iter() {
        if ev.ty != StackEvent::EmpPop {
            continue;
        }
        for (p, pe) in g.iter() {
            if pe.ty.push_value().is_none() || !g.lhb(p, o) {
                continue;
            }
            let popped_before = g.so_target(p).is_some_and(|o2| g.event(o2).step < ev.step);
            if !popped_before {
                return Err(Violation::new(
                    "STACK-EMPPOP",
                    format!(
                        "empty pop {o} happens-after push {p}, which was not popped \
                         before {o}'s commit"
                    ),
                    vec![o, p],
                ));
            }
        }
    }
    Ok(())
}

/// The full `StackConsistent` predicate.
pub fn check_stack_consistent(g: &Graph<StackEvent>) -> SpecResult {
    g.check_well_formed()?;
    check_matches(g)?;
    check_injective(g)?;
    check_so_lhb(g)?;
    check_lifo(g)?;
    check_emppop(g)?;
    Ok(())
}

/// Checks `StackConsistent` on every commit-step prefix.
pub fn check_stack_consistent_prefixes(g: &Graph<StackEvent>) -> SpecResult {
    let mut steps: Vec<u64> = g.iter().map(|(_, e)| e.step).collect();
    steps.push(u64::MAX);
    steps.sort_unstable();
    steps.dedup();
    for &s in &steps {
        check_stack_consistent(&g.prefix_at(s))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use StackEvent::*;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    fn graph(events: &[(StackEvent, u64, &[u64])], so: &[(u64, u64)]) -> Graph<StackEvent> {
        let mut g = Graph::new();
        for (i, (ty, step, preds)) in events.iter().enumerate() {
            let mut lv: BTreeSet<EventId> = preds.iter().map(|&p| id(p)).collect();
            let mut closed = lv.clone();
            for &p in &lv {
                closed.extend(g.event(p).logview.iter().copied());
            }
            lv = closed;
            lv.insert(id(i as u64));
            g.add_event(*ty, 1, *step, lv);
        }
        for &(a, b) in so {
            g.add_so(id(a), id(b));
        }
        g
    }

    #[test]
    fn lifo_history_is_consistent() {
        let v = |i| Val::Int(i);
        // push 1, push 2, pop 2, pop 1 — classic LIFO.
        let g = graph(
            &[
                (Push(v(1)), 1, &[]),
                (Push(v(2)), 2, &[0]),
                (Pop(v(2)), 3, &[0, 1]),
                (Pop(v(1)), 4, &[0, 1, 2]),
            ],
            &[(1, 2), (0, 3)],
        );
        check_stack_consistent(&g).unwrap();
        check_stack_consistent_prefixes(&g).unwrap();
    }

    #[test]
    fn fifo_order_violates_lifo() {
        let v = |i| Val::Int(i);
        // push 1, push 2, then pop 1 first although 2 is on top & visible.
        let g = graph(
            &[
                (Push(v(1)), 1, &[]),
                (Push(v(2)), 2, &[0]),
                (Pop(v(1)), 3, &[0, 1]),
                (Pop(v(2)), 4, &[0, 1, 2]),
            ],
            &[(0, 2), (1, 3)],
        );
        assert_eq!(check_lifo(&g).unwrap_err().rule, "STACK-LIFO");
    }

    #[test]
    fn lifo_vacuous_without_lhb() {
        let v = |i| Val::Int(i);
        // Unordered pushes: either pop order is allowed.
        let g = graph(
            &[
                (Push(v(1)), 1, &[]),
                (Push(v(2)), 2, &[]),
                (Pop(v(1)), 3, &[0]),
                (Pop(v(2)), 4, &[1]),
            ],
            &[(0, 2), (1, 3)],
        );
        check_stack_consistent(&g).unwrap();
    }

    #[test]
    fn emppop_violation_detected() {
        let g = graph(&[(Push(Val::Int(1)), 1, &[]), (EmpPop, 2, &[0])], &[]);
        assert_eq!(check_emppop(&g).unwrap_err().rule, "STACK-EMPPOP");
    }

    #[test]
    fn emppop_ok_after_pop() {
        let v = Val::Int(1);
        let g = graph(
            &[(Push(v), 1, &[]), (Pop(v), 2, &[0]), (EmpPop, 3, &[0, 1])],
            &[(0, 1)],
        );
        check_stack_consistent(&g).unwrap();
    }

    #[test]
    fn elimination_pair_same_step_is_consistent() {
        let v = Val::Int(5);
        // A push/pop pair committed atomically together (same step), as an
        // elimination produces.
        let mut g = Graph::new();
        let lv: BTreeSet<EventId> = [id(0), id(1)].into_iter().collect();
        g.add_event(Push(v), 1, 7, lv.clone());
        g.add_event(Pop(v), 2, 7, lv);
        g.add_so(id(0), id(1));
        check_stack_consistent(&g).unwrap();
    }

    #[test]
    fn mismatched_pair_rejected() {
        let g = graph(
            &[(Push(Val::Int(1)), 1, &[]), (Pop(Val::Int(2)), 2, &[0])],
            &[(0, 1)],
        );
        assert_eq!(check_matches(&g).unwrap_err().rule, "STACK-MATCHES");
    }

    #[test]
    fn double_pop_rejected() {
        let v = Val::Int(1);
        let g = graph(
            &[(Push(v), 1, &[]), (Pop(v), 2, &[0]), (Pop(v), 3, &[0])],
            &[(0, 1), (0, 2)],
        );
        assert_eq!(check_injective(&g).unwrap_err().rule, "STACK-INJ");
    }
}
