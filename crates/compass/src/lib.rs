//! # compass — executable library specifications for relaxed memory
//!
//! This crate is the executable reproduction of the Compass specification
//! framework (Dang et al., *Compass: Strong and Compositional Library
//! Specifications in Relaxed Memory Separation Logic*, PLDI 2022).
//!
//! Compass specifies relaxed-memory libraries with **event graphs**: every
//! operation, at its *commit point*, atomically adds an event carrying a
//! *logical view* (the set of the library's events that happen-before it)
//! and extends the library's partial orders (`so`, the matching relation;
//! `lhb`, local happens-before). Library-specific **consistency
//! conditions** over these graphs — FIFO for queues, LIFO for stacks,
//! symmetric matching for exchangers — are the specification.
//!
//! Where the paper *proves* (in Iris/Coq) that implementations maintain
//! consistency, this crate *checks* it: implementations written against the
//! [`orc11`] memory-model simulator call [`LibObj::commit`] inside the
//! commit window of the memory instruction that commits the operation; the
//! ghost logical views ride along the model's view transfer; and the
//! resulting graphs are checked against the consistency conditions over
//! many explored executions.
//!
//! The paper's spec-style hierarchy maps to checkers as follows:
//!
//! | Paper style     | This crate |
//! |-----------------|------------|
//! | `LAT_hb` (graph-only, §3.2)         | [`queue_spec::check_queue_consistent`], [`stack_spec::check_stack_consistent`], [`exchanger_spec::check_exchanger_consistent`] |
//! | `LAT_hb^abs` (abstract state, §3.1) | [`abs::replay_commit_order`]: the commit order must interpret to a sequential abstract state |
//! | `LAT_hb^hist` (linearization, §3.3) | [`history::find_linearization`]: search for a total order `to ⊇ lhb` with a sequential interpretation |
//! | `LAT_so^abs` (Cosmo-style, §2.3)    | the `SO-LHB` clauses: so edges transfer views |
//!
//! The model checker explores the structures on the simulated memory
//! model; the [`conform`] module closes the loop on real hardware,
//! reconstructing event graphs from timestamped histories of the
//! *native* implementations (`compass-native`) and checking the same
//! consistency clauses (soundly: real-time order under-approximates
//! happens-before — see its module docs).
//!
//! ## Example: committing events at commit points and checking the graph
//!
//! ```
//! use compass::queue_spec::{check_queue_consistent, QueueEvent};
//! use compass::LibObj;
//! use orc11::{random_strategy, run_model, BodyFn, Config, Loc, Mode, Val};
//!
//! // A toy one-shot "queue" with a single slot: the release write is the
//! // enqueue's commit point; the acquire read that sees the value commits
//! // the dequeue.
//! let out = run_model(
//!     &Config::default(),
//!     random_strategy(1),
//!     |ctx| (ctx.alloc("slot", Val::Null), LibObj::<QueueEvent>::new("q")),
//!     vec![
//!         Box::new(|ctx: &mut orc11::ThreadCtx, (slot, q): &(Loc, LibObj<QueueEvent>)| {
//!             ctx.write_with(*slot, Val::Int(7), Mode::Release, |gh| {
//!                 q.commit(gh, QueueEvent::Enq(Val::Int(7)));
//!             });
//!         }) as BodyFn<'_, _, ()>,
//!         Box::new(|ctx: &mut orc11::ThreadCtx, (slot, q): &(Loc, LibObj<QueueEvent>)| {
//!             let enq = compass::EventId::from_raw(0);
//!             ctx.read_await_with(*slot, Mode::Acquire, |v| v == Val::Int(7), |v, gh| {
//!                 q.commit_matched(gh, QueueEvent::Deq(v), enq);
//!             });
//!         }),
//!     ],
//!     |_, (_, q), _| q.snapshot(),
//! );
//! let graph = out.result.unwrap();
//! check_queue_consistent(&graph).unwrap();
//! assert_eq!(graph.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abs;
pub mod bundle;
pub mod checker;
pub mod conform;
pub mod deque_spec;
pub mod dot;
pub mod event;
pub mod exchanger_spec;
pub mod graph;
pub mod history;
pub mod object;
pub mod queue_spec;
pub mod report;
pub mod seen;
pub mod spec;
pub mod spsc_spec;
pub mod stack_spec;

pub use checker::{CheckOptions, CheckReport, CheckTarget, ExecOrigin, Exploration};
pub use event::{Event, EventId};
pub use graph::Graph;
pub use history::SearchStats;
pub use object::LibObj;
pub use seen::Seen;
pub use spec::{SpecResult, Violation};
