//! Library objects: shared graphs plus the commit-point API.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use orc11::sync::{Mutex, MutexGuard};

use orc11::{GhostHandle, ThreadCtx};

use crate::event::{logview_from_raw, EventId};
use crate::graph::Graph;

static NEXT_KEY: AtomicU64 = AtomicU64::new(1);

/// A library object: the shared event graph of one data-structure
/// instance, together with its ghost-view key.
///
/// This plays the role of the paper's *atomically shared ownership*
/// assertion (`Queue(q, G)`, `Stack(s, G)`, `Exchanger(x, G)`): the graph
/// is the abstract state guarded by the (objective) invariant, and
/// [`LibObj::commit`] is the logically atomic update at the commit point.
/// Because the model serializes instructions and `commit` is called from
/// inside a commit window ([`GhostHandle`]), the graph extension is atomic
/// with the memory instruction — the operational content of a logically
/// atomic triple.
///
/// The object's *key* indexes the model's ghost views: a thread's ghost set
/// for the key is its thread-local logical view (the `M₀` of a
/// `SeenQueue(q, G₀, M₀)` assertion), and it is transferred between threads
/// by the model exactly along release/acquire synchronization.
pub struct LibObj<T> {
    key: u64,
    name: String,
    graph: Mutex<Graph<T>>,
}

impl<T> fmt::Debug for LibObj<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LibObj")
            .field("key", &self.key)
            .field("name", &self.name)
            .finish()
    }
}

impl<T> LibObj<T> {
    /// Creates a fresh object with an empty graph and a globally unique
    /// ghost key.
    pub fn new(name: &str) -> Self {
        LibObj {
            key: NEXT_KEY.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            graph: Mutex::new(Graph::new()),
        }
    }

    /// The object's ghost-view key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The object's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Locks and returns the graph.
    ///
    /// Safe to call from commit windows (the model's step lock already
    /// serializes them) and from the finish phase.
    pub fn graph(&self) -> MutexGuard<'_, Graph<T>> {
        self.graph.lock()
    }

    /// A clone of the current graph.
    pub fn snapshot(&self) -> Graph<T>
    where
        T: Clone,
    {
        self.graph.lock().clone()
    }

    /// The calling thread's logical view of this object (its `M₀`).
    pub fn seen(&self, ctx: &ThreadCtx) -> BTreeSet<EventId> {
        logview_from_raw(&ctx.ghost(self.key))
    }

    /// Commits one event at the current commit window.
    ///
    /// The event's logical view is the committing thread's ghost set for
    /// this object — everything that happens-before the commit — plus the
    /// event itself; the event is then added to the thread's ghost set so
    /// that it is released on the message the enclosing instruction
    /// publishes (write/RMW windows) and appears in the thread's later
    /// logical views.
    pub fn commit(&self, gh: &mut GhostHandle<'_>, ty: T) -> EventId {
        let mut g = self.graph.lock();
        let id = g.next_id();
        let mut logview = logview_from_raw(&gh.ghost(self.key));
        logview.insert(id);
        g.add_event(ty, gh.tid(), gh.step_index(), logview);
        gh.ghost_add(self.key, id.raw());
        id
    }

    /// Commits an event on behalf of another thread (helping with a
    /// *split* commit — used by deliberately buggy implementations; a
    /// correct helper uses [`LibObj::commit_pair`]).
    pub fn commit_as(&self, gh: &mut GhostHandle<'_>, tid: orc11::ThreadId, ty: T) -> EventId {
        let mut g = self.graph.lock();
        let id = g.next_id();
        let mut logview = logview_from_raw(&gh.ghost(self.key));
        logview.insert(id);
        g.add_event(ty, tid, gh.step_index(), logview);
        gh.ghost_add(self.key, id.raw());
        id
    }

    /// Commits a matched event: like [`LibObj::commit`], plus an `so` edge
    /// from `source` (e.g. the enqueue a dequeue takes its value from).
    pub fn commit_matched(&self, gh: &mut GhostHandle<'_>, ty: T, source: EventId) -> EventId {
        let mut g = self.graph.lock();
        let id = g.next_id();
        let mut logview = logview_from_raw(&gh.ghost(self.key));
        logview.insert(id);
        g.add_event(ty, gh.tid(), gh.step_index(), logview);
        g.add_so(source, id);
        gh.ghost_add(self.key, id.raw());
        id
    }

    /// Commits a *helping pair* atomically (§4.2): the helper's single
    /// commit instruction performs the helpee's commit and then its own.
    ///
    /// Both events share the same logical view `M' = M ∪ {e₁, e₂}` (as in
    /// the paper's HB-EXCHANGE, where the completed graph has
    /// `G(e₁).logview = G(e₂).logview = M'`), and both share the step index
    /// of the helper's instruction — no other operation can observe the
    /// intermediate state between the two commits.
    ///
    /// Each side is given as `(tid, type)` — the first is the helpee's
    /// event, the second the helper's (committed by the calling thread on
    /// the helpee's behalf, so the tids need not be the caller's).
    /// `so_edges` lists edges among the pair as `(from, to)` indices into
    /// `[first, second]` — e.g. `&[(0, 1), (1, 0)]` for the exchanger's
    /// symmetric so, or `&[(0, 1)]` for an elimination push→pop edge.
    ///
    /// Returns `(first_id, second_id)`.
    pub fn commit_pair(
        &self,
        gh: &mut GhostHandle<'_>,
        first: (orc11::ThreadId, T),
        second: (orc11::ThreadId, T),
        so_edges: &[(usize, usize)],
    ) -> (EventId, EventId) {
        let mut g = self.graph.lock();
        let e1 = g.next_id();
        let e2 = EventId::from_raw(e1.raw() + 1);
        let mut logview = logview_from_raw(&gh.ghost(self.key));
        logview.insert(e1);
        logview.insert(e2);
        let step = gh.step_index();
        g.add_event(first.1, first.0, step, logview.clone());
        g.add_event(second.1, second.0, step, logview);
        let pick = |i: usize| if i == 0 { e1 } else { e2 };
        for &(a, b) in so_edges {
            g.add_so(pick(a), pick(b));
        }
        gh.ghost_add(self.key, e1.raw());
        gh.ghost_add(self.key, e2.raw());
        (e1, e2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc11::{random_strategy, run_model, BodyFn, Config, Loc, Mode, Val};

    #[test]
    fn keys_are_unique() {
        let a: LibObj<()> = LibObj::new("a");
        let b: LibObj<()> = LibObj::new("b");
        assert_ne!(a.key(), b.key());
        assert_eq!(a.name(), "a");
    }

    #[test]
    fn commit_inside_release_write_flows_to_acquirer() {
        let out = run_model(
            &Config::default(),
            random_strategy(1),
            |ctx| {
                let flag = ctx.alloc("flag", Val::Int(0));
                (flag, LibObj::<&'static str>::new("q"))
            },
            vec![
                Box::new(
                    |ctx: &mut orc11::ThreadCtx, (flag, obj): &(Loc, LibObj<&str>)| {
                        ctx.write_with(*flag, Val::Int(1), Mode::Release, |gh| {
                            obj.commit(gh, "enq");
                        });
                        BTreeSet::new()
                    },
                ) as BodyFn<'_, _, BTreeSet<EventId>>,
                Box::new(
                    |ctx: &mut orc11::ThreadCtx, (flag, obj): &(Loc, LibObj<&str>)| {
                        ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                        obj.seen(ctx)
                    },
                ),
            ],
            |_, (_, obj), outs| {
                let g = obj.snapshot();
                g.check_well_formed().unwrap();
                assert_eq!(g.len(), 1);
                // The acquiring thread has the event in its logical view.
                assert!(outs[1].contains(&EventId::from_raw(0)));
                g.event(EventId::from_raw(0)).ty
            },
        );
        assert_eq!(out.result.unwrap(), "enq");
    }

    #[test]
    fn commit_logview_contains_self_and_priors() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| {
                let l = ctx.alloc("x", Val::Int(0));
                (l, LibObj::<u32>::new("s"))
            },
            vec![Box::new(
                |ctx: &mut orc11::ThreadCtx, (l, obj): &(Loc, LibObj<u32>)| {
                    ctx.write_with(*l, Val::Int(1), Mode::Release, |gh| {
                        obj.commit(gh, 1);
                    });
                    ctx.write_with(*l, Val::Int(2), Mode::Release, |gh| {
                        obj.commit(gh, 2);
                    });
                },
            ) as BodyFn<'_, _, ()>],
            |_, (_, obj), _| {
                let g = obj.snapshot();
                g.check_well_formed().unwrap();
                // po: first event is in the logview of the second.
                assert!(g.lhb(EventId::from_raw(0), EventId::from_raw(1)));
                assert!(!g.lhb(EventId::from_raw(1), EventId::from_raw(0)));
                g.len()
            },
        );
        assert_eq!(out.result.unwrap(), 2);
    }

    #[test]
    fn commit_pair_is_atomic_and_symmetric() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| {
                let l = ctx.alloc("slot", Val::Int(0));
                (l, LibObj::<&'static str>::new("x"))
            },
            vec![Box::new(
                |ctx: &mut orc11::ThreadCtx, (l, obj): &(Loc, LibObj<&str>)| {
                    let _ = ctx.cas_with(
                        *l,
                        Val::Int(0),
                        Val::Int(1),
                        Mode::AcqRel,
                        Mode::Relaxed,
                        |res, gh| {
                            assert!(res.new.is_some());
                            let helper_tid = gh.tid();
                            obj.commit_pair(
                                gh,
                                (7, "helpee"),
                                (helper_tid, "helper"),
                                &[(0, 1), (1, 0)],
                            );
                        },
                    );
                },
            ) as BodyFn<'_, _, ()>],
            |_, (_, obj), _| {
                let g = obj.snapshot();
                g.check_well_formed().unwrap();
                let (a, b) = (EventId::from_raw(0), EventId::from_raw(1));
                assert_eq!(g.event(a).step, g.event(b).step);
                assert_eq!(g.event(a).tid, 7);
                assert!(g.so().contains(&(a, b)) && g.so().contains(&(b, a)));
                // Mutual logviews.
                assert!(g.event(a).logview.contains(&b));
                assert!(g.event(b).logview.contains(&a));
                g.len()
            },
        );
        assert_eq!(out.result.unwrap(), 2);
    }
}
