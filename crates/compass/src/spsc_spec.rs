//! Derived single-producer single-consumer queue specs (§3.2).
//!
//! "We use the `LAT_hb` specs for queues ... to derive the *stronger*
//! `LAT_hb`-style specs for SPSC queues, simply by building a concurrent
//! SPSC client protocol. In this derivation, thanks to logical atomicity,
//! at every commit point of a successful dequeue we can easily match it
//! up with the right enqueue and thus prove FIFO."
//!
//! Under the SPSC protocol (all enqueues by one thread, all dequeues by
//! another), the general graph conditions *imply* a much stronger shape,
//! checked here directly:
//!
//! * `SPSC-ROLES`: one enqueuer thread, one dequeuer thread;
//! * `SPSC-TOTAL-FIFO`: the i-th successful dequeue matches the i-th
//!   enqueue — the total, index-aligned FIFO of a sequential queue;
//! * `SPSC-PO`: per-thread events are lhb-ordered (program order is in
//!   the logical views).
//!
//! [`derive_spsc`] is the executable form of the paper's derivation: it
//! *proves* (checks, on the given graph) that general queue consistency
//! plus the SPSC role discipline yields the strong spec.

use crate::event::EventId;
use crate::graph::Graph;
use crate::queue_spec::{check_queue_consistent, QueueEvent};
use crate::spec::{SpecResult, Violation};

/// SPSC-ROLES: all enqueues from one thread, all (successful or empty)
/// dequeues from another.
pub fn check_roles(g: &Graph<QueueEvent>) -> SpecResult {
    let mut producer = None;
    let mut consumer = None;
    for (id, ev) in g.iter() {
        let slot = match ev.ty {
            QueueEvent::Enq(_) => &mut producer,
            QueueEvent::Deq(_) | QueueEvent::EmpDeq => &mut consumer,
        };
        match slot {
            None => *slot = Some(ev.tid),
            Some(t) if *t == ev.tid => {}
            Some(t) => {
                return Err(Violation::new(
                    "SPSC-ROLES",
                    format!(
                        "event {id} by thread {} but the role belongs to {t}",
                        ev.tid
                    ),
                    vec![id],
                ))
            }
        }
    }
    Ok(())
}

/// SPSC-TOTAL-FIFO: the k-th successful dequeue (in commit order — which
/// is the consumer's program order under SPSC) takes the k-th enqueue.
pub fn check_total_fifo(g: &Graph<QueueEvent>) -> SpecResult {
    let enqs: Vec<EventId> = g
        .iter()
        .filter(|(_, e)| matches!(e.ty, QueueEvent::Enq(_)))
        .map(|(id, _)| id)
        .collect();
    let deqs: Vec<EventId> = g
        .iter()
        .filter(|(_, e)| matches!(e.ty, QueueEvent::Deq(_)))
        .map(|(id, _)| id)
        .collect();
    for (k, &d) in deqs.iter().enumerate() {
        let Some(src) = g.so_source(d) else {
            return Err(Violation::new(
                "SPSC-TOTAL-FIFO",
                format!("dequeue {d} has no source"),
                vec![d],
            ));
        };
        if enqs.get(k) != Some(&src) {
            return Err(Violation::new(
                "SPSC-TOTAL-FIFO",
                format!(
                    "dequeue #{k} ({d}) took {src}, expected the #{k} enqueue {:?}",
                    enqs.get(k)
                ),
                vec![d, src],
            ));
        }
    }
    Ok(())
}

/// SPSC-PO: each thread's events appear in each other's logical views in
/// commit order (program order is part of lhb).
pub fn check_program_order(g: &Graph<QueueEvent>) -> SpecResult {
    let mut last_by_tid: std::collections::HashMap<usize, EventId> = Default::default();
    for (id, ev) in g.iter() {
        if let Some(&prev) = last_by_tid.get(&ev.tid) {
            if !g.lhb(prev, id) {
                return Err(Violation::new(
                    "SPSC-PO",
                    format!(
                        "{prev} and {id} by thread {} lack a program-order lhb edge",
                        ev.tid
                    ),
                    vec![prev, id],
                ));
            }
        }
        last_by_tid.insert(ev.tid, id);
    }
    Ok(())
}

/// The derived strong SPSC spec: general queue consistency plus the
/// SPSC-specific clauses. This is what the paper's §3.2 derivation
/// guarantees for any `LAT_hb`-satisfying queue used under the SPSC
/// protocol.
pub fn check_spsc_consistent(g: &Graph<QueueEvent>) -> SpecResult {
    check_queue_consistent(g)?;
    check_roles(g)?;
    check_program_order(g)?;
    check_total_fifo(g)?;
    Ok(())
}

/// The derivation itself, as an executable argument: *given* that the
/// graph satisfies the general conditions and the role discipline, the
/// strong total FIFO must follow. Returns `Err` with the offending
/// premise if the input does not satisfy the premises; panics (with a
/// counterexample) if the derivation's conclusion fails while the
/// premises hold — which, per the paper, cannot happen.
pub fn derive_spsc(g: &Graph<QueueEvent>) -> SpecResult {
    check_queue_consistent(g)?;
    check_roles(g)?;
    check_program_order(g)?;
    if let Err(v) = check_total_fifo(g) {
        unreachable!("§3.2 derivation failed: premises hold but total FIFO does not: {v}\n{g}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc11::Val;
    use std::collections::BTreeSet;

    fn id(i: u64) -> EventId {
        EventId::from_raw(i)
    }

    /// SPSC history: producer tid 1 enqueues, consumer tid 2 dequeues.
    fn spsc_graph(pairs: usize) -> Graph<QueueEvent> {
        let mut g = Graph::new();
        let mut prod_view: BTreeSet<EventId> = BTreeSet::new();
        for i in 0..pairs {
            let e = g.next_id();
            prod_view.insert(e);
            g.add_event(
                QueueEvent::Enq(Val::Int(i as i64)),
                1,
                (i + 1) as u64,
                prod_view.clone(),
            );
        }
        let mut cons_view: BTreeSet<EventId> = BTreeSet::new();
        for i in 0..pairs {
            let d = g.next_id();
            let src = id(i as u64);
            cons_view.insert(d);
            cons_view.insert(src);
            cons_view.extend(g.event(src).logview.iter().copied());
            g.add_event(
                QueueEvent::Deq(Val::Int(i as i64)),
                2,
                (pairs + i + 1) as u64,
                cons_view.clone(),
            );
            g.add_so(src, d);
        }
        g
    }

    #[test]
    fn spsc_history_satisfies_derived_spec() {
        let g = spsc_graph(4);
        check_spsc_consistent(&g).unwrap();
        derive_spsc(&g).unwrap();
    }

    #[test]
    fn third_thread_breaks_roles() {
        let mut g = spsc_graph(2);
        g.add_event(
            QueueEvent::Enq(Val::Int(9)),
            3,
            99,
            [g.next_id()].into_iter().collect(),
        );
        assert_eq!(check_roles(&g).unwrap_err().rule, "SPSC-ROLES");
    }

    #[test]
    fn out_of_order_match_breaks_total_fifo() {
        // Build an artificial graph where the consumer takes enqueue #1
        // before #0 (this also violates general FIFO — the point of the
        // test is the specific SPSC clause).
        let mut g = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> { ids.iter().map(|&i| id(i)).collect() };
        g.add_event(QueueEvent::Enq(Val::Int(0)), 1, 1, lv(&[0]));
        g.add_event(QueueEvent::Enq(Val::Int(1)), 1, 2, lv(&[0, 1]));
        g.add_event(QueueEvent::Deq(Val::Int(1)), 2, 3, lv(&[0, 1, 2]));
        g.add_so(id(1), id(2));
        assert_eq!(check_total_fifo(&g).unwrap_err().rule, "SPSC-TOTAL-FIFO");
    }

    #[test]
    fn missing_po_edge_detected() {
        let mut g = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> { ids.iter().map(|&i| id(i)).collect() };
        g.add_event(QueueEvent::Enq(Val::Int(0)), 1, 1, lv(&[0]));
        // Same thread, but the second event's logview omits the first.
        g.add_event(QueueEvent::Enq(Val::Int(1)), 1, 2, lv(&[1]));
        assert_eq!(check_program_order(&g).unwrap_err().rule, "SPSC-PO");
    }

    #[test]
    fn empty_graph_is_spsc_consistent() {
        check_spsc_consistent(&Graph::new()).unwrap();
    }
}
