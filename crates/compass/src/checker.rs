//! A small harness for checking a graph-producing model program against a
//! consistency predicate over many explored executions.
//!
//! Wraps [`orc11`]'s exploration engine with per-clause violation
//! accounting and run telemetry, so tests and experiments can say "run
//! this workload under these strategies and tell me which clauses ever
//! failed — and where the time and the schedule coverage went". The
//! engine is the same parallel one behind [`orc11::Explorer`]: the
//! program and predicate run on [`CheckOptions::threads`] workers, and
//! the merged report is byte-identical to a single-threaded run (see
//! `EXPERIMENTS.md`, "Parallel exploration", for the guarantee's scope —
//! wall-clock fields like [`CheckReport::check_ns`] excepted).

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use orc11::{
    dfs_strategy, pct_strategy, random_strategy, trace, Coverage, DporStats, ExecStats, Explorer,
    Json, OpRecord, PhaseNs, RunOutcome, Sink, StepHistogram, Strategy, StrategyDesc, WorkSpec,
    WorkerStats,
};

use crate::bundle;
use crate::graph::Graph;
use crate::history::{self, SearchStats};
use crate::spec::Violation;

/// The PCT scheduling-decision horizon used by [`Exploration::Pct`] (and
/// by [`ExecOrigin::strategy`] when reproducing a PCT execution).
pub const PCT_HORIZON: u64 = 64;

/// The pseudo-rule under which [`CheckReport::check_ns_by_rule`] files
/// time spent on checks that passed.
pub const PASS_RULE: &str = "(consistent)";

/// Cap on [`CheckReport::samples`]: the first few violations (in serial
/// exploration order) are kept verbatim.
const SAMPLE_CAP: usize = 8;

/// How to explore the schedule space.
#[derive(Clone, Debug)]
pub enum Exploration {
    /// `iters` seeded uniform-random executions starting at `seed0`.
    Random {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
    },
    /// `iters` PCT executions with `depth` priority-change points.
    Pct {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
        /// Number of priority-change points.
        depth: usize,
    },
    /// Bounded-exhaustive DFS with an execution budget. Whether the
    /// enumeration is DPOR-pruned follows the `COMPASS_DPOR` environment
    /// variable (see [`WorkSpec::dfs`]); use [`Exploration::DfsDpor`] or
    /// [`CheckOptions::dpor`] to force it in code.
    Dfs {
        /// Maximum executions before giving up on exhausting the tree.
        budget: u64,
    },
    /// Bounded-exhaustive DFS with DPOR pruning (see `orc11::dpor`):
    /// explores a sound subset of [`Exploration::Dfs`]'s executions
    /// covering the same distinct behaviours and violations.
    DfsDpor {
        /// Maximum executions before giving up on exhausting the tree.
        budget: u64,
    },
}

impl Exploration {
    /// The engine-level work description this exploration denotes.
    pub fn work_spec(&self) -> WorkSpec {
        match *self {
            Exploration::Random { iters, seed0 } => WorkSpec::Random { iters, seed0 },
            Exploration::Pct {
                iters,
                seed0,
                depth,
            } => WorkSpec::Pct {
                iters,
                seed0,
                depth,
                horizon: PCT_HORIZON,
            },
            Exploration::Dfs { budget } => WorkSpec::dfs(budget),
            Exploration::DfsDpor { budget } => WorkSpec::DfsDpor { budget },
        }
    }
}

/// Which strategy instance produced one particular execution — enough to
/// re-create that execution's strategy exactly, whatever the exploration
/// mode ([`ExecOrigin::strategy`]).
///
/// Origins order by their serial exploration order (seed order for
/// random/PCT, lexicographic prefix order for DFS), which is how
/// "first failure" stays well defined — and thread-count independent —
/// under parallel exploration.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecOrigin {
    /// Seeded uniform-random execution.
    Random {
        /// The seed.
        seed: u64,
    },
    /// PCT execution (horizon [`PCT_HORIZON`]).
    Pct {
        /// The seed.
        seed: u64,
        /// Priority-change points.
        depth: usize,
    },
    /// DFS execution: the forced prefix identifies the path (beyond it
    /// the DFS strategy always picks alternative 0).
    Dfs {
        /// The forced choice prefix.
        prefix: Vec<u32>,
    },
}

impl ExecOrigin {
    /// The origin denoted by an engine strategy descriptor.
    pub fn from_desc(desc: &StrategyDesc) -> Self {
        match desc {
            StrategyDesc::Random { seed } => ExecOrigin::Random { seed: *seed },
            StrategyDesc::Pct { seed, depth, .. } => ExecOrigin::Pct {
                seed: *seed,
                depth: *depth,
            },
            StrategyDesc::Dfs { prefix } => ExecOrigin::Dfs {
                prefix: prefix.clone(),
            },
        }
    }

    /// Re-creates the strategy that produced this execution; running the
    /// same program under it reproduces the execution exactly.
    pub fn strategy(&self) -> Box<dyn Strategy> {
        match self {
            ExecOrigin::Random { seed } => random_strategy(*seed),
            ExecOrigin::Pct { seed, depth } => pct_strategy(*seed, *depth, PCT_HORIZON),
            ExecOrigin::Dfs { prefix } => dfs_strategy(prefix.clone()),
        }
    }

    /// Machine-readable form (for `bundle.json` and experiment metrics).
    pub fn to_json(&self) -> Json {
        match self {
            ExecOrigin::Random { seed } => Json::obj().set("mode", "random").set("seed", *seed),
            ExecOrigin::Pct { seed, depth } => Json::obj()
                .set("mode", "pct")
                .set("seed", *seed)
                .set("depth", *depth),
            ExecOrigin::Dfs { prefix } => {
                Json::obj().set("mode", "dfs").set("prefix", prefix.clone())
            }
        }
    }
}

impl fmt::Display for ExecOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecOrigin::Random { seed } => write!(f, "random seed {seed}"),
            ExecOrigin::Pct { seed, depth } => write!(f, "pct seed {seed} depth {depth}"),
            ExecOrigin::Dfs { prefix } => write!(f, "dfs prefix {prefix:?}"),
        }
    }
}

/// What [`check_executions`] needs from the checked value: a size for the
/// graph-size distribution and renderings for replay bundles.
///
/// Implemented for every [`Graph`]; implement it for composite results
/// (e.g. a pair of graphs) if a program checks several objects at once.
pub trait CheckTarget {
    /// Number of events (drives [`CheckReport::graph_sizes`]).
    fn event_count(&self) -> usize;
    /// Self-contained textual failure report.
    fn failure_report(&self, violation: &Violation, ops: &[OpRecord]) -> String;
    /// Graphviz rendering.
    fn dot(&self) -> String;
}

impl<T: fmt::Debug> CheckTarget for Graph<T> {
    fn event_count(&self) -> usize {
        self.len()
    }
    fn failure_report(&self, violation: &Violation, ops: &[OpRecord]) -> String {
        crate::report::render_failure(self, violation, ops)
    }
    fn dot(&self) -> String {
        crate::dot::to_dot(self, "violation")
    }
}

/// Knobs of [`check_executions_with`] that are orthogonal to the
/// exploration itself.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Write a replay bundle ([`crate::bundle`]) for the run's first
    /// failure (violation or model error, in serial exploration order)
    /// into a fresh subdirectory of this directory.
    pub bundle_dir: Option<PathBuf>,
    /// Print a throttled progress line (execs/sec, ETA) to stderr.
    pub progress: bool,
    /// Worker threads; `0` (the default) means auto: `COMPASS_THREADS`
    /// if set, else the host's available parallelism (capped — see
    /// [`orc11::default_threads`]).
    pub threads: usize,
    /// Cap on the model errors the underlying exploration keeps verbatim
    /// (the counts stay exact); default [`orc11::DEFAULT_MAX_ERRORS`].
    pub max_errors: usize,
    /// Forces DPOR pruning on (`Some(true)`) or off (`Some(false)`) for
    /// DFS explorations, overriding both the [`Exploration`] variant and
    /// the `COMPASS_DPOR` environment variable; `None` (the default)
    /// keeps whatever the exploration says. No effect on random/PCT.
    pub dpor: Option<bool>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            bundle_dir: None,
            progress: false,
            threads: 0,
            max_errors: orc11::DEFAULT_MAX_ERRORS,
            dpor: None,
        }
    }
}

impl CheckOptions {
    /// Reads the options from the environment: `COMPASS_BUNDLE_DIR` (a
    /// directory path), `COMPASS_PROGRESS` (any value but `0`), and
    /// `COMPASS_THREADS` (worker count; resolved by the engine, since
    /// `threads == 0` means exactly "consult the environment").
    /// [`check_executions`] uses this, so all three toggles work on every
    /// existing test and experiment binary without code changes.
    pub fn from_env() -> Self {
        CheckOptions {
            bundle_dir: std::env::var_os("COMPASS_BUNDLE_DIR").map(PathBuf::from),
            progress: orc11::progress::from_env(),
            ..CheckOptions::default()
        }
    }
}

/// Aggregated checking results.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Executions performed.
    pub execs: u64,
    /// Executions whose graph satisfied the predicate.
    pub consistent: u64,
    /// Violation counts per clause (`Violation::rule`).
    pub violations: BTreeMap<&'static str, u64>,
    /// First few concrete violations (in serial exploration order) with
    /// the strategy that found each, for diagnostics and replay.
    pub samples: Vec<(ExecOrigin, Violation)>,
    /// Executions that aborted in the model (races, panics, ...).
    pub model_errors: u64,
    /// For DFS: whether the schedule tree was exhausted.
    pub exhausted: bool,
    /// For DFS: whether the execution budget cut the enumeration short.
    /// A truncated parallel run explores a thread-count-dependent subset
    /// of the tree, so its counts are not comparable across thread
    /// counts (see `orc11::ExploreReport::truncated`).
    pub truncated: bool,
    /// DPOR pruning counters, when the exploration used DPOR.
    pub dpor: Option<DporStats>,
    /// Model-instruction counters summed over all executions.
    pub stats: ExecStats,
    /// Distribution of model instructions per execution.
    pub steps_hist: StepHistogram,
    /// Distribution of event-graph sizes over completed executions.
    pub graph_sizes: StepHistogram,
    /// Schedule coverage (distinct choice traces; DFS nodes visited).
    pub coverage: Coverage,
    /// Linearization-search counters accumulated inside the checks.
    pub search: SearchStats,
    /// Wall-clock nanoseconds spent inside the check predicate (summed
    /// across workers, so not comparable across thread counts).
    pub check_ns: u64,
    /// [`CheckReport::check_ns`] split by outcome: the violated clause,
    /// or [`PASS_RULE`] for checks that passed.
    pub check_ns_by_rule: BTreeMap<&'static str, u64>,
    /// Per-phase busy-time breakdown (explore/dpor/check/linearize/
    /// conform/io), averaged per worker so it sums to at most the run's
    /// wall time — see `orc11::trace`. Wall-clock, like
    /// [`CheckReport::check_ns`]: excluded from the byte-identical
    /// guarantee and normalized by determinism tests.
    pub phase_ns: PhaseNs,
    /// Per-worker load-balance counters, indexed by worker. Scheduling-
    /// dependent, so *not* part of [`CheckReport::to_json`]; metrics use
    /// [`CheckReport::workers_json`].
    pub workers: Vec<WorkerStats>,
    /// Where the first failure's replay bundle was written, if
    /// [`CheckOptions::bundle_dir`] was set and a failure occurred.
    pub bundle: Option<PathBuf>,
}

impl CheckReport {
    /// Panics unless every execution completed and satisfied the
    /// predicate.
    ///
    /// # Panics
    ///
    /// On any model error or violation.
    pub fn assert_clean(&self) {
        assert_eq!(self.model_errors, 0, "model errors: {self}");
        assert_eq!(self.consistent, self.execs, "violations: {self}");
    }

    /// Whether the clause ever fired.
    pub fn violated(&self, rule: &str) -> bool {
        self.violations.keys().any(|&r| r == rule)
    }

    /// Machine-readable form of the report (see `EXPERIMENTS.md`,
    /// "Observability & replay", for the schema).
    pub fn to_json(&self) -> Json {
        let mut violations = Json::obj();
        for (&rule, &n) in &self.violations {
            violations = violations.set(rule, n);
        }
        let mut check_ns_by_rule = Json::obj();
        for (&rule, &ns) in &self.check_ns_by_rule {
            check_ns_by_rule = check_ns_by_rule.set(rule, ns);
        }
        Json::obj()
            .set("execs", self.execs)
            .set("consistent", self.consistent)
            .set("model_errors", self.model_errors)
            .set("exhausted", self.exhausted)
            .set("truncated", self.truncated)
            .set(
                "dpor",
                match &self.dpor {
                    Some(d) => d.to_json(),
                    None => Json::Null,
                },
            )
            .set("violations", violations)
            .set(
                "samples",
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|(o, v)| {
                            Json::obj()
                                .set("origin", o.to_json())
                                .set("rule", v.rule)
                                .set("message", v.message.clone())
                        })
                        .collect(),
                ),
            )
            .set("stats", self.stats.to_json())
            .set("steps_hist", self.steps_hist.to_json())
            .set("graph_sizes", self.graph_sizes.to_json())
            .set(
                "coverage",
                Json::obj()
                    .set("distinct_traces", self.coverage.distinct_traces())
                    .set("dfs_nodes", self.coverage.dfs_nodes),
            )
            .set(
                "search",
                Json::obj()
                    .set("searches", self.search.searches)
                    .set("nodes", self.search.nodes)
                    .set("backtracks", self.search.backtracks)
                    .set("memo_prunes", self.search.memo_prunes),
            )
            .set("check_ns", self.check_ns)
            .set("check_ns_by_rule", check_ns_by_rule)
            .set("phase_ns", self.phase_ns.to_json())
    }

    /// Machine-readable per-worker load-balance stats (for experiment
    /// metrics). Kept out of [`CheckReport::to_json`] because the values
    /// depend on scheduling, not just on the explored executions.
    pub fn workers_json(&self) -> Json {
        orc11::workers_to_json(&self.workers)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} consistent, {} model errors, {} distinct traces{}",
            self.consistent,
            self.execs,
            self.model_errors,
            self.coverage.distinct_traces(),
            if self.exhausted { " (exhaustive)" } else { "" }
        )?;
        if !self.violations.is_empty() {
            write!(f, "; violations: {:?}", self.violations)?;
        }
        if let Some((origin, v)) = self.samples.first() {
            write!(f, "; first ({origin}): {v}")?;
        }
        if self.workers.len() > 1 {
            write!(f, "; workers (executed/stolen/idle)")?;
            for (i, w) in self.workers.iter().enumerate() {
                let sep = if i == 0 { ' ' } else { ',' };
                write!(f, "{sep} {i}:{}/{}/{}", w.executed, w.stolen, w.idle_waits)?;
            }
        }
        Ok(())
    }
}

/// Throttled stderr progress line ([`CheckOptions::progress`]), shared
/// by all workers: a counter everyone bumps, feeding an
/// [`orc11::ProgressLine`] (`try_lock` + 200ms throttle, so nobody ever
/// waits on the printer).
struct Progress {
    line: orc11::ProgressLine,
    total: u64,
    /// DFS runs report the live frontier depth instead of percent-of-
    /// budget: a DFS budget is a cap, not a target, so "% done" would
    /// overstate runs that exhaust early.
    dfs: bool,
    start: Instant,
    done: AtomicU64,
}

impl Progress {
    fn new(enabled: bool, spec: &WorkSpec) -> Self {
        Progress {
            line: orc11::ProgressLine::new(enabled),
            total: spec.total(),
            dfs: matches!(spec, WorkSpec::Dfs { .. } | WorkSpec::DfsDpor { .. }),
            start: Instant::now(),
            done: AtomicU64::new(0),
        }
    }

    fn tick(&self) {
        if !self.line.enabled() {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.line.maybe(|| {
            let rate = done as f64 / self.start.elapsed().as_secs_f64().max(1e-9);
            if self.dfs {
                format!(
                    "{done} execs, {rate:.0}/s, frontier {}",
                    trace::frontier_depth()
                )
            } else if self.total > done {
                let pct = 100.0 * done as f64 / self.total as f64;
                let eta = (self.total - done) as f64 / rate.max(1e-9);
                format!(
                    "{done}/{} execs ({pct:.0}%), {rate:.0}/s, ETA {eta:.1}s",
                    self.total
                )
            } else {
                format!("{done} execs, {rate:.0}/s")
            }
        });
    }

    fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        let secs = self.start.elapsed().as_secs_f64();
        self.line.finish(&format!(
            "{done} execs in {secs:.2}s ({:.0}/s)",
            done as f64 / secs.max(1e-9)
        ));
    }
}

/// One worker's share of a [`CheckReport`]: everything the base
/// [`orc11::ExploreReport`] does not already account. Each worker gets
/// its own (no locking in the hot path); [`CheckerSink::merge_into`]
/// folds them — every piece commutatively, so the merged report is
/// thread-count independent.
struct CheckerSink<'a, G, C> {
    check: &'a C,
    progress: &'a Progress,
    consistent: u64,
    violations: BTreeMap<&'static str, u64>,
    /// The `SAMPLE_CAP` smallest-origin violations this worker saw.
    samples: Vec<(ExecOrigin, Violation)>,
    graph_sizes: StepHistogram,
    search: SearchStats,
    check_ns: u64,
    check_ns_by_rule: BTreeMap<&'static str, u64>,
    /// Smallest-origin failure (violation *or* model error) this worker
    /// saw; the global minimum is what a serial run fails on first.
    first_failure: Option<ExecOrigin>,
    _target: PhantomData<fn(&G)>,
}

impl<'a, G, C> CheckerSink<'a, G, C> {
    fn new(check: &'a C, progress: &'a Progress) -> Self {
        CheckerSink {
            check,
            progress,
            consistent: 0,
            violations: BTreeMap::new(),
            samples: Vec::new(),
            graph_sizes: StepHistogram::default(),
            search: SearchStats::default(),
            check_ns: 0,
            check_ns_by_rule: BTreeMap::new(),
            first_failure: None,
            _target: PhantomData,
        }
    }

    fn note_failure(&mut self, origin: ExecOrigin) {
        match &self.first_failure {
            Some(f) if *f <= origin => {}
            _ => self.first_failure = Some(origin),
        }
    }

    fn keep_sample(&mut self, origin: ExecOrigin, v: Violation) {
        let pos = self.samples.partition_point(|(o, _)| *o < origin);
        if pos < SAMPLE_CAP {
            self.samples.insert(pos, (origin, v));
            self.samples.truncate(SAMPLE_CAP);
        }
    }

    fn merge_into(self, report: &mut CheckReport) {
        report.consistent += self.consistent;
        for (rule, n) in self.violations {
            *report.violations.entry(rule).or_insert(0) += n;
        }
        for (origin, v) in self.samples {
            let pos = report.samples.partition_point(|(o, _)| *o < origin);
            if pos < SAMPLE_CAP {
                report.samples.insert(pos, (origin, v));
                report.samples.truncate(SAMPLE_CAP);
            }
        }
        report.graph_sizes.merge(&self.graph_sizes);
        report.search.merge(&self.search);
        report.check_ns += self.check_ns;
        for (rule, ns) in self.check_ns_by_rule {
            *report.check_ns_by_rule.entry(rule).or_insert(0) += ns;
        }
    }
}

impl<G, C> Sink<G> for CheckerSink<'_, G, C>
where
    G: CheckTarget,
    C: Fn(&G) -> Result<(), Violation>,
{
    fn on_outcome(&mut self, desc: &StrategyDesc, out: &RunOutcome<G>) {
        match &out.result {
            Err(_) => {
                // The base ExploreReport counts and keeps the error; here
                // it only competes for "first failure" (bundle capture).
                self.note_failure(ExecOrigin::from_desc(desc));
            }
            Ok(g) => {
                self.graph_sizes.record(g.event_count() as u64);
                let t0 = Instant::now();
                let result = {
                    let _span = trace::span(trace::Phase::Check, "check");
                    (self.check)(g)
                };
                let dt = t0.elapsed().as_nanos() as u64;
                self.check_ns += dt;
                self.search.merge(&history::take_search_stats());
                match result {
                    Ok(()) => {
                        *self.check_ns_by_rule.entry(PASS_RULE).or_insert(0) += dt;
                        self.consistent += 1;
                    }
                    Err(v) => {
                        *self.check_ns_by_rule.entry(v.rule).or_insert(0) += dt;
                        *self.violations.entry(v.rule).or_insert(0) += 1;
                        let origin = ExecOrigin::from_desc(desc);
                        self.note_failure(origin.clone());
                        self.keep_sample(origin, v);
                    }
                }
            }
        }
        self.progress.tick();
    }
}

/// Runs `program` (a closure from a strategy to a run outcome whose value
/// is a graph or similar) under `exploration`, checking each completed
/// execution with `check`. Options come from the environment
/// ([`CheckOptions::from_env`]); use [`check_executions_with`] to set
/// them in code.
pub fn check_executions<G: CheckTarget>(
    exploration: &Exploration,
    program: impl Fn(Box<dyn Strategy>) -> RunOutcome<G> + Send + Sync,
    check: impl Fn(&G) -> Result<(), Violation> + Sync,
) -> CheckReport {
    check_executions_with(exploration, &CheckOptions::from_env(), program, check)
}

/// [`check_executions`] with explicit [`CheckOptions`].
pub fn check_executions_with<G: CheckTarget>(
    exploration: &Exploration,
    opts: &CheckOptions,
    program: impl Fn(Box<dyn Strategy>) -> RunOutcome<G> + Send + Sync,
    check: impl Fn(&G) -> Result<(), Violation> + Sync,
) -> CheckReport {
    let spec = match opts.dpor {
        Some(on) => exploration.work_spec().with_dpor(on),
        None => exploration.work_spec(),
    };
    let progress = Progress::new(opts.progress, &spec);
    // Discard search counters a previous caller on this thread left
    // behind, so a serial (inline) run only sees its own checks.
    let _ = history::take_search_stats();
    let explorer = Explorer {
        threads: opts.threads,
        max_errors: opts.max_errors,
    };
    let (base, sinks) =
        explorer.explore_with(&spec, &program, |_| CheckerSink::new(&check, &progress));
    progress.finish();

    let mut report = CheckReport {
        execs: base.execs,
        model_errors: base.error_count,
        exhausted: base.exhausted,
        truncated: base.truncated,
        dpor: base.dpor,
        stats: base.stats,
        steps_hist: base.steps_hist,
        coverage: base.coverage,
        phase_ns: base.phase_ns,
        workers: base.workers,
        ..CheckReport::default()
    };
    let mut first_failure: Option<ExecOrigin> = None;
    for sink in sinks {
        match (&first_failure, &sink.first_failure) {
            (Some(a), Some(b)) if a <= b => {}
            (_, Some(b)) => first_failure = Some(b.clone()),
            _ => {}
        }
        sink.merge_into(&mut report);
    }

    // Capture the replay bundle at the end, by re-running the earliest
    // failure: origins are replayable by construction, this keeps the
    // hot loop free of I/O, and "earliest" is well defined whatever the
    // thread count.
    if let (Some(dir), Some(origin)) = (&opts.bundle_dir, &first_failure) {
        let mark = trace::thread_phases();
        let out = program(origin.strategy());
        let written = match &out.result {
            Err(e) => bundle::write_error_bundle(dir, e, &out, origin).map(Some),
            Ok(g) => match check(g) {
                Err(v) => bundle::write_bundle(dir, g, &v, &out, origin).map(Some),
                Ok(()) => {
                    eprintln!(
                        "compass: replay of first failure ({origin}) did not fail; \
                         is the program or predicate nondeterministic?"
                    );
                    Ok(None)
                }
            },
        };
        match written {
            Ok(path) => report.bundle = path,
            Err(err) => eprintln!("compass: cannot write replay bundle: {err}"),
        }
        // The replay's search counters are a duplicate of already-merged
        // work; keep them out of this thread's next report.
        let _ = history::take_search_stats();
        // The replay and bundle write happen after the per-worker phase
        // deltas were merged, so account them separately.
        report
            .phase_ns
            .merge(&trace::thread_phases().delta_since(&mark));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_spec::{check_queue_consistent, QueueEvent};
    use crate::Graph;
    use orc11::{run_model, BodyFn, Config, Mode, Val};
    use std::sync::atomic::AtomicBool;

    fn trivial_program(strategy: Box<dyn Strategy>) -> RunOutcome<Graph<QueueEvent>> {
        run_model(
            &Config::default(),
            strategy,
            |ctx| ctx.alloc("x", Val::Int(0)),
            vec![Box::new(|ctx: &mut orc11::ThreadCtx, &l: &orc11::Loc| {
                ctx.write(l, Val::Int(1), Mode::Release);
            }) as BodyFn<'_, _, ()>],
            |_, _, _| Graph::new(),
        )
    }

    #[test]
    fn random_exploration_counts() {
        let report = check_executions(
            &Exploration::Random {
                iters: 10,
                seed0: 0,
            },
            trivial_program,
            check_queue_consistent,
        );
        assert_eq!(report.execs, 10);
        report.assert_clean();
        // Telemetry: every execution wrote once and allocated once.
        assert_eq!(report.stats.writes.total(), 10);
        assert_eq!(report.stats.allocs, 10);
        assert_eq!(report.steps_hist.count(), 10);
        assert_eq!(report.graph_sizes.count(), 10);
        assert!(report.coverage.distinct_traces() >= 1);
        assert_eq!(report.check_ns_by_rule.len(), 1);
        assert!(report.check_ns_by_rule.contains_key(PASS_RULE));
    }

    #[test]
    fn dfs_exhausts_trivial_program() {
        let report = check_executions(&Exploration::Dfs { budget: 100 }, trivial_program, |g| {
            check_queue_consistent(g)
        });
        assert!(report.exhausted);
        report.assert_clean();
    }

    #[test]
    fn violations_are_tallied_per_rule() {
        let flip = AtomicBool::new(false);
        let report = check_executions(
            &Exploration::Pct {
                iters: 6,
                seed0: 0,
                depth: 2,
            },
            trivial_program,
            |_| {
                if !flip.fetch_xor(true, Ordering::Relaxed) {
                    Err(Violation::new("TEST-RULE", "synthetic", vec![]))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(report.execs, 6);
        assert_eq!(report.consistent, 3);
        assert_eq!(report.violations["TEST-RULE"], 3);
        assert!(report.violated("TEST-RULE"));
        assert!(!report.violated("OTHER"));
        assert!(report.to_string().contains("TEST-RULE"));
        // Per-clause timing covers both outcomes.
        assert!(report.check_ns_by_rule.contains_key("TEST-RULE"));
        assert!(report.check_ns_by_rule.contains_key(PASS_RULE));
        assert!(report.check_ns >= report.check_ns_by_rule["TEST-RULE"]);
    }

    #[test]
    fn samples_carry_their_origin_per_mode() {
        let explorations = [
            Exploration::Random {
                iters: 3,
                seed0: 40,
            },
            Exploration::Pct {
                iters: 3,
                seed0: 40,
                depth: 2,
            },
            Exploration::Dfs { budget: 3 },
        ];
        for e in &explorations {
            let report =
                check_executions_with(e, &CheckOptions::default(), trivial_program, |_| {
                    Err(Violation::new("TEST-RULE", "always", vec![]))
                });
            // DFS may exhaust its (tiny) tree before the budget.
            assert_eq!(report.samples.len() as u64, report.execs.min(8));
            assert!(!report.samples.is_empty());
            let (first, _) = &report.samples[0];
            match (e, first) {
                (Exploration::Random { .. }, ExecOrigin::Random { seed }) => {
                    assert_eq!(*seed, 40);
                }
                (Exploration::Pct { .. }, ExecOrigin::Pct { seed, depth }) => {
                    assert_eq!((*seed, *depth), (40, 2));
                }
                (Exploration::Dfs { .. }, ExecOrigin::Dfs { prefix }) => {
                    // The first sample in serial order is the DFS root.
                    assert!(prefix.is_empty());
                }
                (e, o) => panic!("origin {o:?} does not match exploration {e:?}"),
            }
        }
    }

    #[test]
    fn origin_strategy_reproduces_the_execution() {
        let report = check_executions_with(
            &Exploration::Pct {
                iters: 4,
                seed0: 9,
                depth: 2,
            },
            &CheckOptions::default(),
            trivial_program,
            |_| Err(Violation::new("TEST-RULE", "always", vec![])),
        );
        let (origin, _) = &report.samples[1];
        let a = trivial_program(origin.strategy());
        let b = trivial_program(origin.strategy());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn parallel_report_json_matches_serial() {
        // Wall-clock fields aside, thread count must not show in the
        // report. The predicate violates on a deterministic function of
        // the graph-free flip above, so use a per-execution-stable one.
        for exploration in [
            Exploration::Random {
                iters: 40,
                seed0: 0,
            },
            Exploration::Dfs { budget: 100 },
        ] {
            let run = |threads: usize| {
                let opts = CheckOptions {
                    threads,
                    ..CheckOptions::default()
                };
                check_executions_with(&exploration, &opts, trivial_program, |g| {
                    check_queue_consistent(g)
                })
                .to_json()
                .set("check_ns", 0u64)
                .set("check_ns_by_rule", Json::obj())
                .set("phase_ns", PhaseNs::ZERO.to_json())
                .render()
            };
            assert_eq!(run(1), run(4), "{exploration:?}");
        }
    }

    #[test]
    fn report_json_has_the_documented_keys() {
        let report = check_executions(
            &Exploration::Random { iters: 4, seed0: 0 },
            trivial_program,
            check_queue_consistent,
        );
        let j = report.to_json();
        for key in [
            "execs",
            "consistent",
            "model_errors",
            "exhausted",
            "truncated",
            "dpor",
            "violations",
            "samples",
            "stats",
            "steps_hist",
            "graph_sizes",
            "coverage",
            "search",
            "check_ns",
            "check_ns_by_rule",
            "phase_ns",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(j.get("execs"), Some(&Json::Int(4)));
    }
}
