//! A small harness for checking a graph-producing model program against a
//! consistency predicate over many explored executions.
//!
//! Wraps [`orc11`]'s exploration with per-clause violation accounting, so
//! tests and experiments can say "run this workload under these
//! strategies and tell me which clauses ever failed".

use std::collections::BTreeMap;
use std::fmt;

use orc11::{dfs_strategy, pct_strategy, random_strategy, RunOutcome, Strategy};

use crate::spec::Violation;

/// How to explore the schedule space.
#[derive(Clone, Debug)]
pub enum Exploration {
    /// `iters` seeded uniform-random executions starting at `seed0`.
    Random {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
    },
    /// `iters` PCT executions with `depth` priority-change points.
    Pct {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
        /// Number of priority-change points.
        depth: usize,
    },
    /// Bounded-exhaustive DFS with an execution budget.
    Dfs {
        /// Maximum executions before giving up on exhausting the tree.
        budget: u64,
    },
}

/// Aggregated checking results.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Executions performed.
    pub execs: u64,
    /// Executions whose graph satisfied the predicate.
    pub consistent: u64,
    /// Violation counts per clause (`Violation::rule`).
    pub violations: BTreeMap<&'static str, u64>,
    /// First few concrete violations, for diagnostics.
    pub samples: Vec<(u64, Violation)>,
    /// Executions that aborted in the model (races, panics, ...).
    pub model_errors: u64,
    /// For DFS: whether the schedule tree was exhausted.
    pub exhausted: bool,
}

impl CheckReport {
    /// Panics unless every execution completed and satisfied the
    /// predicate.
    ///
    /// # Panics
    ///
    /// On any model error or violation.
    pub fn assert_clean(&self) {
        assert_eq!(self.model_errors, 0, "model errors: {self}");
        assert_eq!(self.consistent, self.execs, "violations: {self}");
    }

    /// Whether the clause ever fired.
    pub fn violated(&self, rule: &str) -> bool {
        self.violations.keys().any(|&r| r == rule)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} consistent, {} model errors{}",
            self.consistent,
            self.execs,
            self.model_errors,
            if self.exhausted { " (exhaustive)" } else { "" }
        )?;
        if !self.violations.is_empty() {
            write!(f, "; violations: {:?}", self.violations)?;
        }
        if let Some((id, v)) = self.samples.first() {
            write!(f, "; first: exec {id}: {v}")?;
        }
        Ok(())
    }
}

/// Runs `program` (a closure from a strategy to a run outcome whose value
/// is a graph or similar) under `exploration`, checking each completed
/// execution with `check`.
pub fn check_executions<G>(
    exploration: &Exploration,
    mut program: impl FnMut(Box<dyn Strategy>) -> RunOutcome<G>,
    mut check: impl FnMut(&G) -> Result<(), Violation>,
) -> CheckReport {
    let mut report = CheckReport::default();
    let mut record = |report: &mut CheckReport, id: u64, out: &RunOutcome<G>| {
        report.execs += 1;
        match &out.result {
            Err(_) => report.model_errors += 1,
            Ok(g) => match check(g) {
                Ok(()) => report.consistent += 1,
                Err(v) => {
                    *report.violations.entry(v.rule).or_insert(0) += 1;
                    if report.samples.len() < 8 {
                        report.samples.push((id, v));
                    }
                }
            },
        }
    };
    match *exploration {
        Exploration::Random { iters, seed0 } => {
            for i in 0..iters {
                let out = program(random_strategy(seed0 + i));
                record(&mut report, seed0 + i, &out);
            }
        }
        Exploration::Pct {
            iters,
            seed0,
            depth,
        } => {
            for i in 0..iters {
                let out = program(pct_strategy(seed0 + i, depth, 64));
                record(&mut report, seed0 + i, &out);
            }
        }
        Exploration::Dfs { budget } => {
            // Re-implement the DFS driver so we can see every outcome.
            let mut prefix: Vec<u32> = Vec::new();
            let mut n = 0u64;
            loop {
                if n >= budget {
                    break;
                }
                let out = program(dfs_strategy(prefix.clone()));
                record(&mut report, n, &out);
                n += 1;
                let mut trace: Vec<(u32, u32)> =
                    out.trace.iter().map(|c| (c.chosen, c.arity)).collect();
                let mut backtracked = false;
                while let Some((chosen, arity)) = trace.pop() {
                    if chosen + 1 < arity {
                        trace.push((chosen + 1, arity));
                        prefix = trace.iter().map(|&(c, _)| c).collect();
                        backtracked = true;
                        break;
                    }
                }
                if !backtracked {
                    report.exhausted = true;
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_spec::{check_queue_consistent, QueueEvent};
    use crate::Graph;
    use orc11::{run_model, BodyFn, Config, Val};

    fn trivial_program(strategy: Box<dyn Strategy>) -> RunOutcome<Graph<QueueEvent>> {
        run_model(
            &Config::default(),
            strategy,
            |ctx| ctx.alloc("x", Val::Int(0)),
            vec![Box::new(|ctx: &mut orc11::ThreadCtx, &l: &orc11::Loc| {
                ctx.write(l, Val::Int(1), orc11::Mode::Release);
            }) as BodyFn<'_, _, ()>],
            |_, _, _| Graph::new(),
        )
    }

    #[test]
    fn random_exploration_counts() {
        let report = check_executions(
            &Exploration::Random { iters: 10, seed0: 0 },
            trivial_program,
            |g| check_queue_consistent(g),
        );
        assert_eq!(report.execs, 10);
        report.assert_clean();
    }

    #[test]
    fn dfs_exhausts_trivial_program() {
        let report = check_executions(
            &Exploration::Dfs { budget: 100 },
            trivial_program,
            |g| check_queue_consistent(g),
        );
        assert!(report.exhausted);
        report.assert_clean();
    }

    #[test]
    fn violations_are_tallied_per_rule() {
        let mut flip = false;
        let report = check_executions(
            &Exploration::Pct {
                iters: 6,
                seed0: 0,
                depth: 2,
            },
            trivial_program,
            |_| {
                flip = !flip;
                if flip {
                    Err(Violation::new("TEST-RULE", "synthetic", vec![]))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(report.execs, 6);
        assert_eq!(report.consistent, 3);
        assert_eq!(report.violations["TEST-RULE"], 3);
        assert!(report.violated("TEST-RULE"));
        assert!(!report.violated("OTHER"));
        assert!(report.to_string().contains("TEST-RULE"));
    }
}
