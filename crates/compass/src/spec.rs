//! Specification results and violation diagnostics.

use std::error::Error;
use std::fmt;

use crate::event::EventId;

/// A violated consistency clause, with enough context to debug the
/// offending execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The clause, e.g. `"QUEUE-FIFO"`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The events involved.
    pub events: Vec<EventId>,
}

impl Violation {
    /// Creates a violation of `rule`.
    pub fn new(rule: &'static str, message: impl Into<String>, events: Vec<EventId>) -> Self {
        Violation {
            rule,
            message: message.into(),
            events,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (events {:?})",
            self.rule, self.message, self.events
        )
    }
}

impl Error for Violation {}

/// Result of a consistency check.
pub type SpecResult = Result<(), Violation>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_and_events() {
        let v = Violation::new("QUEUE-FIFO", "out of order", vec![EventId::from_raw(1)]);
        let s = v.to_string();
        assert!(s.contains("QUEUE-FIFO"));
        assert!(s.contains("out of order"));
        assert!(s.contains("e1"));
    }
}
