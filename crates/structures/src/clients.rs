//! The paper's client programs as reusable model programs.
//!
//! * [`run_mp`] — the Message-Passing client of Figure 1/3: the
//!   flag-synchronized dequeuer can never observe the queue as empty.
//! * [`run_spsc`] — the single-producer single-consumer client of §3.2:
//!   the consumer's array ends up equal to the producer's.

use compass::queue_spec::{check_queue_consistent, QueueEvent};
#[allow(unused_imports)]
use compass::spsc_spec;
use compass::{EventId, Graph};
use orc11::{run_model, BodyFn, Config, Loc, Mode, RunOutcome, Strategy, ThreadCtx, Val};

use crate::queue::{ModelQueue, MsQueue};

/// Result of one MP-client execution.
#[derive(Clone, Debug)]
pub struct MpResult {
    /// What the flag-synchronized (right-most) thread dequeued.
    pub right_value: Option<Val>,
    /// What the unsynchronized (middle) thread dequeued.
    pub middle_value: Option<Val>,
    /// The queue's final event graph.
    pub graph: Graph<QueueEvent>,
}

/// Runs the Message-Passing client of Figure 1 once.
///
/// Three threads share a queue `q` and a `flag`:
///
/// * thread 1: `enq(q, 41); enq(q, 42); flag :=ʳᵉˡ 1`,
/// * thread 2: `deq(q)` (may legitimately observe empty),
/// * thread 3: `while (*ᵃᶜ𝑞 flag == 0) {}; deq(q)`.
///
/// When `release_flag` is true (the paper's client), thread 3 has
/// synchronized with both enqueues, and by QUEUE-EMPDEQ its dequeue cannot
/// return empty — it returns 41 or 42. With a relaxed flag write (the
/// ablation), the external synchronization is gone and an empty dequeue
/// becomes a *consistent* outcome: the guarantee genuinely came from
/// combining the queue's spec with the client's release/acquire transfer.
pub fn run_mp<Q: ModelQueue>(
    make: impl FnOnce(&mut ThreadCtx) -> Q,
    release_flag: bool,
    strategy: Box<dyn Strategy>,
) -> RunOutcome<MpResult> {
    let flag_mode = if release_flag {
        Mode::Release
    } else {
        Mode::Relaxed
    };
    run_model(
        &Config::default(),
        strategy,
        |ctx| {
            let q = make(ctx);
            let flag = ctx.alloc("mp.flag", Val::Int(0));
            (q, flag)
        },
        vec![
            Box::new(move |ctx: &mut ThreadCtx, (q, flag): &(Q, Loc)| {
                q.enqueue(ctx, Val::Int(41));
                q.enqueue(ctx, Val::Int(42));
                ctx.write(*flag, Val::Int(1), flag_mode);
                None
            }) as BodyFn<'_, _, Option<Val>>,
            Box::new(|ctx: &mut ThreadCtx, (q, _): &(Q, Loc)| q.try_dequeue(ctx).0),
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(Q, Loc)| {
                ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                q.try_dequeue(ctx).0
            }),
        ],
        |_, (q, _), outs| MpResult {
            right_value: outs[2],
            middle_value: outs[1],
            graph: q.obj().snapshot(),
        },
    )
}

/// Checks the MP postcondition on one execution result: queue consistency
/// always, and — for the release-flag client — that the right thread got
/// 41 or 42.
///
/// Returns a description of the failure, if any.
pub fn check_mp(res: &MpResult, release_flag: bool) -> Result<(), String> {
    check_queue_consistent(&res.graph).map_err(|v| format!("queue inconsistent: {v}"))?;
    if release_flag {
        match res.right_value {
            Some(v) if v == Val::Int(41) || v == Val::Int(42) => Ok(()),
            Some(v) => Err(format!("right thread dequeued unexpected {v}")),
            None => Err("right thread observed an empty queue".to_string()),
        }
    } else {
        Ok(())
    }
}

/// Result of one SPSC-client execution.
#[derive(Clone, Debug)]
pub struct SpscResult {
    /// The values the consumer wrote into its array, in order.
    pub consumed: Vec<Val>,
    /// The enqueue/dequeue event ids, for graph assertions.
    pub events: Vec<EventId>,
    /// The final graph.
    pub graph: Graph<QueueEvent>,
}

/// Runs the SPSC client of §3.2 once on a Michael-Scott queue: a producer
/// enqueues `a_p[0..n]` in order, a consumer dequeues `n` elements into
/// `a_c[0..n]` in order. FIFO end-to-end means `a_c == a_p`.
pub fn run_spsc(n: usize, strategy: Box<dyn Strategy>) -> RunOutcome<SpscResult> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| {
            let q = MsQueue::new(ctx);
            // The producer's source array (non-atomic, thread-local use).
            let inits: Vec<Val> = (0..n as i64).map(|i| Val::Int(100 + i)).collect();
            let a_p = ctx.alloc_block("spsc.a_p", &inits);
            // The consumer's destination array.
            let zeros: Vec<Val> = vec![Val::Int(0); n];
            let a_c = ctx.alloc_block("spsc.a_c", &zeros);
            (q, a_p, a_c, n)
        },
        vec![
            Box::new(
                |ctx: &mut ThreadCtx, (q, a_p, _, n): &(MsQueue, Loc, Loc, usize)| {
                    let mut evs = Vec::new();
                    for i in 0..*n {
                        let v = ctx.read(a_p.field(i as u32), Mode::NonAtomic);
                        evs.push(q.enqueue(ctx, v));
                    }
                    evs
                },
            ) as BodyFn<'_, _, Vec<EventId>>,
            Box::new(
                |ctx: &mut ThreadCtx, (q, _, a_c, n): &(MsQueue, Loc, Loc, usize)| {
                    let mut evs = Vec::new();
                    for i in 0..*n {
                        let (v, ev) = q.dequeue_await(ctx);
                        ctx.write(a_c.field(i as u32), v, Mode::NonAtomic);
                        evs.push(ev);
                    }
                    evs
                },
            ),
        ],
        |ctx, (q, _, a_c, n), outs| {
            let consumed: Vec<Val> = (0..*n)
                .map(|i| ctx.read(a_c.field(i as u32), Mode::NonAtomic))
                .collect();
            let mut events = outs[0].clone();
            events.extend(outs[1].iter().copied());
            SpscResult {
                consumed,
                events,
                graph: q.obj().snapshot(),
            }
        },
    )
}

/// Checks the SPSC postcondition: the §3.2 *derived* SPSC spec (general
/// consistency + role discipline ⇒ total index-aligned FIFO), plus the
/// client-visible property that the consumer received exactly
/// `100..100+n` in order.
pub fn check_spsc(res: &SpscResult, n: usize) -> Result<(), String> {
    compass::spsc_spec::derive_spsc(&res.graph).map_err(|v| format!("queue inconsistent: {v}"))?;
    let expected: Vec<Val> = (0..n as i64).map(|i| Val::Int(100 + i)).collect();
    if res.consumed != expected {
        return Err(format!(
            "consumer array {:?} differs from producer array {:?}",
            res.consumed, expected
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buggy::RelaxedMsQueue;
    use crate::queue::HwQueue;
    use orc11::random_strategy;

    #[test]
    fn mp_holds_for_ms_queue() {
        for seed in 0..150 {
            let out = run_mp(MsQueue::new, true, random_strategy(seed));
            let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_mp(&res, true).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn mp_holds_for_hw_queue() {
        for seed in 0..150 {
            let out = run_mp(|ctx| HwQueue::new(ctx, 4), true, random_strategy(seed));
            let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_mp(&res, true).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn mp_ablation_relaxed_flag_allows_empty() {
        // With a relaxed flag write, the queue stays consistent but the
        // right thread can observe empty — the MP guarantee really came
        // from the client's release/acquire synchronization.
        let mut empties = 0;
        for seed in 0..300 {
            let out = run_mp(MsQueue::new, false, random_strategy(seed));
            let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_mp(&res, false).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if res.right_value.is_none() {
                empties += 1;
            }
        }
        assert!(
            empties > 0,
            "relaxed-flag ablation should exhibit empty dequeues"
        );
    }

    #[test]
    fn mp_fails_for_relaxed_ms_queue() {
        // The buggy queue breaks the MP property (or consistency) in some
        // interleaving, even with the release flag.
        let mut failures = 0;
        for seed in 0..300 {
            let out = run_mp(RelaxedMsQueue::new, true, random_strategy(seed));
            let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if check_mp(&res, true).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "relaxed queue should break the MP client");
    }

    #[test]
    fn spsc_transfers_array_in_order() {
        for seed in 0..100 {
            let out = run_spsc(4, random_strategy(seed));
            let res = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_spsc(&res, 4).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
