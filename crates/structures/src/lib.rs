//! # compass-structures — the paper's libraries, on the model
//!
//! Model-level implementations of every data structure the Compass paper
//! verifies, written against the [`orc11`] memory-model simulator with the
//! same access modes as the paper's implementations, and instrumented with
//! ghost commit points so that every execution produces a [`compass`]
//! event graph:
//!
//! * [`queue::MsQueue`] — Michael-Scott queue, purely release/acquire
//!   (satisfies the `LAT_hb^abs` specs: its commit order is a
//!   linearization; §3.1–3.2),
//! * [`queue::HwQueue`] — a relaxed Herlihy-Wing queue (release enqueues,
//!   acquire dequeues; satisfies the graph-based `LAT_hb` specs but not, in
//!   general, abstract-state construction at commit points; §3.2),
//! * [`stack::TreiberStack`] — relaxed Treiber stack (release push CAS,
//!   acquire pop CAS; satisfies the `LAT_hb^hist` linearizable-history
//!   specs; §3.3),
//! * [`exchanger::Exchanger`] — an offer/response exchanger with *helping*:
//!   a matched pair of exchanges is committed atomically together by the
//!   helper (§4.2),
//! * [`stack::ElimStack`] — the elimination stack composing a base Treiber
//!   stack and an exchanger *without any new atomic instructions*, its
//!   events built compositionally from theirs (§4.1),
//! * [`buggy`] — deliberately weakened variants whose executions violate
//!   specific consistency clauses (negative tests for the checkers).
//!
//! [`clients`] contains the paper's client programs (the Message-Passing
//! client of Figure 1/3 and the SPSC client of §3.2) as reusable model
//! programs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buggy;
pub mod clients;
pub mod deque;
pub mod exchanger;
pub mod lock;
pub mod queue;
pub mod stack;

use orc11::Val;

/// Sentinel marking a "pop" offer in the elimination machinery (§4.1).
/// Client values must differ from it.
pub const SENTINEL: Val = Val::Int(i64::MAX - 1);

/// Slot marker for "element taken" in the Herlihy-Wing queue. Client
/// values must differ from it.
pub const TAKEN: Val = Val::Int(i64::MIN + 1);

/// Validates that `v` is usable as a data-structure element.
///
/// # Panics
///
/// Panics if `v` is null or collides with a reserved marker.
pub fn check_element(v: Val) {
    assert!(!v.is_null(), "Null is not a valid element");
    assert_ne!(v, SENTINEL, "SENTINEL is reserved");
    assert_ne!(v, TAKEN, "TAKEN is reserved");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_values_distinct() {
        assert_ne!(SENTINEL, TAKEN);
        check_element(Val::Int(0));
        check_element(Val::Int(-5));
    }

    #[test]
    #[should_panic(expected = "Null")]
    fn null_element_rejected() {
        check_element(Val::Null);
    }

    #[test]
    #[should_panic(expected = "SENTINEL")]
    fn sentinel_element_rejected() {
        check_element(SENTINEL);
    }
}
