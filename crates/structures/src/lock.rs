//! A test-and-set spinlock on the model, with its own event graph.
//!
//! The lock is both a useful client-side tool (its critical sections make
//! lhb *total* among the operations they protect — the §3.1 "weaker but
//! flexible" discussion: a client that adds enough external
//! synchronization recovers the strong, SC-style conditions) and a small
//! library with a checkable spec of its own:
//!
//! * `LOCK-ALTERNATION`: in commit order, each thread's `Acq` is followed
//!   by its own `Rel` before any other `Acq` commits — critical sections
//!   never overlap;
//! * `LOCK-HB`: each `Acq` happens-after the `Rel` it follows (the lock
//!   transfers views, so resources protected by it are race-free).

use compass::{EventId, Graph, LibObj, SpecResult, Violation};
use orc11::{Loc, Mode, ThreadCtx, ThreadId, Val};

/// Lock events.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LockEvent {
    /// The lock was acquired.
    Acq,
    /// The lock was released.
    Rel,
}

/// A test-and-set spinlock (see module docs).
#[derive(Debug)]
pub struct SpinLock {
    flag: Loc,
    obj: LibObj<LockEvent>,
}

impl SpinLock {
    /// Allocates an unlocked lock.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        SpinLock {
            flag: ctx.alloc_atomic("lock.flag", Val::Int(0)),
            obj: LibObj::new("spinlock"),
        }
    }

    /// The lock's library object.
    pub fn obj(&self) -> &LibObj<LockEvent> {
        &self.obj
    }

    /// Acquires the lock, blocking (in model terms) until it is free.
    /// Commit point: the successful acquire CAS.
    pub fn lock(&self, ctx: &mut ThreadCtx) -> EventId {
        loop {
            // Wait until the lock looks free, then race for it.
            ctx.read_await(self.flag, Mode::Relaxed, |v| v == Val::Int(0));
            let (res, ev) = ctx.cas_with(
                self.flag,
                Val::Int(0),
                Val::Int(1),
                Mode::Acquire,
                Mode::Relaxed,
                |r, gh| r.new.is_some().then(|| self.obj.commit(gh, LockEvent::Acq)),
            );
            if res.is_ok() {
                return ev.expect("committed");
            }
        }
    }

    /// Releases the lock. Commit point: the release store.
    ///
    /// # Panics
    ///
    /// The model aborts if called without holding the lock (the store
    /// still executes, but the spec check will flag the alternation).
    pub fn unlock(&self, ctx: &mut ThreadCtx) -> EventId {
        ctx.write_with(self.flag, Val::Int(0), Mode::Release, |gh| {
            self.obj.commit(gh, LockEvent::Rel)
        })
    }

    /// Runs `f` under the lock.
    pub fn with<R>(&self, ctx: &mut ThreadCtx, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }
}

/// `LockConsistent`: alternation + view transfer (see module docs).
pub fn check_lock_consistent(g: &Graph<LockEvent>) -> SpecResult {
    g.check_well_formed()?;
    let mut holder: Option<(EventId, ThreadId)> = None;
    let mut last_rel: Option<EventId> = None;
    for (id, ev) in g.iter() {
        match ev.ty {
            LockEvent::Acq => {
                if let Some((held, tid)) = holder {
                    return Err(Violation::new(
                        "LOCK-ALTERNATION",
                        format!("{id} acquired while {held} (thread {tid}) still holds the lock"),
                        vec![id, held],
                    ));
                }
                if let Some(rel) = last_rel {
                    if !g.lhb(rel, id) {
                        return Err(Violation::new(
                            "LOCK-HB",
                            format!("{id} does not happen-after the previous release {rel}"),
                            vec![id, rel],
                        ));
                    }
                }
                holder = Some((id, ev.tid));
            }
            LockEvent::Rel => match holder.take() {
                Some((acq, tid)) if tid == ev.tid => {
                    if !g.lhb(acq, id) {
                        return Err(Violation::new(
                            "LOCK-HB",
                            format!("release {id} does not happen-after its acquire {acq}"),
                            vec![id, acq],
                        ));
                    }
                    last_rel = Some(id);
                }
                Some((acq, tid)) => {
                    return Err(Violation::new(
                        "LOCK-ALTERNATION",
                        format!(
                            "{id} (thread {}) released a lock held by {acq} (thread {tid})",
                            ev.tid
                        ),
                        vec![id, acq],
                    ))
                }
                None => {
                    return Err(Violation::new(
                        "LOCK-ALTERNATION",
                        format!("{id} released an unheld lock"),
                        vec![id],
                    ))
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn mutual_exclusion_protects_nonatomics() {
        // A non-atomic counter incremented under the lock: race-free and
        // exact — the canonical mutual-exclusion demonstration.
        for seed in 0..80 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| {
                    let lock = SpinLock::new(ctx);
                    let counter = ctx.alloc("counter", Val::Int(0));
                    (lock, counter)
                },
                (0..3)
                    .map(|_| {
                        Box::new(|ctx: &mut ThreadCtx, (lock, counter): &(SpinLock, Loc)| {
                            lock.with(ctx, |ctx| {
                                let v = ctx.read(*counter, Mode::NonAtomic).expect_int();
                                ctx.write(*counter, Val::Int(v + 1), Mode::NonAtomic);
                            });
                        }) as BodyFn<'_, _, ()>
                    })
                    .collect(),
                |ctx, (lock, counter), _| {
                    check_lock_consistent(&lock.obj().snapshot()).unwrap();
                    ctx.read(*counter, Mode::NonAtomic)
                },
            );
            assert_eq!(
                out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}")),
                Val::Int(3),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn alternation_violation_detected_synthetically() {
        use std::collections::BTreeSet;
        let mut g: Graph<LockEvent> = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> {
            ids.iter().map(|&i| EventId::from_raw(i)).collect()
        };
        g.add_event(LockEvent::Acq, 1, 1, lv(&[0]));
        g.add_event(LockEvent::Acq, 2, 2, lv(&[1]));
        assert_eq!(
            check_lock_consistent(&g).unwrap_err().rule,
            "LOCK-ALTERNATION"
        );
    }

    #[test]
    fn unsynchronized_acquire_detected_synthetically() {
        use std::collections::BTreeSet;
        let mut g: Graph<LockEvent> = Graph::new();
        let lv = |ids: &[u64]| -> BTreeSet<EventId> {
            ids.iter().map(|&i| EventId::from_raw(i)).collect()
        };
        g.add_event(LockEvent::Acq, 1, 1, lv(&[0]));
        g.add_event(LockEvent::Rel, 1, 2, lv(&[0, 1]));
        // Second acquire does NOT happen-after the release.
        g.add_event(LockEvent::Acq, 2, 3, lv(&[2]));
        assert_eq!(check_lock_consistent(&g).unwrap_err().rule, "LOCK-HB");
    }
}
