//! The elimination stack (§4.1): a base stack composed with an exchanger,
//! with **no new atomic instructions**.
//!
//! `try_push` first tries the base stack's single-attempt push; on
//! `FAIL_RACE` it offers its value on the exchanger and succeeds if
//! matched with a pop offer ([`SENTINEL`](crate::SENTINEL)). `try_pop` is
//! symmetric. The interesting part is compositional event construction:
//!
//! * a base-stack push/pop/empty-pop commit also commits the corresponding
//!   elimination-stack event *in the same instruction*, via the base
//!   stack's [`StackHook`];
//! * a successful elimination commits an ES `Push(v)` and ES `Pop(v)`
//!   *atomically together* at the exchanger helper's commit, via the
//!   exchanger's [`ExchangeHook`] — the atomicity the paper identifies as
//!   crucial for re-establishing LIFO (no concurrent operation can observe
//!   the pushed-but-not-yet-popped intermediate state).
//!
//! The implementation uses only the public hooked APIs of the two
//! sub-libraries — the composition is modular, mirroring the paper's proof
//! that relies solely on the sub-libraries' Compass specs.

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::stack_spec::StackEvent;
use compass::{EventId, LibObj};
use orc11::{GhostHandle, ThreadCtx, Val};

use super::{ModelStack, StackHook, TreiberStack, TryPop};
use crate::exchanger::{ExchangeHook, Exchanger, MatchSide};
use crate::{check_element, SENTINEL};

/// The elimination stack on the model (see module docs).
#[derive(Debug)]
pub struct ElimStack {
    base: TreiberStack,
    ex: Exchanger,
    obj: LibObj<StackEvent>,
    /// How long an elimination offer waits for a partner.
    patience: u32,
    /// Ghost map: base-stack event → elimination-stack event.
    from_base: Mutex<HashMap<EventId, EventId>>,
    /// Ghost map: exchange event → elimination-stack event (for
    /// eliminated pairs).
    from_exchange: Mutex<HashMap<EventId, EventId>>,
}

/// Hook translating base-stack commits into ES commits.
struct BaseHook<'a>(&'a ElimStack);

impl std::fmt::Debug for BaseHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BaseHook")
    }
}

impl StackHook for BaseHook<'_> {
    fn on_push(&self, gh: &mut GhostHandle<'_>, base: EventId, v: Val) {
        let es = self.0.obj.commit(gh, StackEvent::Push(v));
        self.0.from_base.lock().insert(base, es);
    }

    fn on_pop(&self, gh: &mut GhostHandle<'_>, base: EventId, base_push: EventId, v: Val) {
        let es_push = *self
            .0
            .from_base
            .lock()
            .get(&base_push)
            .expect("base push has an ES event");
        let es = self.0.obj.commit_matched(gh, StackEvent::Pop(v), es_push);
        self.0.from_base.lock().insert(base, es);
    }

    fn on_empty(&self, gh: &mut GhostHandle<'_>, base: EventId) {
        let es = self.0.obj.commit(gh, StackEvent::EmpPop);
        self.0.from_base.lock().insert(base, es);
    }
}

/// Hook translating a successful elimination into an atomic ES push/pop
/// pair.
struct ElimHook<'a>(&'a ElimStack);

impl ExchangeHook for ElimHook<'_> {
    fn on_match(
        &self,
        gh: &mut GhostHandle<'_>,
        helpee: MatchSide,
        helper: MatchSide,
        ids: (EventId, EventId),
    ) {
        // Exactly one side must be a pop offer (SENTINEL); a push/push or
        // pop/pop match is not an elimination and commits nothing.
        let (pusher, popper, push_xid, pop_xid) =
            match (helpee.give == SENTINEL, helper.give == SENTINEL) {
                (false, true) => (helpee, helper, ids.0, ids.1),
                (true, false) => (helper, helpee, ids.1, ids.0),
                _ => return,
            };
        let v = pusher.give;
        let (es_push, es_pop) = self.0.obj.commit_pair(
            gh,
            (pusher.tid, StackEvent::Push(v)),
            (popper.tid, StackEvent::Pop(v)),
            &[(0, 1)],
        );
        let mut m = self.0.from_exchange.lock();
        m.insert(push_xid, es_push);
        m.insert(pop_xid, es_pop);
    }
}

impl ElimStack {
    /// Allocates an elimination stack; `patience` bounds how long an
    /// elimination offer waits.
    pub fn new(ctx: &mut ThreadCtx, patience: u32) -> Self {
        ElimStack {
            base: TreiberStack::new(ctx),
            ex: Exchanger::new(ctx),
            obj: LibObj::new("elim-stack"),
            patience,
            from_base: Mutex::new(HashMap::new()),
            from_exchange: Mutex::new(HashMap::new()),
        }
    }

    /// The base stack's library object (for checking the sub-library's own
    /// consistency).
    pub fn base_obj(&self) -> &LibObj<StackEvent> {
        self.base.obj()
    }

    /// The exchanger's library object.
    pub fn exchanger_obj(&self) -> &LibObj<compass::exchanger_spec::ExchangeEvent> {
        self.ex.obj()
    }

    /// `try_push(s, v)` of §4.1: base push first, elimination on
    /// contention. `None` is `FAIL_RACE` (no event committed).
    pub fn try_push(&self, ctx: &mut ThreadCtx, v: Val) -> Option<EventId> {
        check_element(v);
        if let Ok(base_ev) = self.base.try_push_hooked(ctx, v, &BaseHook(self)) {
            return Some(self.es_event_of_base(base_ev));
        }
        let (got, xid) = self
            .ex
            .exchange_hooked(ctx, v, self.patience, &ElimHook(self));
        match got {
            Some(g) if g == SENTINEL => Some(
                *self
                    .from_exchange
                    .lock()
                    .get(&xid)
                    .expect("eliminated push has an ES event"),
            ),
            _ => None,
        }
    }

    /// `try_pop(s)` of §4.1: base pop first, elimination on contention.
    pub fn try_pop(&self, ctx: &mut ThreadCtx) -> TryPop {
        match self.base.try_pop_hooked(ctx, &BaseHook(self)) {
            TryPop::Popped(v, base_ev) => TryPop::Popped(v, self.es_event_of_base(base_ev)),
            TryPop::Empty(base_ev) => TryPop::Empty(self.es_event_of_base(base_ev)),
            TryPop::Raced => {
                let (got, xid) =
                    self.ex
                        .exchange_hooked(ctx, SENTINEL, self.patience, &ElimHook(self));
                match got {
                    Some(v) if v != SENTINEL => TryPop::Popped(
                        v,
                        *self
                            .from_exchange
                            .lock()
                            .get(&xid)
                            .expect("eliminated pop has an ES event"),
                    ),
                    _ => TryPop::Raced,
                }
            }
        }
    }

    fn es_event_of_base(&self, base: EventId) -> EventId {
        *self
            .from_base
            .lock()
            .get(&base)
            .expect("hooked base commit recorded an ES event")
    }
}

impl ModelStack for ElimStack {
    fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        loop {
            if let Some(ev) = self.try_push(ctx, v) {
                return ev;
            }
        }
    }

    fn pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        loop {
            match self.try_pop(ctx) {
                TryPop::Popped(v, ev) => return (Some(v), ev),
                TryPop::Empty(ev) => return (None, ev),
                TryPop::Raced => continue,
            }
        }
    }

    fn obj(&self) -> &LibObj<StackEvent> {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::exchanger_spec::check_exchanger_consistent;
    use compass::history::{check_linearizable, StackInterp};
    use compass::stack_spec::check_stack_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    fn check_all(s: &ElimStack) {
        let g = s.obj().snapshot();
        check_stack_consistent(&g).expect("ES StackConsistent");
        check_linearizable(&g, &StackInterp).expect("ES linearizable");
        check_stack_consistent(&s.base_obj().snapshot()).expect("base StackConsistent");
        check_exchanger_consistent(&s.exchanger_obj().snapshot()).expect("ExchangerConsistent");
    }

    #[test]
    fn sequential_lifo() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| ElimStack::new(ctx, 2),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, s, _| {
                s.push(ctx, Val::Int(1));
                s.push(ctx, Val::Int(2));
                assert_eq!(s.pop(ctx).0, Some(Val::Int(2)));
                assert_eq!(s.pop(ctx).0, Some(Val::Int(1)));
                assert_eq!(s.pop(ctx).0, None);
                check_all(s);
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn concurrent_push_pop_consistent() {
        let mut eliminations = 0u64;
        for seed in 0..120 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| ElimStack::new(ctx, 3),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.push(ctx, Val::Int(10));
                        s.push(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.pop(ctx);
                        s.pop(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.push(ctx, Val::Int(30));
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| {
                    check_all(s);
                    // Count eliminated pairs: ES events not born from base.
                    let base_events = s.from_base.lock().len() as u64;
                    let es_events = s.obj().snapshot().len() as u64;
                    es_events - base_events
                },
            );
            eliminations += out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(
            eliminations > 0,
            "some seed should exercise the elimination path"
        );
    }
}
