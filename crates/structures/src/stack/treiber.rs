//! A relaxed Treiber stack.
//!
//! Per §3.3: "push operations use release CASes and successful pop
//! operations use acquire CASes, and thus there are only lhb edges between
//! matching push-pop pairs". This implementation satisfies the
//! `LAT_hb^hist` specs: every execution's graph admits a linearization
//! `to ⊇ lhb`, derivable from the modification order of the CASes on the
//! stack's head — which in this framework *is* the commit order (each
//! commit happens at a head CAS), so the witness is directly checkable.
//!
//! Commit points:
//! * **push** — the successful release CAS installing the node as head;
//! * **pop** — the successful acquire CAS swinging head to the successor;
//! * **empty pop** — the (acquire) read of head that returned null.

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::stack_spec::StackEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use super::{ModelStack, NoStackHook, StackHook, TryPop};
use crate::check_element;

const VAL: u32 = 0;
const NEXT: u32 = 1;

/// A Treiber stack on the model (see module docs).
#[derive(Debug)]
pub struct TreiberStack {
    head: Loc,
    obj: LibObj<StackEvent>,
    /// Ghost map: node → the push event that published it.
    push_events: Mutex<HashMap<Loc, EventId>>,
}

impl TreiberStack {
    /// Allocates an empty stack.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        let head = ctx.alloc("treiber.head", Val::Null);
        TreiberStack {
            head,
            obj: LibObj::new("treiber-stack"),
            push_events: Mutex::new(HashMap::new()),
        }
    }

    /// One push attempt with a client hook at the commit point.
    ///
    /// `node` is reused across retries by [`TreiberStack::push_hooked`];
    /// external callers pass `None` to allocate a fresh node.
    fn try_push_node(
        &self,
        ctx: &mut ThreadCtx,
        v: Val,
        node: Loc,
        hook: &dyn StackHook,
    ) -> Result<EventId, ()> {
        let h = ctx.read(self.head, Mode::Relaxed);
        // The node is unpublished: non-atomic writes are race-free.
        ctx.write(node.field(NEXT), h, Mode::NonAtomic);
        let (res, ev) = ctx.cas_with(
            self.head,
            h,
            Val::Loc(node),
            Mode::Release,
            Mode::Relaxed,
            |r, gh| {
                r.new.is_some().then(|| {
                    let id = self.obj.commit(gh, StackEvent::Push(v));
                    self.push_events.lock().insert(node, id);
                    hook.on_push(gh, id, v);
                    id
                })
            },
        );
        res.map(|_| ev.expect("committed")).map_err(|_| ())
    }

    /// Single-attempt push (`try_push'` of §4.1): `Err(())` is
    /// `FAIL_RACE` — no event committed.
    #[allow(clippy::result_unit_err)]
    pub fn try_push_hooked(
        &self,
        ctx: &mut ThreadCtx,
        v: Val,
        hook: &dyn StackHook,
    ) -> Result<EventId, ()> {
        check_element(v);
        let node = ctx.alloc_block("treiber.node", &[v, Val::Null]);
        self.try_push_node(ctx, v, node, hook)
    }

    /// Push, retrying on contention, with a client hook at the commit.
    pub fn push_hooked(&self, ctx: &mut ThreadCtx, v: Val, hook: &dyn StackHook) -> EventId {
        check_element(v);
        let node = ctx.alloc_block("treiber.node", &[v, Val::Null]);
        loop {
            if let Ok(ev) = self.try_push_node(ctx, v, node, hook) {
                return ev;
            }
        }
    }

    /// Single-attempt pop (`try_pop'` of §4.1) with a client hook.
    pub fn try_pop_hooked(&self, ctx: &mut ThreadCtx, hook: &dyn StackHook) -> TryPop {
        // Commit point of the empty case: this acquire read seeing null.
        let (h, emp) = ctx.read_with(self.head, Mode::Acquire, |v, gh| {
            v.is_null().then(|| {
                let id = self.obj.commit(gh, StackEvent::EmpPop);
                hook.on_empty(gh, id);
                id
            })
        });
        if let Some(ev) = emp {
            return TryPop::Empty(ev);
        }
        let node = h.expect_loc();
        // Race-free: the acquire read of head synchronized with the
        // pusher's release CAS, which published the node's fields.
        let v = ctx.read(node.field(VAL), Mode::NonAtomic);
        let next = ctx.read(node.field(NEXT), Mode::NonAtomic);
        let source = *self
            .push_events
            .lock()
            .get(&node)
            .expect("published node has a push event");
        let (res, ev) = ctx.cas_with(self.head, h, next, Mode::Acquire, Mode::Relaxed, |r, gh| {
            r.new.is_some().then(|| {
                let id = self.obj.commit_matched(gh, StackEvent::Pop(v), source);
                hook.on_pop(gh, id, source, v);
                id
            })
        });
        match res {
            Ok(_) => TryPop::Popped(v, ev.expect("committed")),
            Err(_) => TryPop::Raced,
        }
    }

    /// Pop, retrying on contention, with a client hook.
    pub fn pop_hooked(&self, ctx: &mut ThreadCtx, hook: &dyn StackHook) -> (Option<Val>, EventId) {
        loop {
            match self.try_pop_hooked(ctx, hook) {
                TryPop::Popped(v, ev) => return (Some(v), ev),
                TryPop::Empty(ev) => return (None, ev),
                TryPop::Raced => continue,
            }
        }
    }
}

impl ModelStack for TreiberStack {
    fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        self.push_hooked(ctx, v, &NoStackHook)
    }

    fn pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        self.pop_hooked(ctx, &NoStackHook)
    }

    fn obj(&self) -> &LibObj<StackEvent> {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::history::{check_linearizable, StackInterp};
    use compass::stack_spec::check_stack_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn sequential_lifo() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            TreiberStack::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, s, _| {
                assert_eq!(s.pop(ctx).0, None);
                s.push(ctx, Val::Int(1));
                s.push(ctx, Val::Int(2));
                assert_eq!(s.pop(ctx).0, Some(Val::Int(2)));
                assert_eq!(s.pop(ctx).0, Some(Val::Int(1)));
                assert_eq!(s.pop(ctx).0, None);
                let g = s.obj().snapshot();
                check_stack_consistent(&g).unwrap();
                check_linearizable(&g, &StackInterp).unwrap();
                g.len()
            },
        );
        assert_eq!(out.result.unwrap(), 6);
    }

    #[test]
    fn concurrent_runs_satisfy_lat_hist() {
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                TreiberStack::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &TreiberStack| {
                        s.push(ctx, Val::Int(10));
                        s.push(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &TreiberStack| {
                        s.push(ctx, Val::Int(20));
                        s.pop(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, s: &TreiberStack| {
                        s.pop(ctx);
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| {
                    let g = s.obj().snapshot();
                    check_stack_consistent(&g).expect("StackConsistent");
                    // LAT_hb^hist: a linearization respecting lhb exists.
                    check_linearizable(&g, &StackInterp).expect("linearizable history");
                },
            );
            out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn try_push_fails_only_under_contention() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            TreiberStack::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, s, _| {
                // No contention: single attempts always succeed.
                s.try_push_hooked(ctx, Val::Int(1), &NoStackHook).unwrap();
                match s.try_pop_hooked(ctx, &NoStackHook) {
                    TryPop::Popped(v, _) => assert_eq!(v, Val::Int(1)),
                    other => panic!("expected pop, got {other:?}"),
                }
            },
        );
        out.result.unwrap();
    }
}
