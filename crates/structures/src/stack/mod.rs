//! Model stacks: Treiber and the compositional elimination stack.

mod elimination;
mod treiber;

pub use elimination::ElimStack;
pub use treiber::TreiberStack;

use compass::stack_spec::StackEvent;
use compass::{EventId, LibObj};
use orc11::{GhostHandle, ThreadCtx, Val};

/// Outcome of a single-attempt pop.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryPop {
    /// Popped `v`, committing the given `Pop(v)` event.
    Popped(Val, EventId),
    /// Observed the stack as empty, committing the given `EmpPop` event.
    Empty(EventId),
    /// Lost a race (`FAIL_RACE`); no event was committed.
    Raced,
}

/// Client hook invoked *inside* a base stack operation's commit
/// instruction, right after the base event is committed.
///
/// This is how the elimination stack (§4.1) commits its own event in the
/// same instruction as the base stack's — the executable form of the
/// client getting logically atomic access at the commit point.
pub trait StackHook: Sync {
    /// A push of `v` committed as `base`.
    fn on_push(&self, gh: &mut GhostHandle<'_>, base: EventId, v: Val) {
        let _ = (gh, base, v);
    }
    /// A pop of `v` committed as `base`, matching the base push
    /// `base_push`.
    fn on_pop(&self, gh: &mut GhostHandle<'_>, base: EventId, base_push: EventId, v: Val) {
        let _ = (gh, base, base_push, v);
    }
    /// An empty pop committed as `base`.
    fn on_empty(&self, gh: &mut GhostHandle<'_>, base: EventId) {
        let _ = (gh, base);
    }
}

/// The trivial hook.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoStackHook;

impl StackHook for NoStackHook {}

/// A model stack producing a Compass event graph.
pub trait ModelStack: Sync {
    /// Pushes `v` (retrying on contention), committing a `Push(v)` event.
    fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId;

    /// Attempts one pop (retrying on contention), committing a `Pop(v)`
    /// or `EmpPop` event.
    fn pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId);

    /// The stack's library object.
    fn obj(&self) -> &LibObj<StackEvent>;
}
