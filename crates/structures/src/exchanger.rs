//! An offer/response exchanger with helping (§4.2).
//!
//! `exchange(x, v)` offers `v` and either returns a partner's value (both
//! threads succeed *together*) or fails (⊥, here `None`). Per the paper,
//! the two commits of a matched pair happen *atomically together* at the
//! **helper**'s commit instruction:
//!
//! * the offering thread (the eventual **helpee**) publishes an offer node
//!   with a release CAS on the slot — *no event yet*;
//! * a matching thread (the **helper**) CASes the offer's response cell;
//!   at that single instruction it commits the helpee's event and then its
//!   own ([`compass::LibObj::commit_pair`]), extending `so` with the
//!   symmetric pair — exactly HB-EXCHANGE's success case;
//! * the helpee later acquire-reads the response and only *learns about*
//!   the completed graph (its local postcondition), without committing
//!   anything.
//!
//! A thread that can neither install an offer nor match one commits a
//! failure event (`Exchange(v, ⊥)`) at a plain read.
//!
//! Synchronization: the offer is published by a release CAS and read by
//! the helper's acquire (failed-install or slot read); the response is
//! written by an acquire-release CAS and acquire-read by the helpee — so
//! the matched threads *synchronize with each other*, supporting resource
//! exchange.

use orc11::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use compass::exchanger_spec::ExchangeEvent;
use compass::{EventId, LibObj};
use orc11::{GhostHandle, Loc, Mode, ThreadCtx, ThreadId, Val};

const VAL: u32 = 0;
const RESP: u32 = 1;

/// Response-cell marker for a withdrawn offer. Offered values must differ
/// from it (and from null).
pub const CANCELLED: Val = Val::Int(i64::MIN + 2);

/// One side of a successful match, as seen by an [`ExchangeHook`].
#[derive(Copy, Clone, Debug)]
pub struct MatchSide {
    /// The thread that offered.
    pub tid: ThreadId,
    /// The value it offered.
    pub give: Val,
}

/// Client hook invoked *inside* the helper's commit instruction, right
/// after the pair of exchange events has been committed.
///
/// This is the executable form of the paper's logically atomic access for
/// clients: the elimination stack (§4.1) uses it to commit its own
/// push/pop pair in the same instruction, so the elimination is atomic.
pub trait ExchangeHook: Sync {
    /// Called once per successful match, by the helper thread.
    fn on_match(
        &self,
        gh: &mut GhostHandle<'_>,
        helpee: MatchSide,
        helper: MatchSide,
        ids: (EventId, EventId),
    ) {
        let _ = (gh, helpee, helper, ids);
    }
}

/// The trivial hook.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoExchangeHook;

impl ExchangeHook for NoExchangeHook {}

/// A single-slot exchanger on the model (see module docs).
#[derive(Debug)]
pub struct Exchanger {
    slot: Loc,
    obj: Arc<LibObj<ExchangeEvent>>,
    /// Ghost map: offer node → offering thread.
    offer_tids: Mutex<HashMap<Loc, ThreadId>>,
    /// Ghost map: offer node → the committed (helpee, helper) event pair,
    /// recorded by the helper for the helpee to retrieve.
    pair_events: Mutex<HashMap<Loc, (EventId, EventId)>>,
}

impl Exchanger {
    /// Allocates an exchanger with an empty slot.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        Self::with_obj(ctx, Arc::new(LibObj::new("exchanger")))
    }

    /// Allocates an exchanger slot committing into a shared library
    /// object — the building block of [`ExchangerArray`], where all slots
    /// form one logical exchanger with one event graph.
    pub fn with_obj(ctx: &mut ThreadCtx, obj: Arc<LibObj<ExchangeEvent>>) -> Self {
        let slot = ctx.alloc("xchg.slot", Val::Null);
        Exchanger {
            slot,
            obj,
            offer_tids: Mutex::new(HashMap::new()),
            pair_events: Mutex::new(HashMap::new()),
        }
    }

    /// The exchanger's library object.
    pub fn obj(&self) -> &LibObj<ExchangeEvent> {
        &self.obj
    }

    /// Attempts one exchange of `v`, spinning on an installed offer for up
    /// to `patience` reads before withdrawing.
    ///
    /// Returns `(Some(partner_value), event)` on success or
    /// `(None, event)` with a failure event.
    ///
    /// # Panics
    ///
    /// Panics if `v` is null or [`CANCELLED`].
    pub fn exchange(&self, ctx: &mut ThreadCtx, v: Val, patience: u32) -> (Option<Val>, EventId) {
        self.exchange_hooked(ctx, v, patience, &NoExchangeHook)
    }

    /// Like [`Exchanger::exchange`], invoking `hook` inside the helper's
    /// commit instruction of a successful match.
    pub fn exchange_hooked(
        &self,
        ctx: &mut ThreadCtx,
        v: Val,
        patience: u32,
        hook: &dyn ExchangeHook,
    ) -> (Option<Val>, EventId) {
        assert!(!v.is_null(), "cannot offer ⊥");
        assert_ne!(v, CANCELLED, "CANCELLED is reserved");
        let node = ctx.alloc_block("xchg.offer", &[v, Val::Null]);
        self.offer_tids.lock().insert(node, ctx.tid());

        // Try to install our offer.
        let install = ctx.cas(
            self.slot,
            Val::Null,
            Val::Loc(node),
            Mode::Release,
            Mode::Acquire,
        );
        match install {
            Ok(_) => self.await_partner(ctx, node, v, patience),
            Err(cur) => {
                if let Some(offer) = cur.as_loc() {
                    if let Some(result) = self.try_help(ctx, offer, v, hook) {
                        return result;
                    }
                }
                // Could neither install nor match: fail. The commit point
                // is this read of the slot.
                let (_, ev) = ctx.read_with(self.slot, Mode::Acquire, |_, gh| {
                    self.obj.commit(gh, ExchangeEvent { give: v, got: None })
                });
                (None, ev)
            }
        }
    }

    /// The derived *resource exchange* API (§4.2: "we have also used it to
    /// derive a spec that supports resource exchanges"): offers ownership
    /// of the memory at `buf`.
    ///
    /// On success the caller receives the partner's location — and,
    /// because matched exchanges synchronize with each other, the caller
    /// may immediately access the received location **non-atomically**,
    /// race-free (the partner's writes happen-before the exchange). See
    /// `tests/flexibility.rs` for the checked client.
    pub fn exchange_loc(
        &self,
        ctx: &mut ThreadCtx,
        buf: Loc,
        patience: u32,
    ) -> (Option<Loc>, EventId) {
        let (got, ev) = self.exchange(ctx, Val::Loc(buf), patience);
        (got.map(|v| v.expect_loc()), ev)
    }

    /// Offer installed: wait for a partner, withdrawing after `patience`
    /// unsuccessful reads.
    fn await_partner(
        &self,
        ctx: &mut ThreadCtx,
        node: Loc,
        v: Val,
        patience: u32,
    ) -> (Option<Val>, EventId) {
        for _ in 0..patience {
            let r = ctx.read(node.field(RESP), Mode::Acquire);
            if !r.is_null() {
                return self.complete_helpee(ctx, node, r);
            }
        }
        // Withdraw; the successful CAS is the failure commit point.
        let (res, ev) = ctx.cas_with(
            node.field(RESP),
            Val::Null,
            CANCELLED,
            Mode::AcqRel,
            Mode::Acquire,
            |r, gh| {
                r.new
                    .is_some()
                    .then(|| self.obj.commit(gh, ExchangeEvent { give: v, got: None }))
            },
        );
        match res {
            Ok(_) => {
                let _ = ctx.cas(
                    self.slot,
                    Val::Loc(node),
                    Val::Null,
                    Mode::Relaxed,
                    Mode::Relaxed,
                );
                (None, ev.expect("withdrawal committed"))
            }
            // A helper matched us at the last moment (the failed CAS's
            // acquire read synchronized with its commit).
            Err(partner_value) => self.complete_helpee(ctx, node, partner_value),
        }
    }

    /// Helpee completion: both commits were performed by the helper; we
    /// only collect the result and tidy the slot.
    fn complete_helpee(
        &self,
        ctx: &mut ThreadCtx,
        node: Loc,
        partner_value: Val,
    ) -> (Option<Val>, EventId) {
        let _ = ctx.cas(
            self.slot,
            Val::Loc(node),
            Val::Null,
            Mode::Relaxed,
            Mode::Relaxed,
        );
        let (helpee_ev, _helper_ev) = *self
            .pair_events
            .lock()
            .get(&node)
            .expect("matched offer has recorded pair events");
        (Some(partner_value), helpee_ev)
    }

    /// Helper path: try to match an installed offer. `None` means the
    /// offer was gone or already matched.
    fn try_help(
        &self,
        ctx: &mut ThreadCtx,
        offer: Loc,
        v: Val,
        hook: &dyn ExchangeHook,
    ) -> Option<(Option<Val>, EventId)> {
        // The failed install CAS acquire-read the offer's release, so this
        // non-atomic read is race-free.
        let their_v = ctx.read(offer.field(VAL), Mode::NonAtomic);
        let their_tid = *self.offer_tids.lock().get(&offer)?;
        let my_tid = ctx.tid();
        let (res, ev) = ctx.cas_with(
            offer.field(RESP),
            Val::Null,
            v,
            Mode::AcqRel,
            Mode::Acquire,
            |r, gh| {
                r.new.is_some().then(|| {
                    // The helper's commit: helpee's event first, then ours,
                    // with the symmetric so pair — atomically.
                    let (e1, e2) = self.obj.commit_pair(
                        gh,
                        (
                            their_tid,
                            ExchangeEvent {
                                give: their_v,
                                got: Some(v),
                            },
                        ),
                        (
                            my_tid,
                            ExchangeEvent {
                                give: v,
                                got: Some(their_v),
                            },
                        ),
                        &[(0, 1), (1, 0)],
                    );
                    self.pair_events.lock().insert(offer, (e1, e2));
                    hook.on_match(
                        gh,
                        MatchSide {
                            tid: their_tid,
                            give: their_v,
                        },
                        MatchSide {
                            tid: my_tid,
                            give: v,
                        },
                        (e1, e2),
                    );
                    e2
                })
            },
        );
        match res {
            Ok(_) => {
                let _ = ctx.cas(
                    self.slot,
                    Val::Loc(offer),
                    Val::Null,
                    Mode::Relaxed,
                    Mode::Relaxed,
                );
                Some((Some(their_v), ev.expect("helper committed")))
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::exchanger_spec::check_exchanger_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn two_threads_can_exchange() {
        let mut matched = 0u32;
        for seed in 0..80 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                Exchanger::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, x: &Exchanger| x.exchange(ctx, Val::Int(1), 3).0)
                        as BodyFn<'_, _, _>,
                    Box::new(|ctx: &mut ThreadCtx, x: &Exchanger| {
                        x.exchange(ctx, Val::Int(2), 3).0
                    }),
                ],
                |_, x, outs| {
                    let g = x.obj().snapshot();
                    check_exchanger_consistent(&g).expect("ExchangerConsistent");
                    // Either both matched (crossing values) or both failed.
                    match (outs[0], outs[1]) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a, Val::Int(2));
                            assert_eq!(b, Val::Int(1));
                            true
                        }
                        (None, _) | (_, None) => false,
                    }
                },
            );
            if out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}")) {
                matched += 1;
            }
        }
        assert!(matched > 0, "some seed should produce a match");
    }

    #[test]
    fn lone_exchanger_fails() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            Exchanger::new,
            vec![
                Box::new(|ctx: &mut ThreadCtx, x: &Exchanger| x.exchange(ctx, Val::Int(1), 2).0)
                    as BodyFn<'_, _, _>,
            ],
            |_, x, outs| {
                assert_eq!(outs[0], None);
                let g = x.obj().snapshot();
                check_exchanger_consistent(&g).unwrap();
                assert_eq!(g.len(), 1);
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn three_way_contention_stays_consistent() {
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                Exchanger::new,
                (0..3)
                    .map(|i| {
                        Box::new(move |ctx: &mut ThreadCtx, x: &Exchanger| {
                            x.exchange(ctx, Val::Int(10 + i), 2).0
                        }) as BodyFn<'_, _, _>
                    })
                    .collect(),
                |_, x, _| {
                    check_exchanger_consistent(&x.obj().snapshot()).expect("ExchangerConsistent");
                },
            );
            out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "cannot offer")]
    fn null_offer_rejected() {
        let _ = run_model(
            &Config::default(),
            random_strategy(0),
            Exchanger::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, x, _| {
                x.exchange(ctx, Val::Null, 1);
            },
        )
        .result
        .map_err(|e| panic!("{e}"));
    }
}

/// An *elimination array*: `k` exchanger slots forming one logical
/// exchanger with a single shared event graph (§4.1: "an exchanger
/// (which in turn can be implemented as an array of exchangers)").
///
/// Callers are spread across slots by thread id, which reduces contention
/// while preserving `ExchangerConsistent` of the union graph — matched
/// pairs always meet inside one slot, so the helping discipline is
/// unchanged.
#[derive(Debug)]
pub struct ExchangerArray {
    slots: Vec<Exchanger>,
    obj: Arc<LibObj<ExchangeEvent>>,
}

impl ExchangerArray {
    /// Allocates an array of `k` exchanger slots sharing one graph.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(ctx: &mut ThreadCtx, k: usize) -> Self {
        assert!(k > 0, "need at least one slot");
        let obj = Arc::new(LibObj::new("exchanger-array"));
        let slots = (0..k)
            .map(|_| Exchanger::with_obj(ctx, obj.clone()))
            .collect();
        ExchangerArray { slots, obj }
    }

    /// The shared library object (union graph of all slots).
    pub fn obj(&self) -> &LibObj<ExchangeEvent> {
        &self.obj
    }

    /// Attempts one exchange on the caller's slot.
    pub fn exchange(&self, ctx: &mut ThreadCtx, v: Val, patience: u32) -> (Option<Val>, EventId) {
        let slot = ctx.tid() % self.slots.len();
        self.slots[slot].exchange(ctx, v, patience)
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;
    use compass::exchanger_spec::check_exchanger_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn array_union_graph_is_consistent() {
        let mut matched = 0u64;
        for seed in 0..120 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| ExchangerArray::new(ctx, 2),
                (0..4)
                    .map(|i| {
                        Box::new(move |ctx: &mut ThreadCtx, x: &ExchangerArray| {
                            x.exchange(ctx, Val::Int(10 + i), 3).0
                        }) as BodyFn<'_, _, Option<Val>>
                    })
                    .collect(),
                |_, x, outs| {
                    let g = x.obj().snapshot();
                    check_exchanger_consistent(&g).expect("union ExchangerConsistent");
                    outs.iter().filter(|o| o.is_some()).count() as u64
                },
            );
            matched += out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(matched > 0, "some seeds should match");
        assert_eq!(matched % 2, 0, "matches come in pairs");
    }

    #[test]
    fn same_slot_threads_can_match() {
        // Threads 1 and 3 hash to the same slot of a 2-slot array.
        let out = run_model(
            &Config::default(),
            random_strategy(1),
            |ctx| ExchangerArray::new(ctx, 2),
            vec![
                Box::new(|ctx: &mut ThreadCtx, x: &ExchangerArray| {
                    x.exchange(ctx, Val::Int(1), 20).0
                }) as BodyFn<'_, _, Option<Val>>,
                Box::new(|_ctx: &mut ThreadCtx, _x: &ExchangerArray| None),
                Box::new(|ctx: &mut ThreadCtx, x: &ExchangerArray| {
                    x.exchange(ctx, Val::Int(3), 20).0
                }),
            ],
            |_, x, outs| {
                check_exchanger_consistent(&x.obj().snapshot()).unwrap();
                outs
            },
        );
        let outs = out.result.unwrap();
        if let (Some(a), Some(b)) = (outs[0], outs[2]) {
            assert_eq!(a, Val::Int(3));
            assert_eq!(b, Val::Int(1));
        }
    }
}
