//! The Chase-Lev work-stealing deque on the model — the paper's §6
//! future work, built on the framework.
//!
//! Follows the C11 formulation of Lê, Pop, Cohen & Zappa Nardelli
//! (PPoPP 2013): the owner pushes and pops at the *bottom*, thieves steal
//! from the *top*; `top` only ever grows and is advanced by CAS; the
//! owner resolves the last-element race with thieves by competing on that
//! same CAS; and **SC fences** order the owner's bottom-decrement against
//! its top-read, and a thief's top-read against its bottom-read — the
//! store-load orderings release/acquire cannot provide.
//!
//! The buffer is bounded and not recycled (indices grow monotonically up
//! to the total number of pushes), which sidesteps resizing without
//! changing the synchronization structure.
//!
//! Commit points:
//! * **push** — the release store of `bottom` (publication);
//! * **pop (plenty)** — the owner's read of the buffer slot;
//! * **pop (last element)** — the owner's winning CAS on `top`
//!   (a losing CAS commits `EmpPop`);
//! * **pop (empty)** — the owner's read of `top`;
//! * **steal** — the thief's winning CAS on `top` (a losing CAS commits
//!   nothing: `FAIL_RACE`);
//! * **empty steal** — the thief's read of `bottom`.
//!
//! [`ChaseLevDeque::new_weak_fences`] replaces the SC fences with
//! acquire-release ones — the famous fence bug: a pop and a steal can
//! both take the same element, which the `DEQUE-INJ` condition catches
//! (see `crate::buggy` tests).

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::deque_spec::DequeEvent;
use compass::{EventId, LibObj};
use orc11::{FenceMode, Loc, Mode, ThreadCtx, Val};

use crate::check_element;

/// Outcome of a steal attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Steal {
    /// Stole a value, committing the given `Steal` event.
    Stolen(Val, EventId),
    /// Observed the deque as empty, committing an `EmpSteal` event.
    Empty(EventId),
    /// Lost the race on `top`; no event committed.
    Raced,
}

/// A bounded Chase-Lev work-stealing deque on the model (see module
/// docs).
#[derive(Debug)]
pub struct ChaseLevDeque {
    top: Loc,
    bottom: Loc,
    buf: Loc,
    capacity: u32,
    fence: FenceMode,
    obj: LibObj<DequeEvent>,
    /// Ghost map: buffer index → the push event currently occupying it.
    push_events: Mutex<HashMap<i64, EventId>>,
}

impl ChaseLevDeque {
    /// Allocates a deque accepting up to `capacity` pushes in total.
    pub fn new(ctx: &mut ThreadCtx, capacity: u32) -> Self {
        Self::with_fence(ctx, capacity, FenceMode::SeqCst)
    }

    /// The fence-weakened variant (acquire-release instead of SC): unsound
    /// — exhibits the classic double-take bug. For negative testing.
    pub fn new_weak_fences(ctx: &mut ThreadCtx, capacity: u32) -> Self {
        Self::with_fence(ctx, capacity, FenceMode::AcqRel)
    }

    fn with_fence(ctx: &mut ThreadCtx, capacity: u32, fence: FenceMode) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let inits = vec![Val::Null; capacity as usize];
        ChaseLevDeque {
            top: ctx.alloc_atomic("cl.top", Val::Int(0)),
            bottom: ctx.alloc_atomic("cl.bottom", Val::Int(0)),
            buf: ctx.alloc_block_atomic("cl.buf", &inits),
            capacity,
            fence,
            obj: LibObj::new("chase-lev"),
            push_events: Mutex::new(HashMap::new()),
        }
    }

    /// The deque's library object.
    pub fn obj(&self) -> &LibObj<DequeEvent> {
        &self.obj
    }

    fn slot(&self, i: i64) -> Loc {
        assert!(
            (0..self.capacity as i64).contains(&i),
            "ChaseLevDeque capacity {} exceeded (index {i})",
            self.capacity
        );
        self.buf.field(i as u32)
    }

    /// Owner: pushes `v` at the bottom. Commit point: the release store of
    /// `bottom`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is invalid or capacity is exhausted.
    pub fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        let b = ctx.read(self.bottom, Mode::Relaxed).expect_int();
        ctx.write(self.slot(b), v, Mode::Relaxed);
        ctx.write_with(self.bottom, Val::Int(b + 1), Mode::Release, |gh| {
            let id = self.obj.commit(gh, DequeEvent::Push(v));
            self.push_events.lock().insert(b, id);
            id
        })
    }

    /// Owner: pops from the bottom. Returns the value and event, or the
    /// `EmpPop` event.
    pub fn pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        let b = ctx.read(self.bottom, Mode::Relaxed).expect_int() - 1;
        // Release store: thieves that acquire-read any bottom value learn
        // of every push committed so far (Lê et al. get the same effect
        // from the persistent release fences in push; a release store is
        // the direct model-level equivalent). The Compass checker caught
        // DEQUE-SO-LHB violations when this was relaxed.
        ctx.write(self.bottom, Val::Int(b), Mode::Release);
        ctx.fence(self.fence);
        let (t_val, emp) = ctx.read_with(self.top, Mode::Relaxed, |t, gh| {
            (t.expect_int() > b).then(|| self.obj.commit(gh, DequeEvent::EmpPop))
        });
        let t = t_val.expect_int();
        if let Some(ev) = emp {
            // Empty: restore bottom.
            ctx.write(self.bottom, Val::Int(b + 1), Mode::Release);
            return (None, ev);
        }
        if t < b {
            // Plenty: the element is safely ours. Commit at the slot read.
            let source = *self.push_events.lock().get(&b).expect("occupied slot");
            let (v, ev) = ctx.read_with(self.slot(b), Mode::Relaxed, |v, gh| {
                self.obj.commit_matched(gh, DequeEvent::Pop(v), source)
            });
            return (Some(v), ev);
        }
        // t == b: the last element; race thieves on top.
        let v = ctx.read(self.slot(b), Mode::Relaxed);
        let source = *self.push_events.lock().get(&b).expect("occupied slot");
        let (res, ev) = ctx.cas_with(
            self.top,
            Val::Int(t),
            Val::Int(t + 1),
            Mode::AcqRel,
            Mode::Acquire,
            |r, gh| {
                if r.new.is_some() {
                    self.obj.commit_matched(gh, DequeEvent::Pop(v), source)
                } else {
                    self.obj.commit(gh, DequeEvent::EmpPop)
                }
            },
        );
        ctx.write(self.bottom, Val::Int(b + 1), Mode::Release);
        match res {
            Ok(_) => (Some(v), ev),
            Err(_) => (None, ev),
        }
    }

    /// Thief: attempts one steal from the top.
    pub fn steal(&self, ctx: &mut ThreadCtx) -> Steal {
        let t = ctx.read(self.top, Mode::Acquire).expect_int();
        ctx.fence(self.fence);
        let (b_val, emp) = ctx.read_with(self.bottom, Mode::Acquire, |b, gh| {
            (t >= b.expect_int()).then(|| self.obj.commit(gh, DequeEvent::EmpSteal))
        });
        if let Some(ev) = emp {
            return Steal::Empty(ev);
        }
        let _b = b_val.expect_int();
        let v = ctx.read(self.slot(t), Mode::Relaxed);
        let source = *self.push_events.lock().get(&t).expect("occupied slot");
        let (res, ev) = ctx.cas_with(
            self.top,
            Val::Int(t),
            Val::Int(t + 1),
            Mode::AcqRel,
            Mode::Acquire,
            |r, gh| {
                r.new
                    .is_some()
                    .then(|| self.obj.commit_matched(gh, DequeEvent::Steal(v), source))
            },
        );
        match res {
            Ok(_) => Steal::Stolen(v, ev.expect("committed")),
            Err(_) => Steal::Raced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::deque_spec::{check_deque_consistent, DequeInterp};
    use compass::history::{find_linearization, validate_linearization};
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn owner_lifo_sequentially() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| ChaseLevDeque::new(ctx, 8),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, d, _| {
                assert_eq!(d.pop(ctx).0, None);
                d.push(ctx, Val::Int(1));
                d.push(ctx, Val::Int(2));
                assert_eq!(d.pop(ctx).0, Some(Val::Int(2)));
                d.push(ctx, Val::Int(3));
                assert_eq!(d.pop(ctx).0, Some(Val::Int(3)));
                assert_eq!(d.pop(ctx).0, Some(Val::Int(1)));
                assert_eq!(d.pop(ctx).0, None);
                check_deque_consistent(&d.obj().snapshot()).unwrap();
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn steal_takes_oldest() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| ChaseLevDeque::new(ctx, 8),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, d, _| {
                d.push(ctx, Val::Int(1));
                d.push(ctx, Val::Int(2));
                match d.steal(ctx) {
                    Steal::Stolen(v, _) => assert_eq!(v, Val::Int(1)),
                    other => panic!("{other:?}"),
                }
                assert_eq!(d.pop(ctx).0, Some(Val::Int(2)));
                check_deque_consistent(&d.obj().snapshot()).unwrap();
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn concurrent_owner_and_thieves_consistent() {
        for seed in 0..200 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| ChaseLevDeque::new(ctx, 8),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.push(ctx, Val::Int(1));
                        d.push(ctx, Val::Int(2));
                        d.pop(ctx);
                        d.pop(ctx);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                ],
                |_, d, _| d.obj().snapshot(),
            );
            let g = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_deque_consistent(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // LAT_hist on the mutator subgraph (EmpSteal is advisory and
            // not linearizable against the naive sequential deque).
            let m = compass::deque_spec::mutator_subgraph(&g);
            let to = find_linearization(&m, &DequeInterp, &[])
                .unwrap_or_else(|| panic!("seed {seed}: no linearization\n{m}"));
            validate_linearization(&m, &DequeInterp, &to).unwrap();
        }
    }

    #[test]
    fn weak_fences_produce_double_takes() {
        // The classic Chase-Lev fence bug: without SC fences, a pop and a
        // steal can take the same element. DEQUE-INJ (or MATCHES) catches
        // it in some interleaving.
        // PCT exploration: the double-take needs three ordering
        // constraints, which uniform random scheduling hits only ~0.1%
        // of the time; PCT with depth 3 finds it ~4% of the time.
        let mut violations = 0;
        for seed in 0..600 {
            let out = run_model(
                &Config::default(),
                orc11::pct_strategy(seed, 3, 40),
                |ctx| ChaseLevDeque::new_weak_fences(ctx, 8),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.push(ctx, Val::Int(1));
                        d.push(ctx, Val::Int(2));
                        d.pop(ctx);
                        d.pop(ctx);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                ],
                |_, d, _| d.obj().snapshot(),
            );
            let g = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if check_deque_consistent(&g).is_err() {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "weak fences should exhibit the double-take bug under exploration \
             (it is rare: ~0.1% of random schedules)"
        );
    }
}
