//! A bounded single-producer single-consumer ring buffer.
//!
//! This is the shape of structure Cosmo was demonstrated on (Mével &
//! Jourdan, ICFP 2021, cited in §1 of the paper): a bounded queue whose
//! producer and consumer synchronize purely through the release/acquire
//! handoff of two counters — the buffer slots themselves are
//! **non-atomic**, their race-freedom being exactly the view transfer the
//! `LAT_so^abs` specs capture.
//!
//! Commit points: the producer's release store of `tail` (enqueue), the
//! consumer's release store of `head` (dequeue), and the consumer's
//! acquire read of `tail` that observed emptiness (empty dequeue).

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::queue_spec::QueueEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use crate::check_element;

/// A bounded SPSC ring buffer on the model (see module docs).
///
/// The single-producer/single-consumer discipline is the caller's
/// contract (as in the real structure); violating it shows up as model
/// data races on the non-atomic slots.
#[derive(Debug)]
pub struct SpscRing {
    head: Loc,
    tail: Loc,
    buf: Loc,
    capacity: i64,
    obj: LibObj<QueueEvent>,
    enq_events: Mutex<HashMap<i64, EventId>>,
}

impl SpscRing {
    /// Allocates an empty ring of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(ctx: &mut ThreadCtx, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let inits = vec![Val::Null; capacity as usize];
        SpscRing {
            head: ctx.alloc_atomic("spsc.head", Val::Int(0)),
            tail: ctx.alloc_atomic("spsc.tail", Val::Int(0)),
            buf: ctx.alloc_block("spsc.buf", &inits),
            capacity: capacity as i64,
            obj: LibObj::new("spsc-ring"),
            enq_events: Mutex::new(HashMap::new()),
        }
    }

    /// The ring's library object.
    pub fn obj(&self) -> &LibObj<QueueEvent> {
        &self.obj
    }

    fn slot(&self, i: i64) -> Loc {
        self.buf.field((i % self.capacity) as u32)
    }

    /// Producer only: tries to enqueue `v`.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` (no event) if the ring is full.
    pub fn try_enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> Result<EventId, Val> {
        check_element(v);
        let t = ctx.read(self.tail, Mode::Relaxed).expect_int();
        // Acquire: we must see the consumer's head advance before reusing
        // a slot (and with it the consumer's last read of that slot, so
        // our non-atomic overwrite is race-free).
        let h = ctx.read(self.head, Mode::Acquire).expect_int();
        if t - h == self.capacity {
            return Err(v);
        }
        ctx.write(self.slot(t), v, Mode::NonAtomic);
        let ev = ctx.write_with(self.tail, Val::Int(t + 1), Mode::Release, |gh| {
            let id = self.obj.commit(gh, QueueEvent::Enq(v));
            self.enq_events.lock().insert(t, id);
            id
        });
        Ok(ev)
    }

    /// Consumer only: tries to dequeue.
    pub fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        let h = ctx.read(self.head, Mode::Relaxed).expect_int();
        // Commit point of the empty case: this acquire read of tail.
        let (t_val, emp) = ctx.read_with(self.tail, Mode::Acquire, |t, gh| {
            (t.expect_int() == h).then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
        });
        if let Some(ev) = emp {
            return (None, ev);
        }
        debug_assert!(t_val.expect_int() > h);
        let v = ctx.read(self.slot(h), Mode::NonAtomic);
        let source = *self.enq_events.lock().get(&h).expect("occupied slot");
        let ev = ctx.write_with(self.head, Val::Int(h + 1), Mode::Release, |gh| {
            self.obj.commit_matched(gh, QueueEvent::Deq(v), source)
        });
        (Some(v), ev)
    }

    /// Consumer only: dequeues, blocking (in model terms) until an
    /// element is available.
    pub fn dequeue_await(&self, ctx: &mut ThreadCtx) -> (Val, EventId) {
        let h = ctx.read(self.head, Mode::Relaxed).expect_int();
        ctx.read_await(self.tail, Mode::Acquire, move |t| t.expect_int() > h);
        let v = ctx.read(self.slot(h), Mode::NonAtomic);
        let source = *self.enq_events.lock().get(&h).expect("occupied slot");
        let ev = ctx.write_with(self.head, Val::Int(h + 1), Mode::Release, |gh| {
            self.obj.commit_matched(gh, QueueEvent::Deq(v), source)
        });
        (v, ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::abs::replay_commit_order;
    use compass::history::QueueInterp;
    use compass::queue_spec::check_queue_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn fifo_and_capacity_sequentially() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| SpscRing::new(ctx, 2),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, q, _| {
                assert_eq!(q.try_dequeue(ctx).0, None);
                q.try_enqueue(ctx, Val::Int(1)).unwrap();
                q.try_enqueue(ctx, Val::Int(2)).unwrap();
                assert_eq!(q.try_enqueue(ctx, Val::Int(3)), Err(Val::Int(3)), "full");
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(1)));
                // Slot reuse after the consumer advanced.
                q.try_enqueue(ctx, Val::Int(3)).unwrap();
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(2)));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(3)));
                assert_eq!(q.try_dequeue(ctx).0, None);
                let g = q.obj().snapshot();
                check_queue_consistent(&g).unwrap();
                replay_commit_order(&g, &QueueInterp).unwrap();
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn concurrent_producer_consumer_is_fifo_and_race_free() {
        for seed in 0..120 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| SpscRing::new(ctx, 2),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &SpscRing| {
                        // Bounded producer: retry on full.
                        for i in 1..=4i64 {
                            while q.try_enqueue(ctx, Val::Int(i)).is_err() {}
                        }
                        Vec::new()
                    }) as BodyFn<'_, _, Vec<Val>>,
                    Box::new(|ctx: &mut ThreadCtx, q: &SpscRing| {
                        (0..4).map(|_| q.dequeue_await(ctx).0).collect()
                    }),
                ],
                |_, q, outs| {
                    let g = q.obj().snapshot();
                    check_queue_consistent(&g).expect("QueueConsistent");
                    replay_commit_order(&g, &QueueInterp).expect("LAT_hb^abs");
                    outs[1].clone()
                },
            );
            let consumed = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                consumed,
                (1..=4).map(Val::Int).collect::<Vec<_>>(),
                "seed {seed}: FIFO through the ring"
            );
        }
    }

    #[test]
    fn full_ring_never_overwrites_live_elements() {
        // Capacity 1: the producer can only run one element ahead.
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| SpscRing::new(ctx, 1),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &SpscRing| {
                        for i in 1..=3i64 {
                            while q.try_enqueue(ctx, Val::Int(i)).is_err() {}
                        }
                        Vec::new()
                    }) as BodyFn<'_, _, Vec<Val>>,
                    Box::new(|ctx: &mut ThreadCtx, q: &SpscRing| {
                        (0..3).map(|_| q.dequeue_await(ctx).0).collect()
                    }),
                ],
                |_, q, outs| {
                    check_queue_consistent(&q.obj().snapshot()).unwrap();
                    outs[1].clone()
                },
            );
            let consumed = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(consumed, (1..=3).map(Val::Int).collect::<Vec<_>>());
        }
    }
}
