//! The Michael-Scott queue, purely release/acquire.
//!
//! This is the implementation the paper verifies against the strong
//! `LAT_hb^abs` specs (§3.2): "a purely release-acquire implementation of
//! the Michael-Scott queue satisfies the `LAT_hb^abs` specs for queues".
//! All atomic reads are acquire, all atomic writes are release, and RMWs
//! are acquire-release, which is enough synchronization to construct the
//! abstract state at the commit points — checkable here as
//! [`compass::abs::replay_commit_order`] succeeding on every execution.
//!
//! Commit points:
//! * **enqueue** — the successful release CAS linking the new node into
//!   `tail.next`;
//! * **dequeue** — the successful acquire-release CAS swinging `head`;
//! * **empty dequeue** — the acquire read of `head.next` that returned
//!   null.

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::queue_spec::QueueEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use super::ModelQueue;
use crate::check_element;

const VAL: u32 = 0;
const NEXT: u32 = 1;

/// A Michael-Scott queue on the model (see module docs).
#[derive(Debug)]
pub struct MsQueue {
    head: Loc,
    tail: Loc,
    obj: LibObj<QueueEvent>,
    /// Ghost map: node → the enqueue event that published it.
    enq_events: Mutex<HashMap<Loc, EventId>>,
}

impl MsQueue {
    /// Allocates an empty queue (one sentinel node).
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        let sentinel = ctx.alloc_block("ms.sentinel", &[Val::Null, Val::Null]);
        let head = ctx.alloc("ms.head", Val::Loc(sentinel));
        let tail = ctx.alloc("ms.tail", Val::Loc(sentinel));
        MsQueue {
            head,
            tail,
            obj: LibObj::new("ms-queue"),
            enq_events: Mutex::new(HashMap::new()),
        }
    }

    /// Dequeues, blocking (in model terms) until an element is available.
    ///
    /// Intended for low-contention consumers (e.g. the single consumer of
    /// the SPSC client, §3.2) — under multi-consumer contention prefer
    /// [`ModelQueue::try_dequeue`] in a retry loop.
    pub fn dequeue_await(&self, ctx: &mut ThreadCtx) -> (Val, EventId) {
        loop {
            let head = ctx.read(self.head, Mode::Acquire).expect_loc();
            // Block until this node has a successor.
            let next = ctx.read_await(head.field(NEXT), Mode::Acquire, |v| !v.is_null());
            let node = next.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::NonAtomic);
            let source = self.enq_event_of(node);
            let (res, ev) = ctx.cas_with(
                self.head,
                Val::Loc(head),
                Val::Loc(node),
                Mode::AcqRel,
                Mode::Acquire,
                |r, gh| {
                    r.new
                        .is_some()
                        .then(|| self.obj.commit_matched(gh, QueueEvent::Deq(v), source))
                },
            );
            if res.is_ok() {
                return (v, ev.expect("successful dequeue committed"));
            }
        }
    }

    fn enq_event_of(&self, node: Loc) -> EventId {
        *self
            .enq_events
            .lock()
            .get(&node)
            .expect("published node has a recorded enqueue event")
    }
}

impl ModelQueue for MsQueue {
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        let node = ctx.alloc_block("ms.node", &[v, Val::Null]);
        loop {
            let tail = ctx.read(self.tail, Mode::Acquire).expect_loc();
            let next = ctx.read(tail.field(NEXT), Mode::Acquire);
            if let Some(succ) = next.as_loc() {
                // Tail is lagging: help swing it and retry.
                let _ = ctx.cas(
                    self.tail,
                    Val::Loc(tail),
                    Val::Loc(succ),
                    Mode::Release,
                    Mode::Relaxed,
                );
                continue;
            }
            // Commit point: the release CAS linking the node.
            let (res, ev) = ctx.cas_with(
                tail.field(NEXT),
                Val::Null,
                Val::Loc(node),
                Mode::Release,
                Mode::Relaxed,
                |r, gh| {
                    r.new.is_some().then(|| {
                        let id = self.obj.commit(gh, QueueEvent::Enq(v));
                        self.enq_events.lock().insert(node, id);
                        id
                    })
                },
            );
            if res.is_ok() {
                // Swing tail (best effort).
                let _ = ctx.cas(
                    self.tail,
                    Val::Loc(tail),
                    Val::Loc(node),
                    Mode::Release,
                    Mode::Relaxed,
                );
                return ev.expect("successful link committed");
            }
        }
    }

    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        loop {
            let head = ctx.read(self.head, Mode::Acquire).expect_loc();
            // Commit point of the empty case: this acquire read seeing null.
            let (next, emp) = ctx.read_with(head.field(NEXT), Mode::Acquire, |v, gh| {
                v.is_null().then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
            });
            if let Some(ev) = emp {
                return (None, ev);
            }
            let node = next.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::NonAtomic);
            let source = self.enq_event_of(node);
            let (res, ev) = ctx.cas_with(
                self.head,
                Val::Loc(head),
                Val::Loc(node),
                Mode::AcqRel,
                Mode::Acquire,
                |r, gh| {
                    r.new
                        .is_some()
                        .then(|| self.obj.commit_matched(gh, QueueEvent::Deq(v), source))
                },
            );
            if res.is_ok() {
                return (Some(v), ev.expect("successful dequeue committed"));
            }
        }
    }

    fn obj(&self) -> &LibObj<QueueEvent> {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::abs::replay_commit_order;
    use compass::history::QueueInterp;
    use compass::queue_spec::check_queue_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn sequential_fifo() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            MsQueue::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, q, _| {
                q.enqueue(ctx, Val::Int(1));
                q.enqueue(ctx, Val::Int(2));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(1)));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(2)));
                assert_eq!(q.try_dequeue(ctx).0, None);
                let g = q.obj().snapshot();
                check_queue_consistent(&g).unwrap();
                replay_commit_order(&g, &QueueInterp).unwrap();
                g.len()
            },
        );
        assert_eq!(out.result.unwrap(), 5);
    }

    #[test]
    fn concurrent_producers_consumers_are_consistent() {
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                MsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                        q.enqueue(ctx, Val::Int(10));
                        q.enqueue(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                        q.enqueue(ctx, Val::Int(20));
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                        q.try_dequeue(ctx);
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| {
                    let g = q.obj().snapshot();
                    check_queue_consistent(&g).expect("QueueConsistent");
                    // LAT_hb^abs: the commit order is a linearization.
                    replay_commit_order(&g, &QueueInterp).expect("abs replay");
                },
            );
            out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn dequeue_await_blocks_until_enqueue() {
        let out = run_model(
            &Config::default(),
            random_strategy(3),
            MsQueue::new,
            vec![
                Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| {
                    q.enqueue(ctx, Val::Int(7));
                    Val::Null
                }) as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, q: &MsQueue| q.dequeue_await(ctx).0),
            ],
            |_, q, outs| {
                check_queue_consistent(&q.obj().snapshot()).unwrap();
                outs[1]
            },
        );
        assert_eq!(out.result.unwrap(), Val::Int(7));
    }
}
