//! A coarse-grained, lock-based queue — the sequential-specs reference
//! point (§2.1) and the E2 control row.
//!
//! Everything inside the critical section is **non-atomic**: the
//! spinlock's release/acquire handoff transfers the views (and logical
//! views) between operations, which is exactly why the implementation is
//! race-free and trivially satisfies every spec style, including
//! `LAT_hb^abs` — at the cost of all concurrency.

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::queue_spec::QueueEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use super::ModelQueue;
use crate::check_element;
use crate::lock::SpinLock;

const VAL: u32 = 0;
const NEXT: u32 = 1;

/// A lock-protected linked queue on the model (see module docs).
#[derive(Debug)]
pub struct LockQueue {
    lock: SpinLock,
    head: Loc,
    tail: Loc,
    obj: LibObj<QueueEvent>,
    enq_events: Mutex<HashMap<Loc, EventId>>,
}

impl LockQueue {
    /// Allocates an empty queue.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        let sentinel = ctx.alloc_block("lq.sentinel", &[Val::Null, Val::Null]);
        LockQueue {
            lock: SpinLock::new(ctx),
            head: ctx.alloc("lq.head", Val::Loc(sentinel)),
            tail: ctx.alloc("lq.tail", Val::Loc(sentinel)),
            obj: LibObj::new("lock-queue"),
            enq_events: Mutex::new(HashMap::new()),
        }
    }
}

impl ModelQueue for LockQueue {
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        self.lock.with(ctx, |ctx| {
            let node = ctx.alloc_block("lq.node", &[v, Val::Null]);
            let tail = ctx.read(self.tail, Mode::NonAtomic).expect_loc();
            // Commit point: linking the node (non-atomic — we hold the
            // lock).
            let ev = ctx.write_with(tail.field(NEXT), Val::Loc(node), Mode::NonAtomic, |gh| {
                let id = self.obj.commit(gh, QueueEvent::Enq(v));
                self.enq_events.lock().insert(node, id);
                id
            });
            ctx.write(self.tail, Val::Loc(node), Mode::NonAtomic);
            ev
        })
    }

    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        self.lock.with(ctx, |ctx| {
            let head = ctx.read(self.head, Mode::NonAtomic).expect_loc();
            let (next, emp) = ctx.read_with(head.field(NEXT), Mode::NonAtomic, |v, gh| {
                v.is_null().then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
            });
            if let Some(ev) = emp {
                return (None, ev);
            }
            let node = next.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::NonAtomic);
            let source = *self.enq_events.lock().get(&node).expect("linked node");
            let ev = ctx.write_with(self.head, Val::Loc(node), Mode::NonAtomic, |gh| {
                self.obj.commit_matched(gh, QueueEvent::Deq(v), source)
            });
            (Some(v), ev)
        })
    }

    fn obj(&self) -> &LibObj<QueueEvent> {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::abs::replay_commit_order;
    use compass::history::QueueInterp;
    use compass::queue_spec::{check_queue_consistent, check_queue_consistent_prefixes};
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn sequential_fifo() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            LockQueue::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, q, _| {
                q.enqueue(ctx, Val::Int(1));
                q.enqueue(ctx, Val::Int(2));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(1)));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(2)));
                assert_eq!(q.try_dequeue(ctx).0, None);
                check_queue_consistent(&q.obj().snapshot()).unwrap();
            },
        );
        out.result.unwrap();
    }

    #[test]
    fn concurrent_use_is_race_free_and_strongly_consistent() {
        // Non-atomic internals, yet no data races: the lock transfers the
        // views. And the commit order is always a sequential history
        // (trivially: operations are mutually exclusive) — even the empty
        // dequeues are truly empty at their commit points.
        for seed in 0..80 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                LockQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &LockQueue| {
                        q.enqueue(ctx, Val::Int(1));
                        q.enqueue(ctx, Val::Int(2));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &LockQueue| {
                        q.try_dequeue(ctx);
                        q.try_dequeue(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &LockQueue| {
                        q.enqueue(ctx, Val::Int(3));
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            );
            let g = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_queue_consistent_prefixes(&g).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            replay_commit_order(&g, &QueueInterp).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // Under mutual exclusion, even the SC-strong empty condition
            // holds: replay WITH EmpDeq events enabled.
            let mut st = std::collections::VecDeque::new();
            for (_, ev) in g.iter() {
                match ev.ty {
                    QueueEvent::Enq(v) => st.push_back(v),
                    QueueEvent::Deq(v) => assert_eq!(st.pop_front(), Some(v)),
                    QueueEvent::EmpDeq => assert!(st.is_empty(), "seed {seed}"),
                }
            }
        }
    }
}
