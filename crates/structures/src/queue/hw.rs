//! A relaxed Herlihy-Wing queue.
//!
//! The bounded array-based queue of Herlihy & Wing [1990], in the relaxed
//! variant the paper verifies (§3.1–3.2, "similar to the weak version in
//! Yacovet"): *enqueues use release operations and dequeues use acquire
//! ones*, and nothing synchronizes enqueues with enqueues or dequeues with
//! dequeues beyond that.
//!
//! The paper's point (§3.2) is that this implementation satisfies the
//! graph-based `LAT_hb` specs — including QUEUE-FIFO and QUEUE-EMPDEQ —
//! but constructing the abstract state *at commit points* is extremely
//! hard ("would require delicate reordering of commit points on the fly
//! ... prophecy variables"). Executable analogue: on some executions
//! [`compass::abs::replay_commit_order`] fails while
//! [`compass::queue_spec::check_queue_consistent`] passes (experiment E2).
//!
//! Commit points:
//! * **enqueue** — the release write of the value into its slot;
//! * **dequeue** — the successful acquire-release CAS marking the slot
//!   [`TAKEN`](crate::TAKEN);
//! * **empty dequeue** — the final read of the scan (or the initial
//!   acquire read of `tail` when the range is empty).

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::queue_spec::QueueEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use super::ModelQueue;
use crate::{check_element, TAKEN};

/// A bounded Herlihy-Wing queue on the model (see module docs).
#[derive(Debug)]
pub struct HwQueue {
    tail: Loc,
    slots: Loc,
    capacity: u32,
    obj: LibObj<QueueEvent>,
    /// Mode of the tail FAA (AcqRel normally; Relaxed in the buggy
    /// variant).
    faa_mode: Mode,
    /// Mode of the dequeuer's tail read (Acquire normally).
    tail_read_mode: Mode,
    /// Ghost map: slot index → the enqueue event that filled it.
    enq_events: Mutex<HashMap<u32, EventId>>,
}

impl HwQueue {
    /// Allocates an empty queue with room for `capacity` enqueues in
    /// total (the array is not recycled, as in the original algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, and (at enqueue time) if more than
    /// `capacity` enqueues are attempted.
    pub fn new(ctx: &mut ThreadCtx, capacity: u32) -> Self {
        Self::with_tail_modes(ctx, capacity, Mode::AcqRel, Mode::Acquire)
    }

    /// Constructor with explicit tail synchronization modes — used by
    /// [`crate::buggy::RelaxedHwQueue`] to weaken the tail to relaxed,
    /// which breaks QUEUE-FIFO under externally ordered producers.
    pub(crate) fn with_tail_modes(
        ctx: &mut ThreadCtx,
        capacity: u32,
        faa_mode: Mode,
        tail_read_mode: Mode,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let inits = vec![Val::Null; capacity as usize];
        let slots = ctx.alloc_block_atomic("hw.slots", &inits);
        let tail = ctx.alloc_atomic("hw.tail", Val::Int(0));
        HwQueue {
            tail,
            slots,
            capacity,
            obj: LibObj::new("hw-queue"),
            faa_mode,
            tail_read_mode,
            enq_events: Mutex::new(HashMap::new()),
        }
    }

    fn slot(&self, i: u32) -> Loc {
        self.slots.field(i)
    }

    fn enq_event_of(&self, i: u32) -> EventId {
        *self
            .enq_events
            .lock()
            .get(&i)
            .expect("written slot has a recorded enqueue event")
    }
}

impl ModelQueue for HwQueue {
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        // Reserve a slot. The FAA is an acquire-release RMW: its release
        // half (plus RMW release sequences) is what lets a dequeuer that
        // acquire-reads `tail` see every slot filled by enqueues that
        // happen-before its call — the synchronization QUEUE-FIFO needs.
        let t = ctx.fetch_add(self.tail, 1, self.faa_mode).expect_int();
        assert!(
            (t as u64) < self.capacity as u64,
            "HwQueue capacity {} exceeded",
            self.capacity
        );
        let i = t as u32;
        // Commit point: the release write of the value.
        ctx.write_with(self.slot(i), v, Mode::Release, |gh| {
            let id = self.obj.commit(gh, QueueEvent::Enq(v));
            self.enq_events.lock().insert(i, id);
            id
        })
    }

    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        // Read the scan range; when it is empty this read is the
        // empty-dequeue commit point.
        let (n_val, emp) = ctx.read_with(self.tail, self.tail_read_mode, |v, gh| {
            (v == Val::Int(0)).then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
        });
        if let Some(ev) = emp {
            return (None, ev);
        }
        let n = (n_val.expect_int() as u64).min(self.capacity as u64) as u32;
        for i in 0..n {
            let last = i + 1 == n;
            // Acquire read of the slot; if the scan ends here empty, this
            // read is the empty-dequeue commit point.
            let (v, emp) = ctx.read_with(self.slot(i), Mode::Acquire, |v, gh| {
                ((v.is_null() || v == TAKEN) && last)
                    .then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
            });
            if v.is_null() || v == TAKEN {
                if let Some(ev) = emp {
                    return (None, ev);
                }
                continue;
            }
            // Take it: the successful CAS is the dequeue commit point; a
            // failed CAS on the last slot means everything was taken and
            // is the empty-dequeue commit point.
            //
            // Mode: Acquire, NOT AcqRel — "dequeues use acquire ones"
            // (§3.1). A releasing TAKEN write would publish the
            // dequeuer's ghost (its M₀ may mention enqueues outside a
            // stale scan range), and a later scanner reading TAKEN would
            // inherit them into its logview and violate QUEUE-EMPDEQ.
            // The Compass checker caught exactly this when this CAS was
            // AcqRel.
            let source = self.enq_event_of(i);
            let (res, ev) = ctx.cas_with(
                self.slot(i),
                v,
                TAKEN,
                Mode::Acquire,
                Mode::Acquire,
                |r, gh| {
                    if r.new.is_some() {
                        Some(self.obj.commit_matched(gh, QueueEvent::Deq(v), source))
                    } else if last {
                        Some(self.obj.commit(gh, QueueEvent::EmpDeq))
                    } else {
                        None
                    }
                },
            );
            match res {
                Ok(_) => return (Some(v), ev.expect("committed")),
                Err(_) if last => return (None, ev.expect("committed")),
                Err(_) => {}
            }
        }
        unreachable!("scan always returns at the last slot");
    }

    fn obj(&self) -> &LibObj<QueueEvent> {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::queue_spec::check_queue_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn sequential_fifo() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| HwQueue::new(ctx, 8),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, q, _| {
                assert_eq!(q.try_dequeue(ctx).0, None);
                q.enqueue(ctx, Val::Int(1));
                q.enqueue(ctx, Val::Int(2));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(1)));
                assert_eq!(q.try_dequeue(ctx).0, Some(Val::Int(2)));
                assert_eq!(q.try_dequeue(ctx).0, None);
                let g = q.obj().snapshot();
                check_queue_consistent(&g).unwrap();
                g.len()
            },
        );
        // EmpDeq + Enq + Enq + Deq + Deq + EmpDeq.
        assert_eq!(out.result.unwrap(), 6);
    }

    #[test]
    fn concurrent_runs_satisfy_lat_hb() {
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| HwQueue::new(ctx, 8),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.enqueue(ctx, Val::Int(10));
                        q.enqueue(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.enqueue(ctx, Val::Int(20));
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &HwQueue| {
                        q.try_dequeue(ctx);
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| {
                    check_queue_consistent(&q.obj().snapshot()).expect("QueueConsistent");
                },
            );
            out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_overflow_panics() {
        let _ = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| HwQueue::new(ctx, 1),
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, q, _| {
                q.enqueue(ctx, Val::Int(1));
                q.enqueue(ctx, Val::Int(2));
            },
        )
        .result
        .map_err(|e| panic!("{e}"));
    }
}
