//! Model queues: Michael-Scott and Herlihy-Wing.

mod hw;
mod lockq;
mod ms;
mod spsc;

pub use hw::HwQueue;
pub use lockq::LockQueue;
pub use ms::MsQueue;
pub use spsc::SpscRing;

use compass::queue_spec::QueueEvent;
use compass::{EventId, LibObj};
use orc11::{ThreadCtx, Val};

/// A multi-producer multi-consumer model queue producing a Compass event
/// graph.
///
/// Every operation returns the [`EventId`] it committed, so clients can
/// reason about (and tests can assert on) the graph.
pub trait ModelQueue: Sync {
    /// Enqueues `v`, committing an `Enq(v)` event.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid element (see
    /// [`crate::check_element`]).
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId;

    /// Attempts one dequeue. Returns `(Some(v), d)` with a `Deq(v)` event,
    /// or `(None, d)` with an `EmpDeq` event if the caller observed the
    /// queue as empty (which, under relaxed memory, does not mean it *is*
    /// empty).
    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId);

    /// The queue's library object (graph + ghost key).
    fn obj(&self) -> &LibObj<QueueEvent>;
}
