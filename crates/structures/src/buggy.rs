//! Deliberately weakened implementations — negative tests for the
//! checkers.
//!
//! Each variant removes synchronization the paper's proofs rely on, and
//! each has a consistency clause that catches it on explored executions:
//!
//! | Variant | Weakening | Caught by |
//! |---|---|---|
//! | [`RelaxedMsQueue`] | all atomics relaxed | `QUEUE-SO-LHB` (a dequeue no longer happens-after its enqueue) |
//! | [`RelaxedHwQueue`] | tail FAA / tail read relaxed | `QUEUE-FIFO` (a dequeuer can miss an older, externally-ordered enqueue) |
//! | [`RelaxedTreiber`] | all atomics relaxed | `STACK-SO-LHB` and friends |
//! | [`SplitExchanger`] | helper commits the pair in two instructions | `EXCHANGER-ATOMIC-PAIRS` (observable intermediate state) |
//! | [`QueueAsStack`] | delivers in FIFO order (perfectly synchronized!) | `STACK-LIFO` — a pure ordering bug, no memory-model defect at all |

use orc11::sync::Mutex;
use std::collections::HashMap;

use compass::exchanger_spec::ExchangeEvent;
use compass::queue_spec::QueueEvent;
use compass::stack_spec::StackEvent;
use compass::{EventId, LibObj};
use orc11::{Loc, Mode, ThreadCtx, Val};

use crate::check_element;
use crate::queue::{HwQueue, ModelQueue};

const VAL: u32 = 0;
const NEXT: u32 = 1;
const RESP: u32 = 1;

/// A Michael-Scott queue with **all atomics relaxed** (node fields are
/// atomic so the weakening shows up as spec violations, not data races).
#[derive(Debug)]
pub struct RelaxedMsQueue {
    head: Loc,
    tail: Loc,
    obj: LibObj<QueueEvent>,
    enq_events: Mutex<HashMap<Loc, EventId>>,
}

impl RelaxedMsQueue {
    /// Allocates an empty queue.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        let sentinel = ctx.alloc_block_atomic("rms.sentinel", &[Val::Null, Val::Null]);
        RelaxedMsQueue {
            head: ctx.alloc_atomic("rms.head", Val::Loc(sentinel)),
            tail: ctx.alloc_atomic("rms.tail", Val::Loc(sentinel)),
            obj: LibObj::new("relaxed-ms-queue"),
            enq_events: Mutex::new(HashMap::new()),
        }
    }
}

impl ModelQueue for RelaxedMsQueue {
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        let node = ctx.alloc_block_atomic("rms.node", &[v, Val::Null]);
        loop {
            let tail = ctx.read(self.tail, Mode::Relaxed).expect_loc();
            let next = ctx.read(tail.field(NEXT), Mode::Relaxed);
            if let Some(succ) = next.as_loc() {
                let _ = ctx.cas(
                    self.tail,
                    Val::Loc(tail),
                    Val::Loc(succ),
                    Mode::Relaxed,
                    Mode::Relaxed,
                );
                continue;
            }
            let (res, ev) = ctx.cas_with(
                tail.field(NEXT),
                Val::Null,
                Val::Loc(node),
                Mode::Relaxed,
                Mode::Relaxed,
                |r, gh| {
                    r.new.is_some().then(|| {
                        let id = self.obj.commit(gh, QueueEvent::Enq(v));
                        self.enq_events.lock().insert(node, id);
                        id
                    })
                },
            );
            if res.is_ok() {
                let _ = ctx.cas(
                    self.tail,
                    Val::Loc(tail),
                    Val::Loc(node),
                    Mode::Relaxed,
                    Mode::Relaxed,
                );
                return ev.expect("committed");
            }
        }
    }

    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        loop {
            let head = ctx.read(self.head, Mode::Relaxed).expect_loc();
            let (next, emp) = ctx.read_with(head.field(NEXT), Mode::Relaxed, |v, gh| {
                v.is_null().then(|| self.obj.commit(gh, QueueEvent::EmpDeq))
            });
            if let Some(ev) = emp {
                return (None, ev);
            }
            let node = next.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::Relaxed);
            let source = *self.enq_events.lock().get(&node).expect("published node");
            let (res, ev) = ctx.cas_with(
                self.head,
                Val::Loc(head),
                Val::Loc(node),
                Mode::Relaxed,
                Mode::Relaxed,
                |r, gh| {
                    r.new
                        .is_some()
                        .then(|| self.obj.commit_matched(gh, QueueEvent::Deq(v), source))
                },
            );
            if res.is_ok() {
                return (Some(v), ev.expect("committed"));
            }
        }
    }

    fn obj(&self) -> &LibObj<QueueEvent> {
        &self.obj
    }
}

/// A Herlihy-Wing queue whose tail operations are relaxed: the dequeuer's
/// scan range no longer synchronizes with earlier enqueues, so it can skip
/// an older (externally hb-ordered) enqueue's slot — a QUEUE-FIFO
/// violation.
#[derive(Debug)]
pub struct RelaxedHwQueue(HwQueue);

impl RelaxedHwQueue {
    /// Allocates an empty queue of the given capacity.
    pub fn new(ctx: &mut ThreadCtx, capacity: u32) -> Self {
        RelaxedHwQueue(HwQueue::with_tail_modes(
            ctx,
            capacity,
            Mode::Relaxed,
            Mode::Relaxed,
        ))
    }
}

impl ModelQueue for RelaxedHwQueue {
    fn enqueue(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        self.0.enqueue(ctx, v)
    }

    fn try_dequeue(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        self.0.try_dequeue(ctx)
    }

    fn obj(&self) -> &LibObj<QueueEvent> {
        self.0.obj()
    }
}

/// A Treiber stack with **all atomics relaxed**.
#[derive(Debug)]
pub struct RelaxedTreiber {
    head: Loc,
    obj: LibObj<StackEvent>,
    push_events: Mutex<HashMap<Loc, EventId>>,
}

impl RelaxedTreiber {
    /// Allocates an empty stack.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        RelaxedTreiber {
            head: ctx.alloc_atomic("rtreiber.head", Val::Null),
            obj: LibObj::new("relaxed-treiber"),
            push_events: Mutex::new(HashMap::new()),
        }
    }

    /// Pushes `v` (relaxed CAS — no release).
    pub fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        let node = ctx.alloc_block_atomic("rtreiber.node", &[v, Val::Null]);
        loop {
            let h = ctx.read(self.head, Mode::Relaxed);
            ctx.write(node.field(NEXT), h, Mode::Relaxed);
            let (res, ev) = ctx.cas_with(
                self.head,
                h,
                Val::Loc(node),
                Mode::Relaxed,
                Mode::Relaxed,
                |r, gh| {
                    r.new.is_some().then(|| {
                        let id = self.obj.commit(gh, StackEvent::Push(v));
                        self.push_events.lock().insert(node, id);
                        id
                    })
                },
            );
            if res.is_ok() {
                return ev.expect("committed");
            }
        }
    }

    /// Attempts one pop (relaxed CAS — no acquire).
    pub fn try_pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        loop {
            let (h, emp) = ctx.read_with(self.head, Mode::Relaxed, |v, gh| {
                v.is_null().then(|| self.obj.commit(gh, StackEvent::EmpPop))
            });
            if let Some(ev) = emp {
                return (None, ev);
            }
            let node = h.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::Relaxed);
            let next = ctx.read(node.field(NEXT), Mode::Relaxed);
            let source = *self.push_events.lock().get(&node).expect("published node");
            let (res, ev) =
                ctx.cas_with(self.head, h, next, Mode::Relaxed, Mode::Relaxed, |r, gh| {
                    r.new
                        .is_some()
                        .then(|| self.obj.commit_matched(gh, StackEvent::Pop(v), source))
                });
            if res.is_ok() {
                return (Some(v), ev.expect("committed"));
            }
        }
    }

    /// The stack's library object.
    pub fn obj(&self) -> &LibObj<StackEvent> {
        &self.obj
    }
}

/// An exchanger whose helper commits the two events of a matched pair in
/// **two separate instructions** — the intermediate state (helpee
/// committed, helper not) is observable, violating the atomic-helping
/// discipline of §4.2.
#[derive(Debug)]
pub struct SplitExchanger {
    slot: Loc,
    obj: LibObj<ExchangeEvent>,
    offer_tids: Mutex<HashMap<Loc, orc11::ThreadId>>,
    pair_events: Mutex<HashMap<Loc, (EventId, EventId)>>,
}

impl SplitExchanger {
    /// Allocates the exchanger.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        SplitExchanger {
            slot: ctx.alloc_atomic("sxchg.slot", Val::Null),
            obj: LibObj::new("split-exchanger"),
            offer_tids: Mutex::new(HashMap::new()),
            pair_events: Mutex::new(HashMap::new()),
        }
    }

    /// The exchanger's library object.
    pub fn obj(&self) -> &LibObj<ExchangeEvent> {
        &self.obj
    }

    /// Attempts one exchange (same protocol as the correct exchanger, but
    /// with the split commit).
    pub fn exchange(&self, ctx: &mut ThreadCtx, v: Val, patience: u32) -> (Option<Val>, EventId) {
        assert!(!v.is_null(), "cannot offer ⊥");
        let node = ctx.alloc_block_atomic("sxchg.offer", &[v, Val::Null]);
        self.offer_tids.lock().insert(node, ctx.tid());
        let install = ctx.cas(
            self.slot,
            Val::Null,
            Val::Loc(node),
            Mode::Release,
            Mode::Acquire,
        );
        match install {
            Ok(_) => {
                for _ in 0..patience {
                    let r = ctx.read(node.field(RESP), Mode::Acquire);
                    if !r.is_null() {
                        let (e1, _) = self.pair_events.lock()[&node];
                        return (Some(r), e1);
                    }
                }
                let (res, ev) = ctx.cas_with(
                    node.field(RESP),
                    Val::Null,
                    crate::exchanger::CANCELLED,
                    Mode::AcqRel,
                    Mode::Acquire,
                    |r, gh| {
                        r.new
                            .is_some()
                            .then(|| self.obj.commit(gh, ExchangeEvent { give: v, got: None }))
                    },
                );
                match res {
                    Ok(_) => (None, ev.expect("committed")),
                    Err(partner) => {
                        let (e1, _) = self.pair_events.lock()[&node];
                        (Some(partner), e1)
                    }
                }
            }
            Err(cur) => {
                if let Some(offer) = cur.as_loc() {
                    let their_v = ctx.read(offer.field(VAL), Mode::Relaxed);
                    let their_tid = *self.offer_tids.lock().get(&offer).expect("offer");
                    // BUG: first instruction commits only the helpee's
                    // event...
                    let (res, e1) = ctx.cas_with(
                        offer.field(RESP),
                        Val::Null,
                        v,
                        Mode::AcqRel,
                        Mode::Acquire,
                        |r, gh| {
                            r.new.is_some().then(|| {
                                let e1 = self.obj.commit_as(
                                    gh,
                                    their_tid,
                                    ExchangeEvent {
                                        give: their_v,
                                        got: Some(v),
                                    },
                                );
                                // Provisional entry so the helpee can find
                                // its event in the (observable!)
                                // intermediate state.
                                self.pair_events.lock().insert(offer, (e1, e1));
                                e1
                            })
                        },
                    );
                    if res.is_ok() {
                        let e1 = e1.expect("committed");
                        // ...and a second, separate instruction commits the
                        // helper's event and the so edges.
                        let (_, e2) = ctx.read_with(self.slot, Mode::Relaxed, |_, gh| {
                            let e2 = self.obj.commit(
                                gh,
                                ExchangeEvent {
                                    give: v,
                                    got: Some(their_v),
                                },
                            );
                            let mut g = self.obj.graph();
                            g.add_so(e1, e2);
                            g.add_so(e2, e1);
                            e2
                        });
                        self.pair_events.lock().insert(offer, (e1, e2));
                        let _ = ctx.cas(
                            self.slot,
                            Val::Loc(offer),
                            Val::Null,
                            Mode::Relaxed,
                            Mode::Relaxed,
                        );
                        return (Some(their_v), e2);
                    }
                }
                let (_, ev) = ctx.read_with(self.slot, Mode::Acquire, |_, gh| {
                    self.obj.commit(gh, ExchangeEvent { give: v, got: None })
                });
                (None, ev)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::exchanger_spec::check_exchanger_consistent;
    use compass::queue_spec::check_queue_consistent;
    use compass::stack_spec::check_stack_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn relaxed_ms_queue_violates_so_lhb() {
        let mut rules = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                RelaxedMsQueue::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.enqueue(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &RelaxedMsQueue| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| check_queue_consistent(&q.obj().snapshot()).err(),
            );
            if let Some(v) = out.result.unwrap() {
                rules.insert(v.rule);
            }
        }
        assert!(
            rules.contains("QUEUE-SO-LHB"),
            "expected QUEUE-SO-LHB violations; got {rules:?}"
        );
    }

    #[test]
    fn relaxed_hw_queue_violates_fifo() {
        let mut rules = std::collections::BTreeSet::new();
        for seed in 0..5000 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| {
                    let q = RelaxedHwQueue::new(ctx, 4);
                    let flag = ctx.alloc("flag", Val::Int(0));
                    (q, flag)
                },
                vec![
                    Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                        q.enqueue(ctx, Val::Int(10));
                        ctx.write(*flag, Val::Int(1), Mode::Release);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                        ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                        q.enqueue(ctx, Val::Int(20));
                    }),
                    Box::new(|ctx: &mut ThreadCtx, (q, _): &(RelaxedHwQueue, Loc)| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, (q, _), _| check_queue_consistent(&q.obj().snapshot()).err(),
            );
            if let Some(v) = out.result.unwrap() {
                rules.insert(v.rule);
            }
        }
        assert!(
            rules.contains("QUEUE-FIFO"),
            "expected QUEUE-FIFO violations; got {rules:?}"
        );
    }

    #[test]
    fn strong_hw_queue_passes_same_workload() {
        // Control: the properly synchronized HwQueue on the FIFO workload.
        for seed in 0..400 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| {
                    let q = HwQueue::new(ctx, 4);
                    let flag = ctx.alloc("flag", Val::Int(0));
                    (q, flag)
                },
                vec![
                    Box::new(|ctx: &mut ThreadCtx, (q, flag): &(HwQueue, Loc)| {
                        q.enqueue(ctx, Val::Int(10));
                        ctx.write(*flag, Val::Int(1), Mode::Release);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, (q, flag): &(HwQueue, Loc)| {
                        ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                        q.enqueue(ctx, Val::Int(20));
                    }),
                    Box::new(|ctx: &mut ThreadCtx, (q, _): &(HwQueue, Loc)| {
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, (q, _), _| {
                    check_queue_consistent(&q.obj().snapshot()).expect("QueueConsistent")
                },
            );
            out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn relaxed_treiber_violates_stack_consistency() {
        let mut violations = 0;
        for seed in 0..200 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                RelaxedTreiber::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &RelaxedTreiber| {
                        s.push(ctx, Val::Int(1));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &RelaxedTreiber| {
                        s.try_pop(ctx);
                    }),
                ],
                |_, s, _| check_stack_consistent(&s.obj().snapshot()).err(),
            );
            if out.result.unwrap().is_some() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected stack consistency violations");
    }

    #[test]
    fn split_exchanger_violates_atomic_pairs() {
        let mut rules = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                SplitExchanger::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, x: &SplitExchanger| {
                        x.exchange(ctx, Val::Int(1), 3);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, x: &SplitExchanger| {
                        x.exchange(ctx, Val::Int(2), 3);
                    }),
                ],
                |_, x, _| check_exchanger_consistent(&x.obj().snapshot()).err(),
            );
            if let Some(v) = out.result.unwrap() {
                rules.insert(v.rule);
            }
        }
        assert!(
            rules.contains("EXCHANGER-ATOMIC-PAIRS"),
            "expected EXCHANGER-ATOMIC-PAIRS violations; got {rules:?}"
        );
    }
}

/// A "stack" that delivers elements in FIFO order (it is a queue wearing a
/// stack's event vocabulary) — the order bug `STACK-LIFO` exists to catch.
///
/// Internally a lock-protected linked queue; perfectly synchronized, so
/// the *only* defect is the ordering semantics.
#[derive(Debug)]
pub struct QueueAsStack {
    lock: crate::lock::SpinLock,
    head: Loc,
    tail: Loc,
    obj: LibObj<StackEvent>,
    push_events: Mutex<HashMap<Loc, EventId>>,
}

impl QueueAsStack {
    /// Allocates the impostor.
    pub fn new(ctx: &mut ThreadCtx) -> Self {
        let sentinel = ctx.alloc_block("qas.sentinel", &[Val::Null, Val::Null]);
        QueueAsStack {
            lock: crate::lock::SpinLock::new(ctx),
            head: ctx.alloc("qas.head", Val::Loc(sentinel)),
            tail: ctx.alloc("qas.tail", Val::Loc(sentinel)),
            obj: LibObj::new("queue-as-stack"),
            push_events: Mutex::new(HashMap::new()),
        }
    }

    /// The object's graph.
    pub fn obj(&self) -> &LibObj<StackEvent> {
        &self.obj
    }

    /// "Pushes" (enqueues) `v`, committing a `Push` event.
    pub fn push(&self, ctx: &mut ThreadCtx, v: Val) -> EventId {
        check_element(v);
        self.lock.with(ctx, |ctx| {
            let node = ctx.alloc_block("qas.node", &[v, Val::Null]);
            let tail = ctx.read(self.tail, Mode::NonAtomic).expect_loc();
            let ev = ctx.write_with(tail.field(NEXT), Val::Loc(node), Mode::NonAtomic, |gh| {
                let id = self.obj.commit(gh, StackEvent::Push(v));
                self.push_events.lock().insert(node, id);
                id
            });
            ctx.write(self.tail, Val::Loc(node), Mode::NonAtomic);
            ev
        })
    }

    /// "Pops" — but from the WRONG end (dequeues), committing a `Pop`.
    pub fn pop(&self, ctx: &mut ThreadCtx) -> (Option<Val>, EventId) {
        self.lock.with(ctx, |ctx| {
            let head = ctx.read(self.head, Mode::NonAtomic).expect_loc();
            let (next, emp) = ctx.read_with(head.field(NEXT), Mode::NonAtomic, |v, gh| {
                v.is_null().then(|| self.obj.commit(gh, StackEvent::EmpPop))
            });
            if let Some(ev) = emp {
                return (None, ev);
            }
            let node = next.expect_loc();
            let v = ctx.read(node.field(VAL), Mode::NonAtomic);
            let source = *self.push_events.lock().get(&node).expect("linked node");
            let ev = ctx.write_with(self.head, Val::Loc(node), Mode::NonAtomic, |gh| {
                self.obj.commit_matched(gh, StackEvent::Pop(v), source)
            });
            (Some(v), ev)
        })
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use compass::history::{check_linearizable, StackInterp};
    use compass::stack_spec::check_stack_consistent;
    use orc11::{random_strategy, run_model, BodyFn, Config};

    #[test]
    fn queue_as_stack_violates_lifo() {
        // One thread pushes 1, 2 and pops — a real stack returns 2; the
        // impostor returns 1 and STACK-LIFO fires on every execution of
        // this shape (the lock makes everything lhb-ordered, so the
        // violation is deterministic).
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            QueueAsStack::new,
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, s, _| {
                s.push(ctx, Val::Int(1));
                s.push(ctx, Val::Int(2));
                let (v, _) = s.pop(ctx);
                assert_eq!(v, Some(Val::Int(1)), "it really is a queue");
                s.obj().snapshot()
            },
        );
        let g = out.result.unwrap();
        assert_eq!(check_stack_consistent(&g).unwrap_err().rule, "STACK-LIFO");
        assert!(check_linearizable(&g, &StackInterp).is_err());
    }

    #[test]
    fn queue_as_stack_violates_lifo_concurrently() {
        let mut violations = 0;
        for seed in 0..60 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                QueueAsStack::new,
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &QueueAsStack| {
                        s.push(ctx, Val::Int(1));
                        s.push(ctx, Val::Int(2));
                        s.pop(ctx);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &QueueAsStack| {
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| s.obj().snapshot(),
            );
            let g = out.result.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if check_stack_consistent(&g).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "LIFO violations should appear");
    }
}
