//! End-to-end test of the violation replay bundles: checking a buggy
//! structure with a bundle directory configured must write a bundle
//! whose saved choice trace replays to a byte-identical instruction log
//! and trips the same violation clause.

use std::fs;
use std::path::PathBuf;

use compass::bundle;
use compass::checker::{check_executions_with, CheckOptions, Exploration};
use compass::queue_spec::{check_queue_consistent, QueueEvent};
use compass::Graph;
use compass_structures::buggy::RelaxedHwQueue;
use compass_structures::queue::ModelQueue;
use orc11::{
    render_ops, run_model, BodyFn, Config, Loc, Mode, RunOutcome, Strategy, ThreadCtx, Val,
};

/// The relaxed-tail Herlihy-Wing FIFO bug workload of E10, with the
/// instruction log recorded so bundles carry a full oplog.
fn program(strategy: Box<dyn Strategy>) -> RunOutcome<Graph<QueueEvent>> {
    run_model(
        &Config {
            record_ops: true,
            ..Config::default()
        },
        strategy,
        |ctx| {
            let q = RelaxedHwQueue::new(ctx, 4);
            let flag = ctx.alloc("flag", Val::Int(0));
            (q, flag)
        },
        vec![
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                q.enqueue(ctx, Val::Int(10));
                ctx.write(*flag, Val::Int(1), Mode::Release);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                q.enqueue(ctx, Val::Int(20));
            }),
            Box::new(|ctx: &mut ThreadCtx, (q, _): &(RelaxedHwQueue, Loc)| {
                q.try_dequeue(ctx);
            }),
        ],
        |_, (q, _), _| q.obj().snapshot(),
    )
}

fn temp_root() -> PathBuf {
    std::env::temp_dir().join(format!("compass-replay-roundtrip-{}", std::process::id()))
}

#[test]
fn saved_bundle_replays_deterministically() {
    let root = temp_root();
    let _ = fs::remove_dir_all(&root);

    let opts = CheckOptions {
        bundle_dir: Some(root.clone()),
        ..CheckOptions::default()
    };
    let report = check_executions_with(
        &Exploration::Pct {
            iters: 600,
            seed0: 0,
            depth: 3,
        },
        &opts,
        program,
        check_queue_consistent,
    );
    assert!(
        !report.violations.is_empty(),
        "the relaxed-tail bug should surface within the seed budget: {report}"
    );
    let dir = report
        .bundle
        .clone()
        .expect("a bundle is written for the first violation");
    assert!(dir.starts_with(&root));

    // The bundle's first violation is also the first recorded sample.
    let (_, first_violation) = &report.samples[0];

    // Replay the saved trace: same instruction log, same clause.
    let trace = bundle::load_trace(&dir.join("trace.txt")).unwrap();
    let saved_oplog = fs::read_to_string(dir.join("oplog.txt")).unwrap();
    let replayed = bundle::replay(&trace, program);
    let g = replayed.result.as_ref().expect("replay must not abort");
    assert_eq!(
        render_ops(&replayed.ops),
        saved_oplog,
        "replaying the saved trace must reproduce the instruction log byte-for-byte"
    );
    let v = check_queue_consistent(g).expect_err("replay must trip the same check");
    assert_eq!(v.rule, first_violation.rule);
    assert_eq!(v.message, first_violation.message);

    // bundle.json agrees with the live violation.
    let summary = fs::read_to_string(dir.join("bundle.json")).unwrap();
    assert!(summary.contains(&format!("\"rule\": \"{}\"", v.rule)));
    assert!(summary.contains("\"ops_recorded\": true"));

    // A second replay of the same trace is identical to the first —
    // determinism is a property of the trace, not the run.
    let replayed2 = bundle::replay(&trace, program);
    assert_eq!(render_ops(&replayed2.ops), saved_oplog);

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn parallel_capture_matches_serial_and_replays() {
    // A violation found by a parallel worker must be captured as the
    // same bundle a serial run writes (the run's *first* failure in
    // serial exploration order), and must replay with the plain serial
    // replay machinery.
    let root = temp_root().join("parallel");
    let _ = fs::remove_dir_all(&root);
    let exploration = Exploration::Pct {
        iters: 600,
        seed0: 0,
        depth: 3,
    };
    let run = |threads: usize, sub: &str| {
        let opts = CheckOptions {
            bundle_dir: Some(root.join(sub)),
            threads,
            ..CheckOptions::default()
        };
        check_executions_with(&exploration, &opts, program, check_queue_consistent)
            .bundle
            .expect("a bundle is written for the first violation")
    };
    let serial_dir = run(1, "serial");
    let parallel_dir = run(4, "parallel");

    // Byte-identical capture, thread count notwithstanding.
    for file in ["bundle.json", "trace.txt", "report.txt", "oplog.txt"] {
        assert_eq!(
            fs::read_to_string(serial_dir.join(file)).unwrap(),
            fs::read_to_string(parallel_dir.join(file)).unwrap(),
            "{file} must not depend on the worker count"
        );
    }

    // And the parallel capture replays to the same violation.
    let trace = bundle::load_trace(&parallel_dir.join("trace.txt")).unwrap();
    let replayed = bundle::replay(&trace, program);
    let g = replayed.result.as_ref().expect("replay must not abort");
    let v = check_queue_consistent(g).expect_err("replay must trip the check");
    let summary = fs::read_to_string(parallel_dir.join("bundle.json")).unwrap();
    assert!(summary.contains(&format!("\"rule\": \"{}\"", v.rule)));

    fs::remove_dir_all(&root).unwrap();
}
