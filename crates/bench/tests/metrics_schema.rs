//! Snapshot test pinning the metrics JSON schema.
//!
//! Downstream tooling parses `experiment-results/*.json`; this test
//! freezes the exact rendered shape (key order, indentation, number
//! formatting) so an accidental schema change fails loudly. Bump
//! `SCHEMA_VERSION` — and this snapshot — on intentional changes.

use compass_bench::metrics::{Metrics, SCHEMA_VERSION};
use orc11::Json;

#[test]
fn schema_version_is_stable() {
    assert_eq!(SCHEMA_VERSION, 1);
}

#[test]
fn rendered_document_matches_snapshot() {
    let mut m = Metrics::new("e0_snapshot");
    m.param("seeds", 100u64);
    m.param("budget", 500_000u64);
    m.set("consistent", 99u64);
    m.set("rate", 0.99f64);
    m.set("whole", 1.0f64);
    m.set(
        "by_size",
        Json::arr().push(Json::obj().set("n", 1u64).set("mismatches", 0u64)),
    );
    let expected = r#"{
  "schema_version": 1,
  "experiment": "e0_snapshot",
  "params": {
    "seeds": 100,
    "budget": 500000
  },
  "data": {
    "consistent": 99,
    "rate": 0.99,
    "whole": 1.0,
    "by_size": [
      {
        "n": 1,
        "mismatches": 0
      }
    ]
  }
}
"#;
    assert_eq!(m.to_json().render_pretty(), expected);
}

#[test]
fn empty_params_and_data_render_as_empty_objects() {
    let m = Metrics::new("e0_empty");
    let expected = r#"{
  "schema_version": 1,
  "experiment": "e0_empty",
  "params": {},
  "data": {}
}
"#;
    assert_eq!(m.to_json().render_pretty(), expected);
}
