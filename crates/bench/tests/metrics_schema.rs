//! Snapshot test pinning the metrics JSON schema.
//!
//! Downstream tooling parses `experiment-results/*.json`; this test
//! freezes the exact rendered shape (key order, indentation, number
//! formatting) so an accidental schema change fails loudly. Bump
//! `SCHEMA_VERSION` — and this snapshot — on intentional changes.
//!
//! The fields `threads`, `dpor`, and `wall_ns` depend on the host, the
//! environment, and the clock, so the snapshots normalize them (to
//! fixed values, in place — `Json::set` replaces without reordering)
//! before comparing. `phase_ns` and `workers` (schema v5) are zero and
//! empty on a fresh `Metrics`, so they snapshot as-is; `perf` (schema
//! v6) is `null` outside `e12_perf`.

use compass_bench::metrics::{Metrics, SCHEMA_VERSION};
use orc11::{Json, PhaseNs, WorkerStats};

#[test]
fn schema_version_is_stable() {
    assert_eq!(SCHEMA_VERSION, 6);
}

/// Pins the environment-dependent fields to snapshot-stable values.
fn normalized(m: &Metrics) -> String {
    m.to_json()
        .set("threads", 4u64)
        .set("dpor", false)
        .set("wall_ns", 0u64)
        .render_pretty()
}

#[test]
fn rendered_document_matches_snapshot() {
    let mut m = Metrics::new("e0_snapshot");
    m.param("seeds", 100u64);
    m.param("budget", 500_000u64);
    m.set("consistent", 99u64);
    m.set("rate", 0.99f64);
    m.set("whole", 1.0f64);
    m.set(
        "by_size",
        Json::arr().push(Json::obj().set("n", 1u64).set("mismatches", 0u64)),
    );
    let expected = r#"{
  "schema_version": 6,
  "experiment": "e0_snapshot",
  "threads": 4,
  "dpor": false,
  "conform": false,
  "wall_ns": 0,
  "phase_ns": {
    "explore": 0,
    "dpor": 0,
    "check": 0,
    "linearize": 0,
    "conform": 0,
    "io": 0
  },
  "workers": [],
  "perf": null,
  "params": {
    "seeds": 100,
    "budget": 500000
  },
  "data": {
    "consistent": 99,
    "rate": 0.99,
    "whole": 1.0,
    "by_size": [
      {
        "n": 1,
        "mismatches": 0
      }
    ]
  }
}
"#;
    assert_eq!(normalized(&m), expected);
}

#[test]
fn conform_documents_set_the_flag() {
    let mut m = Metrics::new("e11_conform");
    m.mark_conform();
    let expected = r#"{
  "schema_version": 6,
  "experiment": "e11_conform",
  "threads": 4,
  "dpor": false,
  "conform": true,
  "wall_ns": 0,
  "phase_ns": {
    "explore": 0,
    "dpor": 0,
    "check": 0,
    "linearize": 0,
    "conform": 0,
    "io": 0
  },
  "workers": [],
  "perf": null,
  "params": {},
  "data": {}
}
"#;
    assert_eq!(normalized(&m), expected);
}

#[test]
fn empty_params_and_data_render_as_empty_objects() {
    let m = Metrics::new("e0_empty");
    let expected = r#"{
  "schema_version": 6,
  "experiment": "e0_empty",
  "threads": 4,
  "dpor": false,
  "conform": false,
  "wall_ns": 0,
  "phase_ns": {
    "explore": 0,
    "dpor": 0,
    "check": 0,
    "linearize": 0,
    "conform": 0,
    "io": 0
  },
  "workers": [],
  "perf": null,
  "params": {},
  "data": {}
}
"#;
    assert_eq!(normalized(&m), expected);
}

#[test]
fn fed_phase_and_worker_telemetry_renders_in_place() {
    let mut m = Metrics::new("e0_fed");
    m.add_phases(&PhaseNs {
        explore: 10,
        check: 5,
        ..PhaseNs::ZERO
    });
    m.add_phases(&PhaseNs {
        explore: 1,
        io: 2,
        ..PhaseNs::ZERO
    });
    m.add_workers(&[
        WorkerStats {
            executed: 4,
            stolen: 1,
            idle_waits: 0,
            idle_wait_ns: 0,
        },
        WorkerStats {
            executed: 3,
            stolen: 0,
            idle_waits: 2,
            idle_wait_ns: 50,
        },
    ]);
    let expected = r#"{
  "schema_version": 6,
  "experiment": "e0_fed",
  "threads": 4,
  "dpor": false,
  "conform": false,
  "wall_ns": 0,
  "phase_ns": {
    "explore": 11,
    "dpor": 0,
    "check": 5,
    "linearize": 0,
    "conform": 0,
    "io": 2
  },
  "workers": [
    {
      "worker": 0,
      "executed": 4,
      "stolen": 1,
      "idle_waits": 0,
      "idle_wait_ns": 0
    },
    {
      "worker": 1,
      "executed": 3,
      "stolen": 0,
      "idle_waits": 2,
      "idle_wait_ns": 50
    }
  ],
  "perf": null,
  "params": {},
  "data": {}
}
"#;
    assert_eq!(normalized(&m), expected);
}
