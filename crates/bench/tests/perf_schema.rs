//! Pins the schema-v6 `perf` object, the `BENCH_<n>.json` trajectory
//! document, and the regression comparator's verdicts.
//!
//! Like `metrics_schema.rs`, the exact rendered JSON is frozen so
//! downstream trajectory tooling can rely on key order and number
//! formatting; `bench_compare` behaviour is pinned against synthetic
//! documents, including the acceptance-criteria case of an injected
//! regression making it exit nonzero.

use compass_bench::metrics::Metrics;
use compass_bench::perf::{
    bench_document, check_bench_doc, compare_bench_docs, compare_cli, curve_point_json, hist_json,
    perf_json, structure_json, trajectory_entries, BENCH_SCHEMA, REQUIRED_STRUCTURES,
};
use compass_bench::timing::LatencyHist;
use orc11::Json;

fn hist(values: &[u64]) -> LatencyHist {
    let mut h = LatencyHist::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn hist_json_render_is_pinned() {
    let h = hist(&[10, 100]);
    let expected = r#"{
  "count": 2,
  "p50_ns": 10,
  "p90_ns": 100,
  "p99_ns": 100,
  "p999_ns": 100,
  "max_ns": 100,
  "mean_ns": 55.0,
  "buckets": [
    {
      "lo": 10,
      "hi": 10,
      "count": 1
    },
    {
      "lo": 100,
      "hi": 101,
      "count": 1
    }
  ]
}
"#;
    assert_eq!(hist_json(&h).render_pretty(), expected);
}

#[test]
fn curve_point_shape_is_pinned() {
    let h = hist(&[50, 60, 70]);
    let p = curve_point_json(
        4,
        1_000,
        2_000_000,
        &h,
        &[("enqueue".to_string(), h.clone())],
    );
    // 1000 ops in 2ms = 500k ops/s.
    assert_eq!(p.get("threads"), Some(&Json::Int(4)));
    assert_eq!(p.get("ops"), Some(&Json::Int(1_000)));
    assert_eq!(p.get("wall_ns"), Some(&Json::Int(2_000_000)));
    assert_eq!(
        p.get("throughput_ops_per_sec"),
        Some(&Json::Float(500_000.0))
    );
    assert_eq!(
        p.get("latency").and_then(|l| l.get("count")),
        Some(&Json::Int(3))
    );
    assert!(p.get("by_op").and_then(|b| b.get("enqueue")).is_some());
    // Key order is part of the schema.
    let keys = match &p {
        Json::Obj(entries) => entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        other => panic!("curve point is not an object: {other:?}"),
    };
    assert_eq!(
        keys,
        [
            "threads",
            "ops",
            "wall_ns",
            "throughput_ops_per_sec",
            "latency",
            "by_op"
        ]
    );
}

/// A synthetic but schema-complete `perf` object. `wall_scale`
/// stretches every round's wall time (lowering throughput) and
/// `lat_scale` multiplies every latency sample — the knobs the
/// regression tests turn.
fn synthetic_perf(wall_scale: u64, lat_scale: u64, execs_per_sec: f64) -> Json {
    let mut structures = Json::arr();
    for name in REQUIRED_STRUCTURES {
        let mut curve = Json::arr();
        for threads in [1u64, 2] {
            let h = hist(&[40 * lat_scale, 55 * lat_scale, 900 * lat_scale]);
            curve = curve.push(curve_point_json(
                threads,
                1_000,
                1_000_000 * wall_scale,
                &h,
                &[("enqueue".to_string(), h.clone())],
            ));
        }
        structures = structures.push(structure_json(name, "queue", false, curve));
    }
    let tests = Json::arr().push(
        Json::obj()
            .set("name", "sb")
            .set("plain_execs", 100u64)
            .set("plain_execs_per_sec", execs_per_sec)
            .set("dpor_execs", 40u64)
            .set("dpor_execs_per_sec", execs_per_sec),
    );
    let explorer = Json::obj()
        .set("budget", 1_000u64)
        .set("tests", tests)
        .set("total_execs", 140u64)
        .set("execs_per_sec", execs_per_sec);
    perf_json(structures, explorer)
}

fn synthetic_metrics(perf: Json) -> Json {
    let mut m = Metrics::new("e12_perf");
    m.set_perf(perf);
    m.to_json()
}

#[test]
fn bench_document_shape_is_pinned() {
    let doc = bench_document(
        &synthetic_metrics(synthetic_perf(1, 1, 5_000.0)),
        "abc1234",
        "2026-08-09",
        "smoke",
    )
    .expect("synthetic metrics make a valid document");
    let keys = match &doc {
        Json::Obj(entries) => entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        other => panic!("BENCH document is not an object: {other:?}"),
    };
    assert_eq!(
        keys,
        [
            "bench_schema",
            "metrics_schema_version",
            "rev",
            "date",
            "preset",
            "threads",
            "perf"
        ]
    );
    assert_eq!(
        doc.get("bench_schema"),
        Some(&Json::Int(BENCH_SCHEMA as i64))
    );
    assert_eq!(doc.get("metrics_schema_version"), Some(&Json::Int(6)));
    assert_eq!(doc.get("rev"), Some(&Json::Str("abc1234".into())));
    assert_eq!(doc.get("date"), Some(&Json::Str("2026-08-09".into())));
    assert_eq!(doc.get("preset"), Some(&Json::Str("smoke".into())));
    check_bench_doc(&doc).expect("document validates");
}

#[test]
fn bench_document_rejects_non_perf_metrics() {
    // Any other experiment's metrics (perf: null) cannot seed a
    // trajectory entry.
    let m = Metrics::new("e8_litmus");
    let err = bench_document(&m.to_json(), "abc", "2026-08-09", "smoke").unwrap_err();
    assert!(err.contains("perf"), "unexpected error: {err}");
}

#[test]
fn check_rejects_missing_required_structure() {
    let full = bench_document(
        &synthetic_metrics(synthetic_perf(1, 1, 5_000.0)),
        "abc",
        "2026-08-09",
        "smoke",
    )
    .unwrap();
    check_bench_doc(&full).expect("full document is valid");
    // Drop one required structure.
    let perf = full.get("perf").unwrap();
    let structures = match perf.get("structures") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("structures not an array: {other:?}"),
    };
    let pruned = structures
        .into_iter()
        .filter(|s| s.get("name") != Some(&Json::Str("chase_lev".into())))
        .fold(Json::arr(), |j, s| j.push(s));
    let broken = full
        .clone()
        .set("perf", perf.clone().set("structures", pruned));
    let err = check_bench_doc(&broken).unwrap_err();
    assert!(err.contains("chase_lev"), "unexpected error: {err}");
}

#[test]
fn compare_accepts_identical_and_flags_injected_regressions() {
    let base = bench_document(
        &synthetic_metrics(synthetic_perf(1, 1, 5_000.0)),
        "old",
        "2026-08-08",
        "smoke",
    )
    .unwrap();
    assert_eq!(
        compare_bench_docs(&base, &base, 0.20).expect("valid docs"),
        Vec::<String>::new()
    );
    // Injected throughput regression: every round takes 2x the wall
    // time, so throughput halves (-50% > 20%).
    let slow = bench_document(
        &synthetic_metrics(synthetic_perf(2, 1, 5_000.0)),
        "new",
        "2026-08-09",
        "smoke",
    )
    .unwrap();
    let regressions = compare_bench_docs(&base, &slow, 0.20).unwrap();
    assert!(
        regressions.iter().any(|r| r.contains("throughput")),
        "throughput regression not flagged: {regressions:?}"
    );
    // Injected latency regression: p99 doubles.
    let spiky = bench_document(
        &synthetic_metrics(synthetic_perf(1, 2, 5_000.0)),
        "new",
        "2026-08-09",
        "smoke",
    )
    .unwrap();
    let regressions = compare_bench_docs(&base, &spiky, 0.20).unwrap();
    assert!(
        regressions.iter().any(|r| r.contains("p99")),
        "p99 regression not flagged: {regressions:?}"
    );
    // Injected explorer slowdown.
    let slow_explorer = bench_document(
        &synthetic_metrics(synthetic_perf(1, 1, 2_000.0)),
        "new",
        "2026-08-09",
        "smoke",
    )
    .unwrap();
    let regressions = compare_bench_docs(&base, &slow_explorer, 0.20).unwrap();
    assert!(
        regressions.iter().any(|r| r.contains("explorer")),
        "explorer regression not flagged: {regressions:?}"
    );
    // A wide threshold tolerates the same documents.
    assert_eq!(
        compare_bench_docs(&base, &slow, 0.60).unwrap(),
        Vec::<String>::new()
    );
}

#[test]
fn compare_cli_exit_codes_match_the_contract() {
    let dir = std::env::temp_dir().join(format!("compass-bench-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, doc: &Json| {
        let path = dir.join(name);
        std::fs::write(&path, doc.render_pretty()).unwrap();
        path.to_string_lossy().into_owned()
    };
    let base = bench_document(
        &synthetic_metrics(synthetic_perf(1, 1, 5_000.0)),
        "old",
        "2026-08-08",
        "smoke",
    )
    .unwrap();
    let slow = bench_document(
        &synthetic_metrics(synthetic_perf(2, 1, 5_000.0)),
        "new",
        "2026-08-09",
        "smoke",
    )
    .unwrap();
    let base_path = write("BENCH_0.json", &base);
    let slow_path = write("BENCH_1.json", &slow);

    let run = |args: &[&str]| compare_cli(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    // Valid document: --check passes.
    assert_eq!(run(&["--check", &base_path]), 0);
    // Identical comparison: clean.
    assert_eq!(run(&[&base_path, &base_path]), 0);
    // The injected regression makes the comparator exit nonzero.
    assert_eq!(run(&[&base_path, &slow_path]), 1);
    // Directory mode picks the newest two (BENCH_0 vs BENCH_1).
    assert_eq!(run(&[dir.to_str().unwrap()]), 1);
    // A generous threshold accepts the same pair.
    assert_eq!(run(&["--threshold", "60", &base_path, &slow_path]), 0);
    // Garbage input is a usage/parse error, not a regression.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json").unwrap();
    assert_eq!(run(&["--check", garbage.to_str().unwrap()]), 2);
    assert_eq!(run(&["--frobnicate"]), 2);
    assert_eq!(run(&[]), 2);

    let entries = trajectory_entries(&dir);
    assert_eq!(entries.len(), 2);
    assert!(entries[0].0 < entries[1].0);
    let _ = std::fs::remove_dir_all(&dir);
}

// --- LatencyHist unit coverage (via the `timing` re-export) ---------

#[test]
fn latency_hist_percentiles_track_a_sorted_vector_oracle() {
    let mut state = 42u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut h = LatencyHist::new();
    let mut samples: Vec<u64> = (0..20_000).map(|_| next() % 10_000_000).collect();
    for &s in &samples {
        h.record(s);
    }
    samples.sort_unstable();
    for q in [0.5, 0.9, 0.99, 0.999] {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let oracle = samples[rank - 1];
        let got = h.percentile(q);
        assert!(got >= oracle, "p{q}: {got} under-reports oracle {oracle}");
        let slack = oracle / 16 + 1;
        assert!(got <= oracle + slack, "p{q}: {got} > {oracle} + {slack}");
    }
    assert_eq!(h.max_ns(), *samples.last().unwrap());
}

#[test]
fn latency_hist_merge_commutes_and_bucket_bounds_are_monotone() {
    let a = hist(&[3, 700, 12_000, 44]);
    let b = hist(&[9, 9, 2_000_000]);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);
    assert_eq!(ab.count(), 7);
    let buckets = ab.nonzero_buckets();
    assert!(
        buckets.windows(2).all(|w| w[0].1 < w[1].0),
        "bucket ranges overlap or disorder: {buckets:?}"
    );
    assert_eq!(buckets.iter().map(|b| b.2).sum::<u64>(), 7);
}
