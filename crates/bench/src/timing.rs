//! A tiny timing harness for the `benches/` targets (`harness = false`).
//!
//! The repository builds offline with no external crates, so instead of
//! Criterion the performance benchmarks use this module: fixed sample
//! count, median-of-samples reporting, and optional element throughput.
//! It is deliberately simple — the benchmarks exist to show *shape*
//! (which structure wins where, how checking cost scales), not to defend
//! microsecond-level claims.
//!
//! Results render as a [`crate::table::Table`] and are returned to the
//! caller so benchmark binaries can also emit machine-readable JSON via
//! [`crate::metrics`].

use std::time::Instant;

use crate::table::Table;

pub use compass_native::perf::LatencyHist;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id within the group (e.g. `"treiber/4"`).
    pub id: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: u64,
    /// 99th-percentile wall time per iteration, nanoseconds (equal to
    /// the max for iteration counts below 100).
    pub p99_ns: u64,
    /// Minimum wall time per iteration, nanoseconds.
    pub min_ns: u64,
    /// Elements processed per iteration (for throughput), if declared.
    pub elements: Option<u64>,
}

impl Sample {
    /// Million elements per second at the median, if elements were
    /// declared and the median is nonzero.
    pub fn melem_per_sec(&self) -> Option<f64> {
        let e = self.elements? as f64;
        if self.median_ns == 0 {
            return None;
        }
        Some(e / self.median_ns as f64 * 1_000.0)
    }
}

/// A named group of benchmarks, run eagerly as they are registered.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: Vec<Sample>,
    iters: u64,
    warmup: u64,
    elements: Option<u64>,
}

impl Group {
    /// Creates a group; `iters` timed iterations per benchmark, after
    /// one untimed warm-up call (configure with [`Group::warmup`]).
    pub fn new(name: &str, iters: u64) -> Self {
        eprintln!("# group {name} ({iters} iterations per benchmark)");
        Group {
            name: name.to_string(),
            samples: Vec::new(),
            iters,
            warmup: 1,
            elements: None,
        }
    }

    /// Sets the untimed warm-up iteration count for subsequent
    /// benchmarks (default 1).
    pub fn warmup(&mut self, iters: u64) {
        self.warmup = iters;
    }

    /// Declares elements-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, elements: u64) {
        self.elements = Some(elements);
    }

    /// Times `f` (after the configured untimed warm-up calls) and
    /// records a sample.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            let _warmup = f();
        }
        let mut times: Vec<u64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                let _keep = f();
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        times.sort_unstable();
        let sample = Sample {
            id: id.to_string(),
            iters: self.iters,
            median_ns: times[times.len() / 2],
            p99_ns: times[(self.iters as usize * 99)
                .div_ceil(100)
                .clamp(1, times.len())
                - 1],
            min_ns: times[0],
            elements: self.elements,
        };
        eprintln!(
            "  {:<28} median {:>12} ns{}",
            sample.id,
            sample.median_ns,
            sample
                .melem_per_sec()
                .map(|t| format!("  ({t:.2} Melem/s)"))
                .unwrap_or_default()
        );
        self.samples.push(sample);
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Renders the group as a table and returns the samples.
    pub fn finish(self) -> Vec<Sample> {
        let mut t = Table::new(&["benchmark", "median", "p99", "min", "throughput"]);
        for s in &self.samples {
            t.row(&[
                s.id.clone(),
                format_ns(s.median_ns),
                format_ns(s.p99_ns),
                format_ns(s.min_ns),
                s.melem_per_sec()
                    .map(|x| format!("{x:.2} Melem/s"))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        println!("\n== {} ==\n{}", self.name, t.render());
        self.samples
    }
}

/// Human formatting for nanosecond durations.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples_and_throughput() {
        let mut g = Group::new("t", 3);
        g.warmup(2);
        g.throughput(1_000);
        g.bench("busy", || std::hint::black_box((0..100u64).sum::<u64>()));
        assert_eq!(g.samples().len(), 1);
        let s = &g.samples()[0];
        assert_eq!(s.iters, 3);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p99_ns, "p99 below median");
        assert_eq!(s.elements, Some(1_000));
        let rendered = g.finish();
        assert_eq!(rendered.len(), 1);
    }

    #[test]
    fn p99_is_the_ceil_rank_sample() {
        // With n < 100 iterations, rank ceil(0.99 n) = n: p99 == max.
        let mut g = Group::new("p", 5);
        g.bench("spin", || std::hint::black_box((0..50u64).product::<u64>()));
        let s = &g.samples()[0];
        assert!(s.p99_ns >= s.median_ns && s.p99_ns >= s.min_ns);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
