//! E6 — the mechanization-size table of §1.2, reproduced in this
//! artifact's terms.
//!
//! The paper reports: "our library verifications are between 1.5KLOC and
//! 3.0KLOC long, with a median of 2.1KLOC, while our client verifications
//! are between 0.1KLOC and 0.5KLOC long, with a median of 0.2KLOC" (Coq).
//! The analogue here is the size of each library's executable
//! implementation + instrumentation, and of each client program — which
//! shows the same qualitative gap: libraries are an order of magnitude
//! bigger than clients.

use std::path::{Path, PathBuf};

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use orc11::Json;

fn loc(path: &Path) -> u64 {
    match std::fs::read_to_string(path) {
        Ok(s) => s
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count() as u64,
        Err(_) => 0,
    }
}

fn repo_root() -> PathBuf {
    // crates/bench → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives under crates/")
        .to_path_buf()
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e6_sizes");
    let root = repo_root();
    let f = |rel: &str| loc(&root.join(rel));
    println!("E6 — per-library and per-client sizes (the §1.2 table, in this artifact's terms)\n");

    let libraries = [
        (
            "Michael-Scott queue",
            f("crates/structures/src/queue/ms.rs") + f("crates/compass/src/queue_spec.rs"),
        ),
        (
            "Herlihy-Wing queue",
            f("crates/structures/src/queue/hw.rs") + f("crates/compass/src/queue_spec.rs"),
        ),
        (
            "Treiber stack",
            f("crates/structures/src/stack/treiber.rs")
                + f("crates/compass/src/stack_spec.rs")
                + f("crates/compass/src/history.rs"),
        ),
        (
            "Exchanger",
            f("crates/structures/src/exchanger.rs") + f("crates/compass/src/exchanger_spec.rs"),
        ),
        (
            "Elimination stack",
            f("crates/structures/src/stack/elimination.rs") + f("crates/compass/src/stack_spec.rs"),
        ),
        (
            "Chase-Lev deque (§6 future work)",
            f("crates/structures/src/deque.rs") + f("crates/compass/src/deque_spec.rs"),
        ),
        (
            "SPSC ring (Cosmo's subject)",
            f("crates/structures/src/queue/spsc.rs") + f("crates/compass/src/queue_spec.rs"),
        ),
        ("Spinlock", f("crates/structures/src/lock.rs")),
    ];
    let clients = [
        (
            "MP client (Fig. 1/3)",
            f("crates/structures/src/clients.rs") / 2,
        ),
        (
            "SPSC client (§3.2)",
            f("crates/structures/src/clients.rs") / 2,
        ),
    ];

    let mut t = Table::new(&[
        "artifact",
        "kind",
        "LoC (impl + checkers)",
        "paper (Coq proof)",
    ]);
    for (name, n) in &libraries {
        t.row(&[
            name.to_string(),
            "library".to_string(),
            n.to_string(),
            "1.5–3.0 KLOC".to_string(),
        ]);
    }
    for (name, n) in &clients {
        t.row(&[
            name.to_string(),
            "client".to_string(),
            n.to_string(),
            "0.1–0.5 KLOC".to_string(),
        ]);
    }
    println!("{t}");

    let mut lib_sizes: Vec<u64> = libraries.iter().map(|&(_, n)| n).collect();
    lib_sizes.sort_unstable();
    let median = lib_sizes[lib_sizes.len() / 2];
    println!(
        "\nLibrary sizes: {}–{} LoC, median {} (paper: 1.5–3.0 KLOC, median 2.1 KLOC).",
        lib_sizes.first().unwrap(),
        lib_sizes.last().unwrap(),
        median
    );
    println!(
        "Shape preserved: libraries cost roughly an order of magnitude more than \
         clients, and checking\n(this artifact) costs roughly an order of magnitude \
         less than proving (the paper's Coq)."
    );

    // Whole-repo inventory, for EXPERIMENTS.md.
    let mut t2 = Table::new(&["crate", "LoC (non-blank, non-comment)"]);
    let mut crate_loc = Json::obj();
    for c in ["orc11", "compass", "structures", "native", "bench"] {
        let dir = root.join("crates").join(c).join("src");
        let mut total = 0;
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            if let Ok(rd) = std::fs::read_dir(&d) {
                for e in rd.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|x| x == "rs") {
                        total += loc(&p);
                    }
                }
            }
        }
        t2.row(&[format!("crates/{c}"), total.to_string()]);
        crate_loc = crate_loc.set(c, total);
    }
    println!("\n{t2}");

    let to_obj = |entries: &[(&str, u64)]| {
        entries
            .iter()
            .fold(Json::obj(), |j, &(name, n)| j.set(name, n))
    };
    m.set("libraries_loc", to_obj(&libraries));
    m.set("clients_loc", to_obj(&clients));
    m.set("library_median_loc", median);
    m.set("crates_loc", crate_loc);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
