//! Compares performance-trajectory documents (`BENCH_<n>.json`) and
//! flags regressions — the gate `scripts/run_bench.sh` and CI's
//! perf-smoke step run after every recorded benchmark.
//!
//! ```text
//! bench_compare --check FILE                 # validate one document
//! bench_compare [--threshold PCT] OLD NEW    # compare two documents
//! bench_compare [--threshold PCT] DIR        # compare newest two in DIR
//! ```
//!
//! A regression is a >20% (configurable) drop in throughput or rise in
//! p99 latency at any `(structure, threads)` point present in both
//! documents, or the same drop in explorer execs/sec. Exit codes: 0 =
//! ok, 1 = regression, 2 = usage/parse/validation error. All logic
//! lives in [`compass_bench::perf`] so tests can drive it directly.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(compass_bench::perf::compare_cli(&args));
}
