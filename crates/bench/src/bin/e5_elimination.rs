//! E5 — the exchanger and the compositional elimination stack
//! (Figure 5, §4).
//!
//! Checks, over explored executions: the exchanger's consistency
//! (symmetric so, value crossover, atomic helping pairs); the elimination
//! stack's `StackConsistent` built compositionally from the base stack's
//! and exchanger's events; and that eliminations actually occur.

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_bench::workloads::elim_stats;
use orc11::Json;

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e5_elimination");
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    println!("E5 — exchanger + elimination stack (Figure 5 / §4), {seeds} seeds\n");
    let mut by_patience = Json::arr();
    for patience in [1, 3, 6] {
        let s = elim_stats(0..seeds, patience);
        m.add_phases(&s.phase_ns);
        m.add_workers(&s.workers);
        by_patience = by_patience.push(
            Json::obj()
                .set("patience", u64::from(patience))
                .set("stats", s.to_json()),
        );
        let mut t = Table::new(&[&format!("patience = {patience}"), "count", "of runs"]);
        let row = |t: &mut Table, name: &str, n: u64| {
            t.row(&[name.to_string(), n.to_string(), s.runs.to_string()]);
        };
        row(&mut t, "ES StackConsistent", s.es_consistent);
        row(&mut t, "ES linearizable (LAT_hb^hist)", s.es_hist_ok);
        row(&mut t, "base stack StackConsistent", s.base_consistent);
        row(&mut t, "exchanger ExchangerConsistent", s.ex_consistent);
        row(&mut t, "model errors", s.model_errors);
        t.row(&[
            "eliminated pairs (total)".to_string(),
            s.eliminations.to_string(),
            String::new(),
        ]);
        t.row(&[
            "successful exchanges (total)".to_string(),
            s.exchanges.to_string(),
            String::new(),
        ]);
        println!("{t}\n");
    }
    println!(
        "Expected shape (paper §4): all consistency rows = 100% of runs at every \
         patience; eliminated\npairs grow with patience (more time in the exchanger \
         ⇒ more matches); each eliminated pair is\ntwo successful exchanges committed \
         atomically together."
    );
    m.param("seeds", seeds);
    m.set("by_patience", by_patience);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
