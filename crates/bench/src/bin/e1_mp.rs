//! E1 — the Message-Passing client of Figure 1/3.
//!
//! Reproduces: with a release flag write, the flag-synchronized dequeuer
//! returns 41 or 42, never empty (paper: "return 41 or 42, not empty");
//! queue consistency holds throughout. Ablation: a relaxed flag write
//! makes empty a consistent outcome — the guarantee comes from combining
//! QUEUE-EMPDEQ with the client's external synchronization.

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_structures::clients::{check_mp, run_mp};
use compass_structures::queue::{HwQueue, MsQueue};
use orc11::{sync::Mutex, Explorer, Json, Val, WorkSpec};

#[derive(Default)]
struct Tally {
    v41: u64,
    v42: u64,
    empty: u64,
    violations: u64,
    errors: u64,
}

fn tally<Q: compass_structures::queue::ModelQueue>(
    make: impl Fn(&mut orc11::ThreadCtx) -> Q + Copy + Send + Sync,
    release_flag: bool,
    seeds: u64,
) -> (Tally, orc11::ExploreReport) {
    let tl = Mutex::new(Tally::default());
    let report = Explorer::default().explore(
        &WorkSpec::Random {
            iters: seeds,
            seed0: 0,
        },
        &|strategy| run_mp(make, release_flag, strategy),
        |_, out| {
            let mut tl = tl.lock();
            match &out.result {
                Err(_) => tl.errors += 1,
                Ok(res) => {
                    match res.right_value {
                        Some(Val::Int(41)) => tl.v41 += 1,
                        Some(Val::Int(42)) => tl.v42 += 1,
                        Some(_) => tl.violations += 1,
                        None => tl.empty += 1,
                    }
                    if check_mp(res, release_flag).is_err() {
                        tl.violations += 1;
                    }
                }
            }
        },
    );
    (tl.into_inner(), report)
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e1_mp");
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!("E1 — Message-Passing client of queues (Figure 1/3), {seeds} seeds each\n");
    let mut t = Table::new(&[
        "queue",
        "flag write",
        "got 41",
        "got 42",
        "empty",
        "violations",
        "model errors",
    ]);
    let mut rows = Json::arr();
    let mut add = |t: &mut Table, name: &str, release_flag: bool, tl: Tally| {
        let flag = if release_flag {
            "release"
        } else {
            "relaxed (ablation)"
        };
        t.row(&[
            name.to_string(),
            flag.to_string(),
            tl.v41.to_string(),
            tl.v42.to_string(),
            tl.empty.to_string(),
            tl.violations.to_string(),
            tl.errors.to_string(),
        ]);
        let row = Json::obj()
            .set("queue", name)
            .set(
                "flag_write",
                if release_flag { "release" } else { "relaxed" },
            )
            .set("got_41", tl.v41)
            .set("got_42", tl.v42)
            .set("empty", tl.empty)
            .set("violations", tl.violations)
            .set("model_errors", tl.errors);
        let r = std::mem::replace(&mut rows, Json::Null);
        rows = r.push(row);
    };
    for release in [true, false] {
        let (tl, report) = tally(MsQueue::new, release, seeds);
        m.add_phases(&report.phase_ns);
        m.add_workers(&report.workers);
        add(&mut t, "Michael-Scott (rel/acq)", release, tl);
    }
    for release in [true, false] {
        let (tl, report) = tally(|ctx| HwQueue::new(ctx, 4), release, seeds);
        m.add_phases(&report.phase_ns);
        m.add_workers(&report.workers);
        add(&mut t, "Herlihy-Wing (relaxed)", release, tl);
    }
    println!("{t}");
    println!(
        "\nExpected shape (paper): with the release flag, `empty` and `violations` \
         are 0 — the right-most\nthread always gets 41 or 42. With the relaxed-flag \
         ablation, `empty` appears but `violations`\nstays 0: the outcome is allowed \
         once the external synchronization is gone."
    );
    m.param("seeds", seeds);
    m.set("configurations", rows);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
