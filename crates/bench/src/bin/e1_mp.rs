//! E1 — the Message-Passing client of Figure 1/3.
//!
//! Reproduces: with a release flag write, the flag-synchronized dequeuer
//! returns 41 or 42, never empty (paper: "return 41 or 42, not empty");
//! queue consistency holds throughout. Ablation: a relaxed flag write
//! makes empty a consistent outcome — the guarantee comes from combining
//! QUEUE-EMPDEQ with the client's external synchronization.

use compass_bench::table::Table;
use compass_structures::clients::{check_mp, run_mp};
use compass_structures::queue::{HwQueue, MsQueue};
use orc11::{random_strategy, Val};

struct Tally {
    v41: u64,
    v42: u64,
    empty: u64,
    violations: u64,
    errors: u64,
}

fn tally<Q: compass_structures::queue::ModelQueue>(
    name: &str,
    make: impl Fn(&mut orc11::ThreadCtx) -> Q + Copy,
    release_flag: bool,
    seeds: u64,
    t: &mut Table,
) {
    let mut tl = Tally {
        v41: 0,
        v42: 0,
        empty: 0,
        violations: 0,
        errors: 0,
    };
    for seed in 0..seeds {
        match run_mp(make, release_flag, random_strategy(seed)).result {
            Err(_) => tl.errors += 1,
            Ok(res) => {
                match res.right_value {
                    Some(v) if v == Val::Int(41) => tl.v41 += 1,
                    Some(v) if v == Val::Int(42) => tl.v42 += 1,
                    Some(_) => tl.violations += 1,
                    None => tl.empty += 1,
                }
                if check_mp(&res, release_flag).is_err() {
                    tl.violations += 1;
                }
            }
        }
    }
    t.row(&[
        name.to_string(),
        if release_flag { "release" } else { "relaxed (ablation)" }.to_string(),
        tl.v41.to_string(),
        tl.v42.to_string(),
        tl.empty.to_string(),
        tl.violations.to_string(),
        tl.errors.to_string(),
    ]);
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!("E1 — Message-Passing client of queues (Figure 1/3), {seeds} seeds each\n");
    let mut t = Table::new(&[
        "queue", "flag write", "got 41", "got 42", "empty", "violations", "model errors",
    ]);
    tally("Michael-Scott (rel/acq)", MsQueue::new, true, seeds, &mut t);
    tally("Michael-Scott (rel/acq)", MsQueue::new, false, seeds, &mut t);
    tally("Herlihy-Wing (relaxed)", |ctx| HwQueue::new(ctx, 4), true, seeds, &mut t);
    tally("Herlihy-Wing (relaxed)", |ctx| HwQueue::new(ctx, 4), false, seeds, &mut t);
    println!("{t}");
    println!(
        "\nExpected shape (paper): with the release flag, `empty` and `violations` \
         are 0 — the right-most\nthread always gets 41 or 42. With the relaxed-flag \
         ablation, `empty` appears but `violations`\nstays 0: the outcome is allowed \
         once the external synchronization is gone."
    );
}
