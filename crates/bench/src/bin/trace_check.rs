//! `trace_check <trace.json> [max-tid]` — structural validator for
//! Chrome trace-event files written by `orc11::trace` (CI's trace-smoke
//! step runs it against an `e8_litmus` trace).
//!
//! Checks, via [`orc11::trace::validate_trace_file`]: the file parses as
//! JSON with a `traceEvents` array, every event sits on pid 0 with a
//! `u32` tid, timestamps are monotone per track, B/E duration events are
//! well nested per track (matched by name, stacks empty at the end), and
//! counter events carry a numeric `args.value`. With the optional
//! `max-tid` argument it also requires every worker-range tid (< 1000,
//! i.e. not an anonymous-thread track) to be at most `max-tid` — pass
//! the worker thread count, since worker `i` records as tid `i + 1`.
//!
//! Exit status: 0 if the trace validates, 1 otherwise (message on
//! stderr) — so shell scripts can gate on it directly.

use std::path::Path;
use std::process::ExitCode;

use orc11::trace::validate_trace_file;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.json> [max-tid]");
        return ExitCode::FAILURE;
    };
    let max_tid: Option<u32> = match args.next() {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("trace_check: max-tid must be an integer, got {s:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    match validate_trace_file(Path::new(&path)) {
        Err(msg) => {
            eprintln!("trace_check: {path}: INVALID: {msg}");
            ExitCode::FAILURE
        }
        Ok(check) => {
            if let Some(cap) = max_tid {
                // Anonymous (non-worker) threads get tids >= 1000; the
                // worker range is main (0) plus worker i at i + 1.
                if check.max_tid < 1000 && check.max_tid > cap {
                    eprintln!(
                        "trace_check: {path}: INVALID: worker tid {} exceeds \
                         the declared maximum {cap}",
                        check.max_tid
                    );
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "trace_check: {path}: ok — {} events ({} spans, {} counters) on {} tracks",
                check.events, check.spans, check.counters, check.tracks
            );
            ExitCode::SUCCESS
        }
    }
}
