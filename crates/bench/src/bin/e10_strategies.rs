//! E10 — scheduler-strategy comparison: how effectively do uniform
//! random and PCT exploration find known relaxed-memory bugs?
//!
//! Subjects: the acquire-release (weak-fence) Chase-Lev deque's
//! double-take bug, and the relaxed-tail Herlihy-Wing queue's FIFO bug.
//! PCT (priority-based with d change points) is expected to find
//! small-depth ordering bugs at a much higher rate than uniform random
//! scheduling — this experiment quantifies it on this framework.

use compass::deque_spec::check_deque_consistent;
use compass::queue_spec::check_queue_consistent;
use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_structures::buggy::RelaxedHwQueue;
use compass_structures::deque::ChaseLevDeque;
use compass_structures::queue::ModelQueue;
use orc11::Json;
use orc11::{
    pct_strategy, random_strategy, run_model, BodyFn, Config, Loc, Mode, Strategy, ThreadCtx, Val,
};

fn weak_deque_buggy(strategy: Box<dyn Strategy>) -> bool {
    let out = run_model(
        &Config::default(),
        strategy,
        |ctx| ChaseLevDeque::new_weak_fences(ctx, 8),
        vec![
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.push(ctx, Val::Int(1));
                d.push(ctx, Val::Int(2));
                d.pop(ctx);
                d.pop(ctx);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.steal(ctx);
            }),
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.steal(ctx);
            }),
        ],
        |_, d, _| d.obj().snapshot(),
    );
    matches!(out.result, Ok(g) if check_deque_consistent(&g).is_err())
}

fn weak_hw_buggy(strategy: Box<dyn Strategy>) -> bool {
    let out = run_model(
        &Config::default(),
        strategy,
        |ctx| {
            let q = RelaxedHwQueue::new(ctx, 4);
            let flag = ctx.alloc("flag", Val::Int(0));
            (q, flag)
        },
        vec![
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                q.enqueue(ctx, Val::Int(10));
                ctx.write(*flag, Val::Int(1), Mode::Release);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                q.enqueue(ctx, Val::Int(20));
            }),
            Box::new(|ctx: &mut ThreadCtx, (q, _): &(RelaxedHwQueue, Loc)| {
                q.try_dequeue(ctx);
            }),
        ],
        |_, (q, _), _| q.obj().snapshot(),
    );
    matches!(out.result, Ok(g) if check_queue_consistent(&g).is_err())
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    println!("E10 — bug-finding rate by scheduling strategy, {n} executions each\n");
    let mut t = Table::new(&["bug", "uniform random", "PCT d=2", "PCT d=3", "PCT d=5"]);
    let count = |f: fn(Box<dyn Strategy>) -> bool, mk: &dyn Fn(u64) -> Box<dyn Strategy>| {
        (0..n).filter(|&s| f(mk(s))).count()
    };
    let mut bugs = Json::obj();
    for (name, f) in [
        (
            "Chase-Lev double-take (weak fences)",
            weak_deque_buggy as fn(Box<dyn Strategy>) -> bool,
        ),
        ("Herlihy-Wing FIFO (relaxed tail)", weak_hw_buggy),
    ] {
        let random = count(f, &|s| random_strategy(s));
        let pct2 = count(f, &|s| pct_strategy(s, 2, 40));
        let pct3 = count(f, &|s| pct_strategy(s, 3, 40));
        let pct5 = count(f, &|s| pct_strategy(s, 5, 40));
        t.row(&[
            name.to_string(),
            format!("{random}/{n}"),
            format!("{pct2}/{n}"),
            format!("{pct3}/{n}"),
            format!("{pct5}/{n}"),
        ]);
        let b = std::mem::replace(&mut bugs, Json::Null);
        bugs = b.set(
            name,
            Json::obj()
                .set("random", random)
                .set("pct_d2", pct2)
                .set("pct_d3", pct3)
                .set("pct_d5", pct5),
        );
    }
    println!("{t}");
    println!(
        "\nExpected shape: PCT finds these small-depth ordering bugs at a much higher \
         rate than\nuniform random scheduling (Burckhardt et al., ASPLOS 2010) — an \
         order of magnitude or more."
    );
    let mut m = Metrics::new("e10_strategies");
    m.param("executions", n);
    m.set("bugs_found", bugs);
    m.write_or_warn();
}
