//! E10 — scheduler-strategy comparison: how effectively do uniform
//! random and PCT exploration find known relaxed-memory bugs?
//!
//! Subjects: the acquire-release (weak-fence) Chase-Lev deque's
//! double-take bug, and the relaxed-tail Herlihy-Wing queue's FIFO bug.
//! PCT (priority-based with d change points) is expected to find
//! small-depth ordering bugs at a much higher rate than uniform random
//! scheduling — this experiment quantifies it on this framework.

use compass::deque_spec::check_deque_consistent;
use compass::queue_spec::check_queue_consistent;
use compass::Graph;
use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_structures::buggy::RelaxedHwQueue;
use compass_structures::deque::ChaseLevDeque;
use compass_structures::queue::ModelQueue;
use orc11::Json;
use orc11::{
    run_model, BodyFn, Config, Explorer, Loc, Mode, Model, RunOutcome, Strategy, ThreadCtx, Val,
    WorkSpec,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// PCT scheduling-decision horizon for these 3-thread subjects.
const HORIZON: u64 = 40;

fn weak_deque_program(
    strategy: Box<dyn Strategy>,
) -> RunOutcome<Graph<compass::deque_spec::DequeEvent>> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| ChaseLevDeque::new_weak_fences(ctx, 8),
        vec![
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.push(ctx, Val::Int(1));
                d.push(ctx, Val::Int(2));
                d.pop(ctx);
                d.pop(ctx);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.steal(ctx);
            }),
            Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                d.steal(ctx);
            }),
        ],
        |_, d, _| d.obj().snapshot(),
    )
}

fn weak_hw_program(
    strategy: Box<dyn Strategy>,
) -> RunOutcome<Graph<compass::queue_spec::QueueEvent>> {
    run_model(
        &Config::default(),
        strategy,
        |ctx| {
            let q = RelaxedHwQueue::new(ctx, 4);
            let flag = ctx.alloc("flag", Val::Int(0));
            (q, flag)
        },
        vec![
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                q.enqueue(ctx, Val::Int(10));
                ctx.write(*flag, Val::Int(1), Mode::Release);
            }) as BodyFn<'_, _, ()>,
            Box::new(|ctx: &mut ThreadCtx, (q, flag): &(RelaxedHwQueue, Loc)| {
                ctx.read_await(*flag, Mode::Acquire, |v| v == Val::Int(1));
                q.enqueue(ctx, Val::Int(20));
            }),
            Box::new(|ctx: &mut ThreadCtx, (q, _): &(RelaxedHwQueue, Loc)| {
                q.try_dequeue(ctx);
            }),
        ],
        |_, (q, _), _| q.obj().snapshot(),
    )
}

/// Executions (out of `spec`) whose graph fails `buggy`'s check, plus
/// the exploration report (phase/worker telemetry for metrics).
fn count_bugs<M: Model>(
    model: &M,
    spec: &WorkSpec,
    buggy: impl Fn(&M::Out) -> bool + Sync,
) -> (u64, orc11::ExploreReport) {
    let hits = AtomicU64::new(0);
    let report = Explorer::default().explore(spec, model, |_, out| {
        if let Ok(g) = &out.result {
            if buggy(g) {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    (hits.load(Ordering::Relaxed), report)
}

/// Bug hits under uniform random and PCT d ∈ {2, 3, 5}, `n` executions
/// each.
fn rates<M: Model>(
    model: &M,
    n: u64,
    buggy: impl Fn(&M::Out) -> bool + Sync,
    m: &mut Metrics,
) -> [u64; 4] {
    let pct = |depth| WorkSpec::Pct {
        iters: n,
        seed0: 0,
        depth,
        horizon: HORIZON,
    };
    let mut run = |spec: &WorkSpec| {
        let (hits, report) = count_bugs(model, spec, &buggy);
        m.add_phases(&report.phase_ns);
        m.add_workers(&report.workers);
        hits
    };
    [
        run(&WorkSpec::Random { iters: n, seed0: 0 }),
        run(&pct(2)),
        run(&pct(3)),
        run(&pct(5)),
    ]
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e10_strategies");
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    println!("E10 — bug-finding rate by scheduling strategy, {n} executions each\n");
    let mut t = Table::new(&["bug", "uniform random", "PCT d=2", "PCT d=3", "PCT d=5"]);
    let mut bugs = Json::obj();
    for (name, [random, pct2, pct3, pct5]) in [
        (
            "Chase-Lev double-take (weak fences)",
            rates(
                &weak_deque_program,
                n,
                |g| check_deque_consistent(g).is_err(),
                &mut m,
            ),
        ),
        (
            "Herlihy-Wing FIFO (relaxed tail)",
            rates(
                &weak_hw_program,
                n,
                |g| check_queue_consistent(g).is_err(),
                &mut m,
            ),
        ),
    ] {
        t.row(&[
            name.to_string(),
            format!("{random}/{n}"),
            format!("{pct2}/{n}"),
            format!("{pct3}/{n}"),
            format!("{pct5}/{n}"),
        ]);
        let b = std::mem::replace(&mut bugs, Json::Null);
        bugs = b.set(
            name,
            Json::obj()
                .set("random", random)
                .set("pct_d2", pct2)
                .set("pct_d3", pct3)
                .set("pct_d5", pct5),
        );
    }
    println!("{t}");
    println!(
        "\nExpected shape: PCT finds these small-depth ordering bugs at a much higher \
         rate than\nuniform random scheduling (Burckhardt et al., ASPLOS 2010) — an \
         order of magnitude or more."
    );
    m.param("executions", n);
    m.set("bugs_found", bugs);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
