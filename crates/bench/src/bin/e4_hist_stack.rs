//! E4 — `LAT_hb^hist` for the Treiber stack (Figure 4, §3.3).
//!
//! Every explored execution of the relaxed Treiber stack must admit a
//! linearization `to` that respects lhb and interprets as a sequential
//! LIFO history. The paper constructs `to` from the modification order of
//! the head CASes; in this framework that order *is* the commit order, so
//! we also report how often the commit order is directly a witness
//! (executions with stale empty-pop reads need the reordering freedom the
//! `to ⊇ lhb` formulation grants).

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_bench::workloads::treiber_hist_stats;

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e4_hist_stack");
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!(
        "E4 — linearizable histories for the relaxed Treiber stack (Figure 4), {seeds} seeds\n"
    );
    let s = treiber_hist_stats(0..seeds);
    let mut t = Table::new(&["metric", "count", "of runs"]);
    let row = |t: &mut Table, name: &str, n: u64| {
        t.row(&[name.to_string(), n.to_string(), s.runs.to_string()]);
    };
    row(&mut t, "StackConsistent (LAT_hb)", s.consistent);
    row(&mut t, "linearization exists (LAT_hb^hist)", s.hist_ok);
    row(
        &mut t,
        "commit (mo) order is itself a witness",
        s.commit_order_witness,
    );
    row(&mut t, "runs containing empty pops", s.with_emp_pops);
    row(&mut t, "model errors", s.model_errors);
    println!("{t}");
    println!(
        "\nExpected shape (paper §3.3): both consistency and linearizability hold on \
         100% of runs; the\nraw commit order is a witness for most runs but not those \
         where an empty pop read a stale\nnull head — exactly the reordering \
         (`to ⊇ lhb`, not `to = mo`) the spec permits."
    );
    m.param("seeds", seeds);
    m.add_phases(&s.phase_ns);
    m.add_workers(&s.workers);
    m.set("treiber", s.to_json());
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
