//! E9 — the Chase-Lev work-stealing deque (the paper's §6 future work),
//! checked on the framework, with the SC-fence ablation.
//!
//! For the correctly fenced deque, every explored execution satisfies
//! `DequeConsistent` and admits a linearization. Replacing the SC fences
//! with acquire-release ones reintroduces the famous double-take bug,
//! which `DEQUE-INJ`/`DEQUE-MATCHES` catch.

use compass::deque_spec::{check_deque_consistent, mutator_subgraph, DequeInterp};
use compass::history::find_linearization;
use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_structures::deque::ChaseLevDeque;
use orc11::{random_strategy, run_model, BodyFn, Config, Json, ThreadCtx, Val};

struct Row {
    consistent: u64,
    hist_ok: u64,
    violations: u64,
    errors: u64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("consistent", self.consistent)
            .set("hist_ok", self.hist_ok)
            .set("violations", self.violations)
            .set("model_errors", self.errors)
    }
}

fn run(make: impl Fn(&mut ThreadCtx, u32) -> ChaseLevDeque + Sync, seeds: u64) -> Row {
    let mut row = Row {
        consistent: 0,
        hist_ok: 0,
        violations: 0,
        errors: 0,
    };
    for seed in 0..seeds {
        let out = run_model(
            &Config::default(),
            random_strategy(seed),
            |ctx| make(ctx, 8),
            vec![
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.push(ctx, Val::Int(1));
                    d.push(ctx, Val::Int(2));
                    d.pop(ctx);
                    d.pop(ctx);
                }) as BodyFn<'_, _, ()>,
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.steal(ctx);
                }),
                Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                    d.steal(ctx);
                }),
            ],
            |_, d, _| d.obj().snapshot(),
        );
        match out.result {
            Err(_) => row.errors += 1,
            Ok(g) => {
                if check_deque_consistent(&g).is_ok() {
                    row.consistent += 1;
                } else {
                    row.violations += 1;
                }
                if find_linearization(&mutator_subgraph(&g), &DequeInterp, &[]).is_some() {
                    row.hist_ok += 1;
                }
            }
        }
    }
    row
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e9_deque");
    let phase_mark = orc11::trace::thread_phases();
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500);
    println!("E9 — Chase-Lev work-stealing deque (§6 future work), {seeds} seeds each\n");
    let mut t = Table::new(&[
        "variant",
        "DequeConsistent",
        "mutators linearizable",
        "violations",
        "model errors",
    ]);
    let strong = run(ChaseLevDeque::new, seeds);
    t.row(&[
        "SC fences (correct)".into(),
        format!("{}/{seeds}", strong.consistent),
        format!("{}/{seeds}", strong.hist_ok),
        strong.violations.to_string(),
        strong.errors.to_string(),
    ]);
    let weak = run(ChaseLevDeque::new_weak_fences, seeds);
    t.row(&[
        "acq-rel fences (ablation)".into(),
        format!("{}/{seeds}", weak.consistent),
        format!("{}/{seeds}", weak.hist_ok),
        weak.violations.to_string(),
        weak.errors.to_string(),
    ]);
    println!("{t}");
    println!(
        "\nExpected shape: the SC-fenced deque is consistent and linearizable on every \
         run; the\nacquire-release ablation exhibits the classic double-take bug \
         (violations > 0) — the checker\ncatches the exact defect the SC fences exist \
         to prevent (Lê et al., PPoPP 2013)."
    );
    m.param("seeds", seeds);
    m.set("sc_fences", strong.to_json());
    m.set("acq_rel_fences", weak.to_json());
    // Serial run: the thread-local phase delta is the run's breakdown.
    m.add_phases(&orc11::trace::thread_phases().delta_since(&phase_mark));
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
