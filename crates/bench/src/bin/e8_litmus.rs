//! E8 — litmus gallery validating the ORC11-style substrate (§2.3/§5).
//!
//! Exhaustively explores the classic shapes and prints outcome
//! histograms, asserting allowed outcomes appear and forbidden ones never
//! do.

use compass_bench::metrics::Metrics;
use orc11::litmus::{gallery, LitmusReport};
use orc11::Json;

fn litmus_json(r: &LitmusReport) -> Json {
    let histogram = r.histogram.iter().fold(Json::arr(), |j, (outcome, count)| {
        j.push(
            Json::obj()
                .set("outcome", outcome.clone())
                .set("count", *count),
        )
    });
    Json::obj()
        .set("histogram", histogram)
        .set("report", r.report.to_json())
}

fn main() {
    let mut m = Metrics::new("e8_litmus");
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    println!("E8 — litmus gallery (exhaustive DFS, budget {budget} executions per test)\n");
    let mut tests = Json::obj();
    let mut add = |name: &str, r: &LitmusReport| {
        let t = std::mem::replace(&mut tests, Json::Null);
        tests = t.set(name, litmus_json(r));
    };

    let mp = gallery::mp_rel_acq().dfs(budget);
    mp.assert_never(&[0, 0]);
    mp.assert_observable(&[0, 1]);
    println!("{mp}  ⇒ stale read FORBIDDEN (release/acquire) ✓\n");
    add("mp_rel_acq", &mp);

    let mpr = gallery::mp_relaxed().dfs(budget);
    mpr.assert_observable(&[0, 0]);
    println!("{mpr}  ⇒ stale read ALLOWED (relaxed flag) ✓\n");
    add("mp_relaxed", &mpr);

    let mpf = gallery::mp_fences().dfs(budget);
    mpf.assert_never(&[0, 0]);
    println!("{mpf}  ⇒ stale read FORBIDDEN (rel/acq fences) ✓\n");
    add("mp_fences", &mpf);

    let sb = gallery::sb().dfs(budget);
    sb.assert_observable(&[0, 0]);
    println!("{sb}  ⇒ store buffering ALLOWED ✓\n");
    add("sb", &sb);

    let corr = gallery::corr().dfs(budget);
    corr.report.assert_all_ok();
    println!("{corr}  ⇒ coherence respected ✓\n");
    add("corr", &corr);

    let iriw = gallery::iriw_acq().dfs(budget);
    iriw.assert_observable(&[0, 0, 10, 10]);
    println!("{iriw}  ⇒ IRIW disagreement ALLOWED under acquire reads (RC11, unlike SC) ✓\n");
    add("iriw_acq", &iriw);

    let lb = gallery::lb().dfs(budget);
    lb.assert_never(&[1, 1]);
    println!("{lb}  ⇒ load buffering FORBIDDEN (po ∪ rf acyclic, the ORC11 restriction) ✓\n");
    add("lb", &lb);

    let ttw = gallery::two_plus_two_w().dfs(budget);
    assert!(!ttw.observed(&[0, 0, 1, 1]));
    println!(
        "{ttw}  ⇒ 2+2W weak outcome absent (append-only mo — documented model limitation) ✓\n"
    );
    add("two_plus_two_w", &ttw);

    let cowr = gallery::cowr().dfs(budget);
    cowr.assert_never(&[0, 0]);
    println!("{cowr}  ⇒ coherence write-read ✓\n");
    add("cowr", &cowr);

    let rs = gallery::release_sequence().dfs(budget);
    rs.assert_never(&[0, 0, 0]);
    println!("{rs}  ⇒ release sequences through relaxed RMWs ✓\n");
    add("release_sequence", &rs);

    let rmw = gallery::rmw_atomicity().dfs(budget);
    for outcome in rmw.histogram.keys() {
        assert_ne!(outcome.as_slice(), &[1, 1], "RMWs must not duplicate");
    }
    println!("{rmw}  ⇒ RMW atomicity ✓");
    add("rmw_atomicity", &rmw);

    m.param("budget", budget);
    m.set("tests", tests);
    m.write_or_warn();
}
