//! E8 — litmus gallery validating the ORC11-style substrate (§2.3/§5).
//!
//! Exhaustively explores the classic shapes and prints outcome
//! histograms, asserting allowed outcomes appear and forbidden ones never
//! do. Every test runs twice — plain DFS and DPOR-pruned DFS — and the
//! two must agree on the outcome set; the final table shows how many
//! executions the partial-order reduction saved on each shape.

use compass_bench::metrics::Metrics;
use orc11::litmus::{gallery, Litmus, LitmusReport};
use orc11::Json;

/// One gallery entry explored both ways, outcome sets already checked
/// equal.
struct Row {
    name: String,
    plain: LitmusReport,
    dpor: LitmusReport,
}

impl Row {
    /// Runs `t` under plain and DPOR DFS; the reduction is only
    /// meaningful (and the comparison only fair) if both exhaust.
    fn run<S: Sync + 'static>(t: &Litmus<S>, budget: u64) -> Row {
        let plain = t.dfs_plain(budget);
        let dpor = t.dfs_dpor(budget);
        assert!(
            plain.report.exhausted && dpor.report.exhausted,
            "{}: both explorations must exhaust within budget {budget}",
            t.name()
        );
        let plain_keys: Vec<_> = plain.histogram.keys().collect();
        let dpor_keys: Vec<_> = dpor.histogram.keys().collect();
        assert_eq!(
            plain_keys,
            dpor_keys,
            "{}: DPOR changed the outcome set",
            t.name()
        );
        Row {
            name: t.name().to_string(),
            plain,
            dpor,
        }
    }

    fn to_json(&self) -> Json {
        let histogram = self
            .plain
            .histogram
            .iter()
            .fold(Json::arr(), |j, (outcome, count)| {
                j.push(
                    Json::obj()
                        .set("outcome", outcome.clone())
                        .set("count", *count),
                )
            });
        let stats = self.dpor.report.dpor.as_ref().expect("DPOR run has stats");
        Json::obj()
            .set("histogram", histogram)
            .set("plain_execs", self.plain.report.execs)
            .set("dpor_execs", self.dpor.report.execs)
            .set("dpor_backtrack_points", stats.backtrack_points)
            .set("dpor_sleep_hits", stats.sleep_hits)
            .set("dpor_pruned_subtrees", stats.pruned_subtrees)
            .set("report", self.plain.report.to_json())
    }
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e8_litmus");
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    println!("E8 — litmus gallery (exhaustive DFS, budget {budget} executions per test)\n");
    let mut rows: Vec<Row> = Vec::new();
    let mut tests = Json::obj();
    let add = |rows: &mut Vec<Row>, tests: &mut Json, row: Row| {
        let t = std::mem::replace(tests, Json::Null);
        *tests = t.set(row.name.as_str(), row.to_json());
        rows.push(row);
    };

    let mp = Row::run(&gallery::mp_rel_acq(), budget);
    mp.plain.assert_never(&[0, 0]);
    mp.plain.assert_observable(&[0, 1]);
    println!("{}  ⇒ stale read FORBIDDEN (release/acquire) ✓\n", mp.plain);
    add(&mut rows, &mut tests, mp);

    let mpr = Row::run(&gallery::mp_relaxed(), budget);
    mpr.plain.assert_observable(&[0, 0]);
    println!("{}  ⇒ stale read ALLOWED (relaxed flag) ✓\n", mpr.plain);
    add(&mut rows, &mut tests, mpr);

    let mpf = Row::run(&gallery::mp_fences(), budget);
    mpf.plain.assert_never(&[0, 0]);
    println!("{}  ⇒ stale read FORBIDDEN (rel/acq fences) ✓\n", mpf.plain);
    add(&mut rows, &mut tests, mpf);

    let sb = Row::run(&gallery::sb(), budget);
    sb.plain.assert_observable(&[0, 0]);
    println!("{}  ⇒ store buffering ALLOWED ✓\n", sb.plain);
    add(&mut rows, &mut tests, sb);

    let sbf = Row::run(&gallery::sb_sc_fences(), budget);
    sbf.plain.assert_never(&[0, 0]);
    println!("{}  ⇒ store buffering FORBIDDEN (SC fences) ✓\n", sbf.plain);
    add(&mut rows, &mut tests, sbf);

    let corr = Row::run(&gallery::corr(), budget);
    corr.plain.report.assert_all_ok();
    println!("{}  ⇒ coherence respected ✓\n", corr.plain);
    add(&mut rows, &mut tests, corr);

    let iriw = Row::run(&gallery::iriw_acq(), budget);
    iriw.plain.assert_observable(&[0, 0, 10, 10]);
    println!(
        "{}  ⇒ IRIW disagreement ALLOWED under acquire reads (RC11, unlike SC) ✓\n",
        iriw.plain
    );
    add(&mut rows, &mut tests, iriw);

    let lb = Row::run(&gallery::lb(), budget);
    lb.plain.assert_never(&[1, 1]);
    println!(
        "{}  ⇒ load buffering FORBIDDEN (po ∪ rf acyclic, the ORC11 restriction) ✓\n",
        lb.plain
    );
    add(&mut rows, &mut tests, lb);

    let ttw = Row::run(&gallery::two_plus_two_w(), budget);
    assert!(!ttw.plain.observed(&[0, 0, 1, 1]));
    println!(
        "{}  ⇒ 2+2W weak outcome absent (append-only mo — documented model limitation) ✓\n",
        ttw.plain
    );
    add(&mut rows, &mut tests, ttw);

    let cowr = Row::run(&gallery::cowr(), budget);
    cowr.plain.assert_never(&[0, 0]);
    println!("{}  ⇒ coherence write-read ✓\n", cowr.plain);
    add(&mut rows, &mut tests, cowr);

    let rs = Row::run(&gallery::release_sequence(), budget);
    rs.plain.assert_never(&[0, 0, 0]);
    println!("{}  ⇒ release sequences through relaxed RMWs ✓\n", rs.plain);
    add(&mut rows, &mut tests, rs);

    let rmw = Row::run(&gallery::rmw_atomicity(), budget);
    for outcome in rmw.plain.histogram.keys() {
        assert_ne!(outcome.as_slice(), &[1, 1], "RMWs must not duplicate");
    }
    println!("{}  ⇒ RMW atomicity ✓\n", rmw.plain);
    add(&mut rows, &mut tests, rmw);

    println!("Partial-order reduction (identical outcome sets, fewer executions):\n");
    println!(
        "  {:<18} {:>10} {:>10} {:>9}",
        "test", "plain DFS", "DPOR DFS", "reduction"
    );
    for row in &rows {
        let (p, d) = (row.plain.report.execs, row.dpor.report.execs);
        println!(
            "  {:<18} {:>10} {:>10} {:>8.2}x",
            row.name,
            p,
            d,
            p as f64 / d as f64
        );
    }

    for row in &rows {
        m.add_phases(&row.plain.report.phase_ns);
        m.add_phases(&row.dpor.report.phase_ns);
        m.add_workers(&row.plain.report.workers);
        m.add_workers(&row.dpor.report.workers);
    }
    m.param("budget", budget);
    m.set("tests", tests);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
