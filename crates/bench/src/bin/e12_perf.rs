//! E12 — the performance trajectory (DESIGN.md §9, ROADMAP item 4).
//!
//! Drives every native structure — MsQueue, HwQueue, TreiberStack,
//! ElimStack, exchanger, SPSC ring, Chase-Lev deque — plus the mutex
//! baselines through closed-loop mixed workloads at thread counts
//! {1,2,4,8}, recording per-operation latency histograms
//! (`compass_native::perf`, thread-local, merged at round end) and
//! throughput-vs-threads curves; then times the explorer itself
//! (execs/sec, plain and DPOR DFS) over the e8 litmus gallery so
//! exploration speed is tracked in the same document.
//!
//! Usage: `e12_perf [ops_per_thread=50000] [litmus_budget=200000]`
//!
//! Environment:
//! * `COMPASS_PERF_TCOUNTS` — comma-separated thread counts (default
//!   `1,2,4,8`; the SPSC ring always runs at exactly 2, the exchanger
//!   skips 1).
//! * `COMPASS_PROGRESS` — live round progress (structure, thread count,
//!   ops completed, throughput) on stderr.
//! * `COMPASS_BENCH_OUT` — also write a `BENCH_<n>.json` trajectory
//!   document to this path, stamped with `COMPASS_BENCH_REV` /
//!   `COMPASS_BENCH_DATE` / `COMPASS_BENCH_PRESET` (the binary never
//!   reads the wall clock or the git state itself — provenance comes
//!   from the environment, see `scripts/run_bench.sh`).
//!
//! Latency percentiles live here and in the trajectory documents, not
//! in replay bundles: bundles are byte-deterministic artifacts, and
//! wall-clock-derived numbers would break that (DESIGN.md §9).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use compass_bench::metrics::Metrics;
use compass_bench::perf::{curve_point_json, perf_json, structure_json};
use compass_bench::table::Table;
use compass_bench::timing::{format_ns, LatencyHist};
use compass_native::perf as nperf;
use compass_native::{
    chase_lev, spsc_ring, ConcurrentQueue, ConcurrentStack, ElimStack, Exchanger, HwQueue, MsQueue,
    MutexQueue, MutexStack, TreiberStack,
};
use orc11::litmus::{gallery, Litmus};
use orc11::{Json, ProgressLine};

/// How many elements each structure is seeded with before a round, so
/// consume-side ops don't start against an empty structure.
const PREFILL: u64 = 1024;
/// Ops per progress/claim chunk inside a worker's loop.
const CHUNK: u64 = 1024;

/// One thread's share of a round: called with consecutive op-index
/// ranges totalling `ops_per_thread`.
type Body = Box<dyn FnMut(Range<u64>) + Send>;

/// Runs one closed-loop round: `bodies.len()` threads, barrier-started,
/// each performing `per_thread` ops in chunks. Returns the slowest
/// thread's wall time in nanoseconds (the round's makespan); each
/// thread flushes its perf histograms before returning.
fn round(label: &str, per_thread: u64, progress: &ProgressLine, bodies: Vec<Body>) -> u64 {
    let threads = bodies.len();
    let barrier = Barrier::new(threads);
    let done = AtomicU64::new(0);
    let total = per_thread * threads as u64;
    let walls: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .into_iter()
            .map(|mut body| {
                let barrier = &barrier;
                let done = &done;
                scope.spawn(move || {
                    barrier.wait();
                    let t0 = Instant::now();
                    let mut next = 0u64;
                    while next < per_thread {
                        let end = (next + CHUNK).min(per_thread);
                        body(next..end);
                        if progress.enabled() {
                            let d = done.fetch_add(end - next, Ordering::Relaxed) + (end - next);
                            progress.maybe(|| {
                                let rate = d as f64 / t0.elapsed().as_secs_f64().max(1e-9);
                                format!("{label}: {d}/{total} ops, {rate:.0} ops/s")
                            });
                        }
                        next = end;
                    }
                    let wall = t0.elapsed().as_nanos() as u64;
                    nperf::flush_thread();
                    wall
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    walls.into_iter().max().unwrap_or(0)
}

/// Measures one curve point: an untimed warm-up round (fresh structure,
/// recording off), then a recorded round on another fresh structure.
/// `make` builds the structure, prefills it, and returns the per-thread
/// bodies — all before recording starts, so setup ops are never
/// sampled.
fn point(
    name: &str,
    threads: usize,
    per_thread: u64,
    progress: &ProgressLine,
    make: &dyn Fn(usize, u64) -> Vec<Body>,
) -> Json {
    let warmup_ops = (per_thread / 4).max(256);
    round(
        &format!("{name} t={threads} (warmup)"),
        warmup_ops,
        progress,
        make(threads, warmup_ops),
    );
    let bodies = make(threads, per_thread);
    nperf::start();
    let wall_ns = round(&format!("{name} t={threads}"), per_thread, progress, bodies);
    let by_kind = nperf::finish();
    let mut merged = LatencyHist::new();
    let mut by_op = Vec::new();
    for (kind, hist) in by_kind {
        merged.merge(&hist);
        by_op.push((kind.name().to_string(), hist));
    }
    curve_point_json(
        threads as u64,
        per_thread * threads as u64,
        wall_ns,
        &merged,
        &by_op,
    )
}

/// Parity-mixed closed loop over any [`ConcurrentQueue`]: even op
/// indices (staggered by thread) enqueue, odd dequeue.
fn queue_bodies<Q: ConcurrentQueue<u64> + 'static>(
    q: Arc<Q>,
    threads: usize,
    _per_thread: u64,
) -> Vec<Body> {
    for k in 0..PREFILL {
        q.enqueue(k);
    }
    (0..threads)
        .map(|tid| {
            let q = q.clone();
            Box::new(move |range: Range<u64>| {
                for i in range {
                    if (i + tid as u64) & 1 == 0 {
                        q.enqueue((tid as u64 + 1) * 1_000_000 + i);
                    } else {
                        std::hint::black_box(q.dequeue());
                    }
                }
            }) as Body
        })
        .collect()
}

/// Same parity mix over any [`ConcurrentStack`].
fn stack_bodies<S: ConcurrentStack<u64> + 'static>(
    s: Arc<S>,
    threads: usize,
    _per_thread: u64,
) -> Vec<Body> {
    for k in 0..PREFILL {
        s.push(k);
    }
    (0..threads)
        .map(|tid| {
            let s = s.clone();
            Box::new(move |range: Range<u64>| {
                for i in range {
                    if (i + tid as u64) & 1 == 0 {
                        s.push((tid as u64 + 1) * 1_000_000 + i);
                    } else {
                        std::hint::black_box(s.pop());
                    }
                }
            }) as Body
        })
        .collect()
}

/// All threads rendezvous on one exchanger; unpaired attempts time out
/// and count as (failed) exchanges.
fn exchanger_bodies(threads: usize, _per_thread: u64) -> Vec<Body> {
    let ex: Arc<Exchanger<u64>> = Arc::new(Exchanger::new());
    (0..threads)
        .map(|tid| {
            let ex = ex.clone();
            Box::new(move |range: Range<u64>| {
                for i in range {
                    std::hint::black_box(ex.exchange((tid as u64 + 1) * 1_000_000 + i, 256).ok());
                }
            }) as Body
        })
        .collect()
}

/// Fixed 2-thread pipeline through the SPSC ring: thread 0 blocking-
/// pushes `per_thread` items, thread 1 pops until it has `per_thread`
/// (spinning on the instrumented `try_pop`, so misses are sampled too).
fn spsc_bodies(_threads: usize, _per_thread: u64) -> Vec<Body> {
    let (tx, rx) = spsc_ring::<u64>(4096);
    let mut tx = Some(tx);
    let mut rx = Some(rx);
    vec![
        {
            let tx = tx.take().expect("producer half");
            Box::new(move |range: Range<u64>| {
                for i in range {
                    tx.push(i);
                }
            }) as Body
        },
        {
            let rx = rx.take().expect("consumer half");
            Box::new(move |range: Range<u64>| {
                for _ in range {
                    while rx.try_pop().is_none() {
                        std::hint::spin_loop();
                    }
                }
            }) as Body
        },
    ]
}

/// Chase-Lev: thread 0 owns the deque (parity-mixed push/pop), the rest
/// steal. Capacity covers the owner's total pushes — the deque's buffer
/// is not a ring (see `compass_native::Worker::push`).
fn chase_lev_bodies(threads: usize, per_thread: u64) -> Vec<Body> {
    let (worker, stealer) = chase_lev::<u64>((per_thread / 2 + PREFILL + 2) as usize);
    for k in 0..PREFILL.min(per_thread / 2) {
        worker.push(k);
    }
    let mut bodies: Vec<Body> = vec![Box::new(move |range: Range<u64>| {
        for i in range {
            if i & 1 == 0 {
                worker.push(i);
            } else {
                std::hint::black_box(worker.pop());
            }
        }
    })];
    for _ in 1..threads {
        let s = stealer.clone();
        bodies.push(Box::new(move |range: Range<u64>| {
            for _ in range {
                std::hint::black_box(s.steal());
            }
        }));
    }
    bodies
}

/// Thread counts from `COMPASS_PERF_TCOUNTS`, default {1,2,4,8}.
fn thread_counts() -> Vec<usize> {
    let parsed = std::env::var("COMPASS_PERF_TCOUNTS").ok().map(|s| {
        s.split(',')
            .filter_map(|t| t.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .collect::<Vec<_>>()
    });
    match parsed {
        Some(counts) if !counts.is_empty() => counts,
        _ => vec![1, 2, 4, 8],
    }
}

/// Times one litmus shape under plain and DPOR DFS.
fn shape_speed<S: Sync + 'static>(lit: &Litmus<S>, budget: u64, m: &mut Metrics) -> Json {
    let t0 = Instant::now();
    let plain = lit.dfs_plain(budget);
    let plain_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let dpor = lit.dfs_dpor(budget);
    let dpor_ns = t1.elapsed().as_nanos() as u64;
    m.add_phases(&plain.report.phase_ns);
    m.add_phases(&dpor.report.phase_ns);
    let rate = |execs: u64, ns: u64| execs as f64 * 1e9 / (ns.max(1)) as f64;
    Json::obj()
        .set("name", lit.name())
        .set("plain_execs", plain.report.execs)
        .set("plain_execs_per_sec", rate(plain.report.execs, plain_ns))
        .set("dpor_execs", dpor.report.execs)
        .set("dpor_execs_per_sec", rate(dpor.report.execs, dpor_ns))
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e12_perf");
    let per_thread: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let tcounts = thread_counts();
    let progress = ProgressLine::new(orc11::progress::from_env());

    m.param("ops_per_thread", per_thread);
    m.param("litmus_budget", budget);
    m.param(
        "thread_counts",
        tcounts.iter().fold(Json::arr(), |j, &t| j.push(t as u64)),
    );

    println!("E12 — performance trajectory ({per_thread} ops/thread, litmus budget {budget})\n");

    // name, kind, baseline, thread counts, body factory.
    type Spec<'a> = (
        &'a str,
        &'a str,
        bool,
        Vec<usize>,
        Box<dyn Fn(usize, u64) -> Vec<Body>>,
    );
    let all = tcounts.clone();
    let multi: Vec<usize> = tcounts.iter().copied().filter(|&t| t >= 2).collect();
    let hw_cap = move |threads: usize, ops: u64| (PREFILL + threads as u64 * ops + 1) as usize;
    let structures: Vec<Spec> = vec![
        (
            "MsQueue",
            "queue",
            false,
            all.clone(),
            Box::new(|t, n| queue_bodies(Arc::new(MsQueue::new()), t, n)),
        ),
        (
            "HwQueue",
            "queue",
            false,
            all.clone(),
            Box::new(move |t, n| queue_bodies(Arc::new(HwQueue::new(hw_cap(t, n))), t, n)),
        ),
        (
            "TreiberStack",
            "stack",
            false,
            all.clone(),
            Box::new(|t, n| stack_bodies(Arc::new(TreiberStack::new()), t, n)),
        ),
        (
            "ElimStack",
            "stack",
            false,
            all.clone(),
            Box::new(|t, n| stack_bodies(Arc::new(ElimStack::new(4, 256)), t, n)),
        ),
        (
            "exchanger",
            "exchange",
            false,
            if multi.is_empty() { vec![2] } else { multi },
            Box::new(exchanger_bodies),
        ),
        ("spsc_ring", "spsc", false, vec![2], Box::new(spsc_bodies)),
        (
            "chase_lev",
            "deque",
            false,
            all.clone(),
            Box::new(chase_lev_bodies),
        ),
        (
            "MutexQueue",
            "queue",
            true,
            all.clone(),
            Box::new(|t, n| queue_bodies(Arc::new(MutexQueue::new()), t, n)),
        ),
        (
            "MutexStack",
            "stack",
            true,
            all.clone(),
            Box::new(|t, n| stack_bodies(Arc::new(MutexStack::new()), t, n)),
        ),
    ];

    let mut table = Table::new(&["structure", "threads", "Mops/s", "p50", "p99", "p999"]);
    let mut structures_json = Json::arr();
    for (name, kind, baseline, counts, make) in &structures {
        let mut curve = Json::arr();
        for &threads in counts {
            let p = point(name, threads, per_thread, &progress, make.as_ref());
            let tp = match p.get("throughput_ops_per_sec") {
                Some(Json::Float(f)) => *f,
                _ => 0.0,
            };
            let pct = |key: &str| {
                p.get("latency")
                    .and_then(|l| l.get(key))
                    .and_then(|v| match v {
                        Json::Int(i) => Some(*i as u64),
                        _ => None,
                    })
                    .unwrap_or(0)
            };
            table.row(&[
                name.to_string(),
                threads.to_string(),
                format!("{:.2}", tp / 1e6),
                format_ns(pct("p50_ns")),
                format_ns(pct("p99_ns")),
                format_ns(pct("p999_ns")),
            ]);
            curve = curve.push(p);
        }
        structures_json = structures_json.push(structure_json(name, kind, *baseline, curve));
    }
    progress.finish("structure rounds done");
    println!("{}", table.render());

    println!("explorer speed (litmus gallery, budget {budget}):");
    let mut tests = Json::arr();
    let mut total_execs = 0u64;
    let explorer_t0 = Instant::now();
    macro_rules! shapes {
        ($($f:ident),+ $(,)?) => {
            $(
                let row = shape_speed(&gallery::$f(), budget, &mut m);
                if let Some(Json::Int(e)) = row.get("plain_execs") {
                    total_execs += *e as u64;
                }
                if let Some(Json::Int(e)) = row.get("dpor_execs") {
                    total_execs += *e as u64;
                }
                tests = tests.push(row);
            )+
        };
    }
    shapes!(
        mp_rel_acq,
        mp_relaxed,
        mp_fences,
        sb,
        sb_sc_fences,
        corr,
        iriw_acq,
        lb,
        two_plus_two_w,
        cowr,
        release_sequence,
        rmw_atomicity,
    );
    let explorer_ns = explorer_t0.elapsed().as_nanos() as u64;
    let execs_per_sec = total_execs as f64 * 1e9 / explorer_ns.max(1) as f64;
    println!(
        "  {total_execs} execs in {} ({execs_per_sec:.0} execs/s)\n",
        format_ns(explorer_ns)
    );
    let explorer = Json::obj()
        .set("budget", budget)
        .set("tests", tests)
        .set("total_execs", total_execs)
        .set("execs_per_sec", execs_per_sec);

    m.set_perf(perf_json(structures_json, explorer));
    m.set("total_execs", total_execs);
    m.write_or_warn();

    if let Some(out) = std::env::var_os("COMPASS_BENCH_OUT") {
        let get = |k: &str, default: &str| std::env::var(k).unwrap_or_else(|_| default.to_string());
        let doc = compass_bench::perf::bench_document(
            &m.to_json(),
            &get("COMPASS_BENCH_REV", "unknown"),
            &get("COMPASS_BENCH_DATE", "unknown"),
            &get("COMPASS_BENCH_PRESET", "default"),
        )
        .expect("e12_perf metrics make a valid BENCH document");
        let out = std::path::PathBuf::from(out);
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&out, doc.render_pretty()) {
            Ok(()) => eprintln!("bench: wrote {}", out.display()),
            Err(e) => eprintln!("bench: cannot write {}: {e}", out.display()),
        }
    }
    orc11::trace::finish_or_warn();
}
