//! E11 — runtime conformance: the native structures, stress-run on real
//! threads, checked against the Compass consistency specifications
//! (DESIGN.md §7).
//!
//! The full matrix of correct structures must pass every recorded round
//! (a reported violation would be a *true* violation — the interval
//! order soundly under-approximates happens-before). The deliberately
//! weakened `WeakMsQueue` (`compass-native`, `feature = "weak-variants"`)
//! is the positive control: the harness must flag it within a bounded
//! number of seeded retry rounds, write a replay bundle, and the bundle
//! must re-check offline to the same violated clause. The binary panics
//! if either side of that contract fails — CI runs it as a smoke test.
//!
//! Usage: `e11_conform [rounds] [ops_per_thread]` (defaults 24, 64).
//! Bundles go to `COMPASS_BUNDLE_DIR`, default
//! `<results_dir>/conform-bundles`.

use std::path::PathBuf;

use compass::conform::{recheck, run_conformance, ConformOptions, ConformSubject};
use compass::queue_spec::QueueEvent;
use compass_bench::conform_subjects::{
    DequeSubject, ExchangerSubject, QueueSubject, SpscSubject, StackSubject,
};
use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_native::{ElimStack, HwQueue, MsQueue, TreiberStack, WeakMsQueue};
use orc11::Json;

/// Retry batches for the positive control: each batch re-runs `rounds`
/// rounds from a fresh seed range. The TOCTOU window is wide (an OS
/// yield), so in practice the first batch flags it; the bound keeps the
/// control deterministic-by-retry rather than flaky.
const CONTROL_BATCHES: u64 = 10;

fn report_row(t: &mut Table, name: &str, report: &compass::CheckReport) {
    let violations: u64 = report.violations.values().sum();
    t.row(&[
        name.into(),
        format!("{}/{}", report.consistent, report.execs),
        violations.to_string(),
        format!("{:.0}", report.graph_sizes.mean()),
        report.search.searches.to_string(),
    ]);
}

fn report_json(report: &compass::CheckReport) -> Json {
    let mut violations = Json::obj();
    for (&rule, &n) in &report.violations {
        violations = violations.set(rule, n);
    }
    Json::obj()
        .set("execs", report.execs)
        .set("consistent", report.consistent)
        .set("violations", violations)
        .set("mean_graph_size", report.graph_sizes.mean())
        .set("searches", report.search.searches)
        .set("check_ns", report.check_ns)
}

fn check_correct<S: ConformSubject>(
    subject: &S,
    opts: &ConformOptions,
    t: &mut Table,
    m: &mut Metrics,
) {
    let report = run_conformance(subject, opts);
    report_row(t, subject.name(), &report);
    m.add_phases(&report.phase_ns);
    m.set(subject.name(), report_json(&report));
    assert!(
        report.consistent == report.execs,
        "{} failed runtime conformance — a TRUE violation on this host:\n{:?}",
        subject.name(),
        report.samples
    );
}

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e11_conform");
    m.mark_conform();
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let ops: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let bundle_dir = std::env::var_os("COMPASS_BUNDLE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Metrics::results_dir().join("conform-bundles"));
    let opts = ConformOptions {
        rounds,
        threads: 4,
        ops_per_thread: ops,
        seed0: 1,
        stop_on_violation: false,
        bundle_dir: None,
    };
    m.param("rounds", rounds);
    m.param("ops_per_thread", ops as u64);
    m.param("worker_threads", 4u64);

    println!(
        "E11 — runtime conformance: native structures on real threads vs. the specs\n\
         ({rounds} rounds x 4 threads x {ops} ops; real-time order under-approximates hb,\n\
         so every reported violation is a true violation — see DESIGN.md §7)\n"
    );
    let mut t = Table::new(&[
        "subject",
        "conforming rounds",
        "violations",
        "mean graph",
        "order searches",
    ]);

    check_correct(
        &QueueSubject::new("MsQueue", |_| MsQueue::new()),
        &opts,
        &mut t,
        &mut m,
    );
    check_correct(
        &QueueSubject::new("HwQueue", HwQueue::new),
        &opts,
        &mut t,
        &mut m,
    );
    check_correct(
        &StackSubject::new("TreiberStack", TreiberStack::new),
        &opts,
        &mut t,
        &mut m,
    );
    check_correct(
        &StackSubject::new("ElimStack", || ElimStack::new(4, 64)),
        &opts,
        &mut t,
        &mut m,
    );
    check_correct(&SpscSubject, &opts, &mut t, &mut m);
    check_correct(&DequeSubject, &opts, &mut t, &mut m);
    check_correct(&ExchangerSubject, &opts, &mut t, &mut m);

    // Positive control: the weakened queue must be flagged.
    let weak = QueueSubject::new("WeakMsQueue", |_| WeakMsQueue::new());
    let mut control = None;
    for batch in 0..CONTROL_BATCHES {
        let report = run_conformance(
            &weak,
            &ConformOptions {
                seed0: 1 + batch * rounds,
                stop_on_violation: true,
                bundle_dir: Some(bundle_dir.clone()),
                ..opts.clone()
            },
        );
        if report.consistent < report.execs {
            control = Some((batch, report));
            break;
        }
    }
    for (_, r) in control.iter() {
        m.add_phases(&r.phase_ns);
    }
    let (batches_needed, report) = control.expect(
        "positive control FAILED: the weakened MsQueue was never flagged — \
         the conformance harness has lost its teeth",
    );
    report_row(&mut t, "WeakMsQueue (control)", &report);
    println!("{t}");

    let (origin, violation) = &report.samples[0];
    println!(
        "\npositive control: WeakMsQueue flagged ({}; {origin}; batch {batches_needed})",
        violation.rule
    );

    // The bundle must re-check offline to the same clause.
    let dir = report.bundle.as_ref().expect("control wrote no bundle");
    let (g, result) = recheck::<QueueEvent>(dir).expect("bundle recheck failed");
    let rechecked = result.expect_err("bundle re-checked consistent");
    assert_eq!(
        rechecked.rule, violation.rule,
        "offline recheck disagrees with the live check"
    );
    println!(
        "bundle: {} ({} events) re-checks offline to {}",
        dir.display(),
        g.len(),
        rechecked.rule
    );
    println!(
        "\nExpected shape: every correct structure conforms in every round (violations would\n\
         be true violations); the weakened queue is flagged (typically CONFORM-QUEUE-DUP —\n\
         the duplicated dequeue its broken head swing admits) with a deterministic offline-\n\
         recheckable bundle."
    );

    let mut ctl = report_json(&report);
    ctl = ctl
        .set("flagged_rule", rechecked.rule)
        .set("batches_needed", batches_needed + 1)
        .set("bundle", dir.display().to_string());
    m.set("WeakMsQueue_control", ctl);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
