//! E7 — the single-producer single-consumer client of §3.2.
//!
//! The producer enqueues `a_p[0..n]` in order; the consumer dequeues `n`
//! elements into `a_c[0..n]`. End-to-end FIFO means the arrays are equal
//! at the end — in the paper this is derived from the `LAT_hb` queue
//! specs by building an SPSC protocol; here it is checked over explored
//! executions (together with `QueueConsistent`).

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_structures::clients::{check_spsc, run_spsc};
use orc11::{random_strategy, Json};

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e7_spsc");
    let phase_mark = orc11::trace::thread_phases();
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("E7 — SPSC client (§3.2), {seeds} seeds per size\n");
    let mut t = Table::new(&[
        "n",
        "runs",
        "array mismatches",
        "spec violations",
        "model errors",
    ]);
    let mut by_size = Json::arr();
    for n in [1usize, 2, 4, 8, 16] {
        let mut mismatches = 0u64;
        let mut violations = 0u64;
        let mut errors = 0u64;
        for seed in 0..seeds {
            match run_spsc(n, random_strategy(seed)).result {
                Err(_) => errors += 1,
                Ok(res) => {
                    if let Err(e) = check_spsc(&res, n) {
                        if e.contains("inconsistent") {
                            violations += 1;
                        } else {
                            mismatches += 1;
                        }
                    }
                }
            }
        }
        t.row(&[
            n.to_string(),
            seeds.to_string(),
            mismatches.to_string(),
            violations.to_string(),
            errors.to_string(),
        ]);
        by_size = by_size.push(
            Json::obj()
                .set("n", n)
                .set("runs", seeds)
                .set("mismatches", mismatches)
                .set("violations", violations)
                .set("model_errors", errors),
        );
    }
    println!("{t}");
    println!("\nExpected shape (paper §3.2): all failure columns are 0 at every size.");
    m.param("seeds", seeds);
    m.set("by_size", by_size);
    // The whole run is serial on this thread, so the thread-local phase
    // delta is exactly the run's breakdown.
    m.add_phases(&orc11::trace::thread_phases().delta_since(&phase_mark));
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
