//! E2 — the spec-strength hierarchy of Figure 2, measured.
//!
//! For each queue implementation × spec style, the percentage of explored
//! executions whose event graph satisfies that style:
//!
//! * `LAT_hb`   — QueueConsistent (graph-only, §3.2),
//! * `LAT_so`   — so ⊆ lhb (the Cosmo-style view transfer, §2.3),
//! * `LAT_abs`  — the commit order replays sequentially (§3.1),
//! * `LAT_hist` — some linearization `to ⊇ lhb` exists (§3.3).
//!
//! Expected shape: the Michael-Scott queue (release/acquire) satisfies
//! everything; the relaxed Herlihy-Wing queue satisfies the graph styles
//! but *not* always `LAT_abs` (the paper's reason for introducing
//! `LAT_hb`, §3.2); the deliberately weakened variants fall off the
//! hierarchy.

use compass_bench::metrics::Metrics;
use compass_bench::table::Table;
use compass_bench::workloads::queue_spec_stats;
use compass_structures::buggy::{RelaxedHwQueue, RelaxedMsQueue};
use compass_structures::queue::{HwQueue, LockQueue, MsQueue};
use orc11::Json;

fn main() {
    orc11::trace::init_from_env();
    let mut m = Metrics::new("e2_spec_matrix");
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    println!("E2 — spec-style satisfaction matrix (Figure 2 hierarchy), {seeds} seeds each\n");
    let mut t = Table::new(&[
        "implementation",
        "LAT_hb",
        "LAT_so",
        "LAT_hb^abs",
        "LAT_hb^hist",
        "model errors",
    ]);
    let mut matrix = Json::obj();
    let mut phases = orc11::PhaseNs::ZERO;
    let mut workers: Vec<orc11::WorkerStats> = Vec::new();
    let mut add = |name: &str, s: compass_bench::workloads::QueueSpecStats| {
        let [hb, so, abs, hist] = s.percentages();
        t.row(&[
            name.to_string(),
            hb,
            so,
            abs,
            hist,
            s.model_errors.to_string(),
        ]);
        phases.merge(&s.phase_ns);
        if workers.len() < s.workers.len() {
            workers.resize(s.workers.len(), orc11::WorkerStats::default());
        }
        for (mine, theirs) in workers.iter_mut().zip(&s.workers) {
            mine.merge(theirs);
        }
        let m = std::mem::replace(&mut matrix, Json::Null);
        matrix = m.set(name, s.to_json());
    };
    add(
        "coarse-grained (lock)",
        queue_spec_stats(LockQueue::new, 0..seeds),
    );
    add(
        "Michael-Scott (rel/acq)",
        queue_spec_stats(MsQueue::new, 0..seeds),
    );
    add(
        "Herlihy-Wing (relaxed)",
        queue_spec_stats(|ctx| HwQueue::new(ctx, 8), 0..seeds),
    );
    add(
        "buggy: MS all-relaxed",
        queue_spec_stats(RelaxedMsQueue::new, 0..seeds),
    );
    add(
        "buggy: HW relaxed tail",
        queue_spec_stats(|ctx| RelaxedHwQueue::new(ctx, 8), 0..seeds),
    );
    println!("{t}");
    println!(
        "\nExpected shape (paper §3.1–3.2): MS = 100% everywhere; HW = 100% on the \
         graph styles but < 100%\non LAT_hb^abs (constructing the abstract state at \
         commit points needs reordering the paper avoids\nby weakening to LAT_hb); \
         the buggy variants drop below 100% on LAT_hb / LAT_so."
    );
    m.param("seeds", seeds);
    m.set("implementations", matrix);
    m.add_phases(&phases);
    m.add_workers(&workers);
    m.write_or_warn();
    orc11::trace::finish_or_warn();
}
