//! Minimal fixed-width text tables for experiment output.

/// A simple text table: a header row plus data rows, rendered with
/// padded columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Machine-readable form: an array of objects, one per row, keyed by
    /// the column headers. Cells stay strings (tables hold pre-formatted
    /// text); emit raw numbers separately when consumers need them.
    pub fn to_json(&self) -> orc11::Json {
        orc11::Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    self.header
                        .iter()
                        .zip(row.iter())
                        .fold(orc11::Json::obj(), |j, (h, c)| j.set(h, c.as_str()))
                })
                .collect(),
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                s.push_str("| ");
                s.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    s.push(' ');
                }
                s.push(' ');
            }
            s.push('|');
            s
        };
        let sep: String = {
            let mut s = String::new();
            for w in &widths {
                s.push('+');
                s.push_str(&"-".repeat(w + 2));
            }
            s.push('+');
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["longer-name", "22"]);
        let s = t.render();
        assert!(s.contains("| name        | value |"));
        assert!(s.contains("| longer-name | 22    |"));
        // All lines same width.
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["x"]);
        assert!(t.render().contains("| x | "));
    }
}
