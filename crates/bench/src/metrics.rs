//! Machine-readable experiment metrics.
//!
//! Every `e*` experiment binary emits, next to its human-readable tables,
//! one JSON file `experiment-results/<id>.json` (override the directory
//! with `COMPASS_RESULTS_DIR`). The schema is stable and snapshot-tested
//! (`tests/metrics_schema.rs`):
//!
//! ```json
//! {
//!   "schema_version": 6,
//!   "experiment": "<id>",
//!   "threads": 4,         // exploration worker threads for this run
//!   "dpor": false,        // whether COMPASS_DPOR pruned DFS runs
//!   "conform": false,     // runtime-conformance run (real threads)?
//!   "wall_ns": 12345678,  // wall-clock from Metrics::new() to to_json()
//!   "phase_ns": { ... },  // per-phase busy time (orc11::trace)
//!   "workers": [ ... ],   // per-worker load-balance counters
//!   "perf": null,         // performance measurements (e12_perf only)
//!   "params": { ... },    // run parameters (seed counts, budgets, ...)
//!   "data": { ... }       // the experiment's measurements
//! }
//! ```
//!
//! Schema v2 adds `threads` (the resolved exploration worker count — see
//! [`orc11::default_threads`] — so `BENCH_*` trajectories can attribute
//! throughput to parallelism) and `wall_ns` (wall-clock nanoseconds from
//! [`Metrics::new`] to serialization, the denominator of any speedup
//! claim). Schema v3 adds `dpor` (whether the `COMPASS_DPOR` environment
//! variable switched the run's environment-sensitive DFS explorations to
//! DPOR pruning — see `orc11::dpor`), resolved at [`Metrics::new`] like
//! `threads`. Schema v4 adds `conform` ([`Metrics::mark_conform`]):
//! `true` for runtime-conformance experiments (`e11_conform`), whose
//! numbers come from real threads on real hardware — `threads` and
//! `dpor` describe the model-exploration environment and do not apply to
//! them, and consumers must not average conformance counts with
//! model-exploration counts. Schema v5 adds `phase_ns` (the per-phase
//! busy-time breakdown from `orc11::trace` — explore/dpor/check/
//! linearize/conform/io, averaged per worker so the six values sum to at
//! most `wall_ns`; all zero when the experiment recorded no reports) and
//! `workers` (per-worker executed/stolen/idle-wait counters, sorted by
//! worker index; empty for serial or conformance runs). Both accumulate
//! over every report fed via [`Metrics::add_phases`] /
//! [`Metrics::add_workers`]. Schema v6 adds `perf`
//! ([`Metrics::set_perf`]): latency histograms, throughput-vs-threads
//! curves, and explorer execs/sec from the performance experiments —
//! `null` for every experiment except `e12_perf`, whose `perf` shape is
//! pinned by `tests/perf_schema.rs` and documented in
//! [`crate::perf`]. `params` and `data` are
//! experiment-specific but always objects; every count is a JSON
//! integer, every ratio a JSON float (the in-tree emitter guarantees
//! floats stay float-shaped — see [`orc11::Json`]).
//! `scripts/run_experiments.sh` collects the per-experiment files into
//! `experiment-results/summary.json`.

use std::io;
use std::path::PathBuf;
use std::time::Instant;

use orc11::{Json, PhaseNs, WorkerStats};

/// The metrics schema version emitted by this crate.
pub const SCHEMA_VERSION: u64 = 6;

/// Builder for one experiment's metrics file.
#[derive(Clone, Debug)]
pub struct Metrics {
    id: String,
    threads: u64,
    dpor: bool,
    conform: bool,
    start: Instant,
    phase_ns: PhaseNs,
    workers: Vec<WorkerStats>,
    perf: Json,
    params: Json,
    data: Json,
}

impl Metrics {
    /// Starts metrics for the experiment `id` (the file stem, e.g.
    /// `"e2_spec_matrix"`). The wall clock starts here, and the
    /// `threads` field is resolved here (`COMPASS_THREADS` / available
    /// parallelism), so construct this before the measured work.
    pub fn new(id: &str) -> Self {
        Metrics {
            id: id.to_string(),
            threads: orc11::default_threads() as u64,
            dpor: orc11::dpor_from_env(),
            conform: false,
            start: Instant::now(),
            phase_ns: PhaseNs::ZERO,
            workers: Vec::new(),
            perf: Json::Null,
            params: Json::obj(),
            data: Json::obj(),
        }
    }

    /// Accumulates a report's per-phase busy-time breakdown into the
    /// document's `phase_ns` (e.g. `m.add_phases(&report.phase_ns)` once
    /// per exploration the experiment ran).
    pub fn add_phases(&mut self, phases: &PhaseNs) {
        self.phase_ns.merge(phases);
    }

    /// Accumulates per-worker load-balance counters into the document's
    /// `workers` array (index-wise, growing it as needed).
    pub fn add_workers(&mut self, workers: &[WorkerStats]) {
        if self.workers.len() < workers.len() {
            self.workers.resize(workers.len(), WorkerStats::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(workers) {
            mine.merge(theirs);
        }
    }

    /// Marks this document as a runtime-conformance run (real threads on
    /// real hardware, `compass::conform`): sets the `conform` field, so
    /// consumers never average these counts with model-exploration ones.
    pub fn mark_conform(&mut self) {
        self.conform = true;
    }

    /// Sets the schema-v6 `perf` object (latency histograms, throughput
    /// curves, explorer execs/sec — see [`crate::perf`]). Experiments
    /// that measure nothing leave it `null`.
    pub fn set_perf(&mut self, perf: Json) {
        self.perf = perf;
    }

    /// Records a run parameter (seed count, budget, ...).
    pub fn param(&mut self, key: &str, value: impl Into<Json>) {
        let params = std::mem::replace(&mut self.params, Json::Null);
        self.params = params.set(key, value);
    }

    /// Records a measurement under `data`.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let data = std::mem::replace(&mut self.data, Json::Null);
        self.data = data.set(key, value);
    }

    /// The complete document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("experiment", self.id.as_str())
            .set("threads", self.threads)
            .set("dpor", self.dpor)
            .set("conform", self.conform)
            .set("wall_ns", self.start.elapsed().as_nanos() as u64)
            .set("phase_ns", self.phase_ns.to_json())
            .set("workers", orc11::workers_to_json(&self.workers))
            .set("perf", self.perf.clone())
            .set("params", self.params.clone())
            .set("data", self.data.clone())
    }

    /// The output directory: `COMPASS_RESULTS_DIR`, or
    /// `experiment-results` under the current directory.
    pub fn results_dir() -> PathBuf {
        std::env::var_os("COMPASS_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("experiment-results"))
    }

    /// Writes `<results_dir>/<id>.json` (pretty-rendered) and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = Self::results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }

    /// [`Metrics::write`], reporting the outcome on stderr instead of
    /// failing — experiment binaries should still print their tables on a
    /// read-only filesystem.
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => eprintln!("metrics: wrote {}", path.display()),
            Err(e) => eprintln!("metrics: cannot write {}.json: {e}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape() {
        let mut m = Metrics::new("e0_test");
        m.param("seeds", 100u64);
        m.set("consistent", 100u64);
        m.set("rate", 1.0f64);
        let j = m.to_json();
        assert_eq!(j.get("schema_version"), Some(&Json::Int(6)));
        // v6: the perf field exists and defaults to null.
        assert_eq!(j.get("perf"), Some(&Json::Null));
        assert_eq!(j.get("experiment"), Some(&Json::Str("e0_test".into())));
        // The environment-dependent fields exist and are sane.
        assert!(matches!(j.get("threads"), Some(&Json::Int(n)) if n >= 1));
        assert!(matches!(j.get("dpor"), Some(&Json::Bool(_))));
        assert_eq!(j.get("conform"), Some(&Json::Bool(false)));
        let mut conform = Metrics::new("e11_conform");
        conform.mark_conform();
        assert_eq!(conform.to_json().get("conform"), Some(&Json::Bool(true)));
        assert!(matches!(j.get("wall_ns"), Some(&Json::Int(_))));
        // v5: phase/worker fields exist even when nothing was recorded.
        assert_eq!(
            j.get("phase_ns").and_then(|p| p.get("explore")),
            Some(&Json::Int(0))
        );
        assert_eq!(j.get("workers"), Some(&Json::Arr(vec![])));
        let mut fed = Metrics::new("e0_fed");
        fed.add_phases(&PhaseNs {
            explore: 7,
            ..PhaseNs::ZERO
        });
        fed.add_workers(&[WorkerStats {
            executed: 3,
            ..WorkerStats::default()
        }]);
        let fj = fed.to_json();
        assert_eq!(
            fj.get("phase_ns").and_then(|p| p.get("explore")),
            Some(&Json::Int(7))
        );
        let workers = match fj.get("workers") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("workers is not an array: {other:?}"),
        };
        assert_eq!(workers[0].get("executed"), Some(&Json::Int(3)));
        assert_eq!(
            j.get("params").and_then(|p| p.get("seeds")),
            Some(&Json::Int(100))
        );
        assert_eq!(
            j.get("data").and_then(|d| d.get("rate")),
            Some(&Json::Float(1.0))
        );
    }

    #[test]
    fn write_respects_results_dir_env() {
        // Not a great idea to mutate env in parallel tests; write directly
        // through the path logic instead.
        let mut m = Metrics::new("e0_write_test");
        m.set("x", 1u64);
        let dir = std::env::temp_dir().join(format!("compass-metrics-{}", std::process::id()));
        // Emulate write() against an explicit dir.
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e0_write_test.json");
        std::fs::write(&path, m.to_json().render_pretty()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n  \"schema_version\": 6,\n"));
        assert!(text.ends_with("\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
