//! Performance-trajectory documents: the schema-v6 `perf` object, the
//! `BENCH_<n>.json` trajectory format, and the regression comparator.
//!
//! The `e12_perf` experiment measures the native structures
//! (per-operation latency histograms from [`compass_native::perf`],
//! throughput-vs-threads curves) and the explorer (execs/sec over the
//! litmus gallery). This module owns everything JSON about those
//! measurements — `compass-native` stays dependency-free, so histograms
//! cross the crate boundary as [`LatencyHist`] values and are serialized
//! here:
//!
//! * the `perf` object embedded in `e12_perf`'s metrics file
//!   ([`perf_json`], [`structure_json`], [`curve_point_json`],
//!   [`hist_json`]);
//! * the standalone trajectory document `BENCH_<n>.json`
//!   ([`bench_document`]) written by `scripts/run_bench.sh` — one file
//!   per recorded run, with the git revision and date passed in via
//!   environment (the documents themselves never read the wall clock,
//!   consistent with the repo's timestamp quarantine);
//! * validation ([`check_bench_doc`]) and regression comparison
//!   ([`compare_bench_docs`]) between two trajectory entries, fronted by
//!   [`compare_cli`] for the `bench_compare` binary.
//!
//! `tests/perf_schema.rs` pins all of these shapes.

use std::path::{Path, PathBuf};

use orc11::Json;

use crate::timing::LatencyHist;

/// Version of the `BENCH_<n>.json` trajectory document format.
pub const BENCH_SCHEMA: u64 = 1;

/// The structures every complete `perf` object must cover — the seven
/// native structures of the paper's benchmark suite. Baselines
/// (`MutexQueue`, `MutexStack`) ride along but are not required.
pub const REQUIRED_STRUCTURES: [&str; 7] = [
    "MsQueue",
    "HwQueue",
    "TreiberStack",
    "ElimStack",
    "exchanger",
    "spsc_ring",
    "chase_lev",
];

/// Serializes a [`LatencyHist`]: summary percentiles plus the non-empty
/// buckets (so trajectory consumers can re-derive any quantile).
pub fn hist_json(h: &LatencyHist) -> Json {
    let mut buckets = Json::arr();
    for (lo, hi, count) in h.nonzero_buckets() {
        buckets = buckets.push(Json::obj().set("lo", lo).set("hi", hi).set("count", count));
    }
    Json::obj()
        .set("count", h.count())
        .set("p50_ns", h.p50())
        .set("p90_ns", h.p90())
        .set("p99_ns", h.p99())
        .set("p999_ns", h.p999())
        .set("max_ns", h.max_ns())
        .set("mean_ns", h.mean_ns())
        .set("buckets", buckets)
}

/// One point of a throughput-vs-threads curve: a closed-loop round at
/// `threads` workers that completed `ops` operations in `wall_ns`.
/// `latency` is the merge of every op kind's histogram; `by_op` keeps
/// the per-kind split (`enqueue`, `dequeue`, `steal`, ...).
pub fn curve_point_json(
    threads: u64,
    ops: u64,
    wall_ns: u64,
    latency: &LatencyHist,
    by_op: &[(String, LatencyHist)],
) -> Json {
    let throughput = if wall_ns == 0 {
        0.0
    } else {
        ops as f64 * 1e9 / wall_ns as f64
    };
    let mut by = Json::obj();
    for (name, h) in by_op {
        by = by.set(name, hist_json(h));
    }
    Json::obj()
        .set("threads", threads)
        .set("ops", ops)
        .set("wall_ns", wall_ns)
        .set("throughput_ops_per_sec", throughput)
        .set("latency", hist_json(latency))
        .set("by_op", by)
}

/// One benchmarked structure: its curve across thread counts. `kind` is
/// the workload shape (`"queue"`, `"stack"`, `"deque"`, ...); baselines
/// set `baseline` so consumers never chart them as paper structures.
pub fn structure_json(name: &str, kind: &str, baseline: bool, curve: Json) -> Json {
    Json::obj()
        .set("name", name)
        .set("kind", kind)
        .set("baseline", baseline)
        .set("curve", curve)
}

/// The complete schema-v6 `perf` object: structure curves plus explorer
/// speed.
pub fn perf_json(structures: Json, explorer: Json) -> Json {
    Json::obj()
        .set("structures", structures)
        .set("explorer", explorer)
}

/// Builds a `BENCH_<n>.json` trajectory document from an `e12_perf`
/// metrics document. `rev`/`date`/`preset` come from the environment
/// (`scripts/run_bench.sh` passes `git rev-parse` and `date -u` output):
/// the document never reads the wall clock itself.
///
/// # Errors
///
/// Fails when `metrics` is not a schema-v6 `e12_perf` document with a
/// `perf` object.
pub fn bench_document(metrics: &Json, rev: &str, date: &str, preset: &str) -> Result<Json, String> {
    let version = metrics
        .get("schema_version")
        .and_then(as_u64)
        .ok_or("metrics document has no schema_version")?;
    if version != crate::metrics::SCHEMA_VERSION {
        return Err(format!(
            "metrics schema_version {version} (need {})",
            crate::metrics::SCHEMA_VERSION
        ));
    }
    let perf = metrics.get("perf").ok_or("metrics document has no perf")?;
    if matches!(perf, Json::Null) {
        return Err("metrics perf object is null (not an e12_perf document?)".to_string());
    }
    let threads = metrics
        .get("threads")
        .and_then(as_u64)
        .ok_or("metrics document has no threads")?;
    Ok(Json::obj()
        .set("bench_schema", BENCH_SCHEMA)
        .set("metrics_schema_version", version)
        .set("rev", rev)
        .set("date", date)
        .set("preset", preset)
        .set("threads", threads)
        .set("perf", perf.clone()))
}

fn as_u64(j: &Json) -> Option<u64> {
    match j {
        Json::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn as_f64(j: &Json) -> Option<f64> {
    match j {
        Json::Int(i) => Some(*i as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

fn as_str(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn as_arr(j: &Json) -> Option<&[Json]> {
    match j {
        Json::Arr(items) => Some(items),
        _ => None,
    }
}

/// Validates a `BENCH_<n>.json` document: schema tag, provenance
/// fields, all seven [`REQUIRED_STRUCTURES`] with non-empty curves
/// whose points carry throughput and p50/p99/p999 latency, and the
/// explorer section with per-test and total execs/sec.
///
/// # Errors
///
/// The first problem found, as a human-readable message.
pub fn check_bench_doc(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("bench_schema")
        .and_then(as_u64)
        .ok_or("missing bench_schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("bench_schema {schema} (expected {BENCH_SCHEMA})"));
    }
    for key in ["rev", "date", "preset"] {
        doc.get(key)
            .and_then(as_str)
            .ok_or(format!("missing string field {key:?}"))?;
    }
    doc.get("metrics_schema_version")
        .and_then(as_u64)
        .ok_or("missing metrics_schema_version")?;
    let perf = doc.get("perf").ok_or("missing perf object")?;
    let structures = perf
        .get("structures")
        .and_then(as_arr)
        .ok_or("perf.structures is not an array")?;
    let mut names = Vec::new();
    for s in structures {
        let name = s
            .get("name")
            .and_then(as_str)
            .ok_or("structure entry without a name")?;
        names.push(name.to_string());
        s.get("kind")
            .and_then(as_str)
            .ok_or(format!("{name}: missing kind"))?;
        let curve = s
            .get("curve")
            .and_then(as_arr)
            .ok_or(format!("{name}: curve is not an array"))?;
        if curve.is_empty() {
            return Err(format!("{name}: empty curve"));
        }
        for point in curve {
            let threads = point
                .get("threads")
                .and_then(as_u64)
                .ok_or(format!("{name}: curve point without threads"))?;
            if threads == 0 {
                return Err(format!("{name}: curve point with threads = 0"));
            }
            point
                .get("throughput_ops_per_sec")
                .and_then(as_f64)
                .ok_or(format!("{name}@{threads}: missing throughput_ops_per_sec"))?;
            let latency = point
                .get("latency")
                .ok_or(format!("{name}@{threads}: missing latency"))?;
            for key in ["count", "p50_ns", "p99_ns", "p999_ns", "max_ns"] {
                latency
                    .get(key)
                    .and_then(as_u64)
                    .ok_or(format!("{name}@{threads}: latency missing {key}"))?;
            }
            if latency.get("count").and_then(as_u64) == Some(0) {
                return Err(format!("{name}@{threads}: empty latency histogram"));
            }
        }
    }
    for required in REQUIRED_STRUCTURES {
        if !names.iter().any(|n| n == required) {
            return Err(format!("required structure {required:?} missing"));
        }
    }
    let explorer = perf.get("explorer").ok_or("perf.explorer missing")?;
    explorer
        .get("execs_per_sec")
        .and_then(as_f64)
        .ok_or("explorer.execs_per_sec missing")?;
    let tests = explorer
        .get("tests")
        .and_then(as_arr)
        .ok_or("explorer.tests is not an array")?;
    if tests.is_empty() {
        return Err("explorer.tests is empty".to_string());
    }
    for t in tests {
        let name = t
            .get("name")
            .and_then(as_str)
            .ok_or("explorer test without a name")?;
        for key in ["plain_execs_per_sec", "dpor_execs_per_sec"] {
            t.get(key)
                .and_then(as_f64)
                .ok_or(format!("explorer test {name}: missing {key}"))?;
        }
    }
    Ok(())
}

/// Collects each structure's curve as `(name, threads) -> (throughput,
/// p99_ns)`.
fn curve_points(doc: &Json) -> Vec<(String, u64, f64, u64)> {
    let mut out = Vec::new();
    let Some(structures) = doc
        .get("perf")
        .and_then(|p| p.get("structures"))
        .and_then(as_arr)
    else {
        return out;
    };
    for s in structures {
        let Some(name) = s.get("name").and_then(as_str) else {
            continue;
        };
        for point in s.get("curve").and_then(as_arr).unwrap_or(&[]) {
            let (Some(threads), Some(tp), Some(p99)) = (
                point.get("threads").and_then(as_u64),
                point.get("throughput_ops_per_sec").and_then(as_f64),
                point
                    .get("latency")
                    .and_then(|l| l.get("p99_ns"))
                    .and_then(as_u64),
            ) else {
                continue;
            };
            out.push((name.to_string(), threads, tp, p99));
        }
    }
    out
}

fn explorer_rate(doc: &Json) -> Option<f64> {
    doc.get("perf")
        .and_then(|p| p.get("explorer"))
        .and_then(|e| e.get("execs_per_sec"))
        .and_then(as_f64)
}

/// Compares two trajectory documents (`old` first). A regression is a
/// throughput drop of more than `threshold` (fraction, e.g. `0.20`), a
/// p99 latency rise of more than `threshold`, at any `(structure,
/// threads)` point present in both — or the same drop in explorer
/// execs/sec. Points present in only one document are skipped (presets
/// may differ across machines). Returns one message per regression.
///
/// # Errors
///
/// Fails when either document fails [`check_bench_doc`].
pub fn compare_bench_docs(old: &Json, new: &Json, threshold: f64) -> Result<Vec<String>, String> {
    check_bench_doc(old).map_err(|e| format!("old document invalid: {e}"))?;
    check_bench_doc(new).map_err(|e| format!("new document invalid: {e}"))?;
    let mut regressions = Vec::new();
    let old_points = curve_points(old);
    for (name, threads, new_tp, new_p99) in curve_points(new) {
        let Some((_, _, old_tp, old_p99)) = old_points
            .iter()
            .find(|(n, t, _, _)| *n == name && *t == threads)
        else {
            continue;
        };
        if new_tp < old_tp * (1.0 - threshold) {
            regressions.push(format!(
                "{name}@{threads}t throughput: {old_tp:.0} -> {new_tp:.0} ops/s ({:+.1}%, limit -{:.0}%)",
                100.0 * (new_tp / old_tp - 1.0),
                100.0 * threshold
            ));
        }
        if *old_p99 > 0 && new_p99 as f64 > *old_p99 as f64 * (1.0 + threshold) {
            regressions.push(format!(
                "{name}@{threads}t p99 latency: {old_p99} -> {new_p99} ns ({:+.1}%, limit +{:.0}%)",
                100.0 * (new_p99 as f64 / *old_p99 as f64 - 1.0),
                100.0 * threshold
            ));
        }
    }
    if let (Some(old_rate), Some(new_rate)) = (explorer_rate(old), explorer_rate(new)) {
        if new_rate < old_rate * (1.0 - threshold) {
            regressions.push(format!(
                "explorer execs/sec: {old_rate:.0} -> {new_rate:.0} ({:+.1}%, limit -{:.0}%)",
                100.0 * (new_rate / old_rate - 1.0),
                100.0 * threshold
            ));
        }
    }
    Ok(regressions)
}

/// The `BENCH_<n>.json` files in `dir`, sorted by index.
pub fn trajectory_entries(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort();
    out
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// The `bench_compare` command-line: returns the process exit code.
///
/// ```text
/// bench_compare --check FILE                 # validate one document
/// bench_compare [--threshold PCT] OLD NEW    # compare two documents
/// bench_compare [--threshold PCT] DIR        # compare newest two in DIR
/// ```
///
/// Exit codes: 0 = ok, 1 = regression found, 2 = usage/parse/validation
/// error.
pub fn compare_cli(args: &[String]) -> i32 {
    let mut threshold = 0.20f64;
    let mut check: Option<String> = None;
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(f) => check = Some(f.clone()),
                    None => return usage("--check needs a file"),
                }
            }
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(pct) if pct > 0.0 => threshold = pct / 100.0,
                    _ => return usage("--threshold needs a positive percentage"),
                }
            }
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    if let Some(path) = check {
        if !positional.is_empty() {
            return usage("--check takes exactly one file");
        }
        return match load(&path).and_then(|doc| check_bench_doc(&doc)) {
            Ok(()) => {
                println!("ok: {path} is a valid BENCH document");
                0
            }
            Err(e) => {
                eprintln!("bench_compare: {path}: {e}");
                2
            }
        };
    }
    let (old_path, new_path) = match positional.as_slice() {
        [old, new] => (old.clone(), new.clone()),
        [dir] => {
            let entries = trajectory_entries(Path::new(dir));
            match entries.as_slice() {
                [.., (_, old), (_, new)] => (
                    old.to_string_lossy().into_owned(),
                    new.to_string_lossy().into_owned(),
                ),
                _ => {
                    eprintln!("bench_compare: {dir}: need at least two BENCH_<n>.json files");
                    return 2;
                }
            }
        }
        _ => return usage("expected OLD NEW, a trajectory DIR, or --check FILE"),
    };
    let (old, new) = match (load(&old_path), load(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return 2;
        }
    };
    match compare_bench_docs(&old, &new, threshold) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "ok: no regressions beyond {:.0}% ({old_path} -> {new_path})",
                100.0 * threshold
            );
            0
        }
        Ok(regressions) => {
            eprintln!(
                "bench_compare: {} regression(s) ({old_path} -> {new_path}):",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            1
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            2
        }
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "bench_compare: {problem}\n\
         usage: bench_compare --check FILE\n\
         \x20      bench_compare [--threshold PCT] OLD NEW\n\
         \x20      bench_compare [--threshold PCT] DIR"
    );
    2
}
