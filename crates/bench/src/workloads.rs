//! Shared model workloads and spec-satisfaction statistics.
//!
//! These drive the E2/E4/E5 experiment binaries and the integration
//! tests: each runs a fixed concurrent workload over many seeds and
//! counts, per execution, which Compass spec styles the resulting graph
//! satisfies.

use compass::abs::commit_order_is_linearization;
use compass::exchanger_spec::check_exchanger_consistent;
use compass::history::{find_linearization, QueueInterp, StackInterp};
use compass::queue_spec::{check_queue_consistent, check_so_lhb as queue_so_lhb};
use compass::stack_spec::check_stack_consistent;
use compass_structures::deque::ChaseLevDeque;
use compass_structures::queue::ModelQueue;
use compass_structures::stack::{ElimStack, ModelStack, TreiberStack};
use orc11::{
    run_model, sync::Mutex, BodyFn, Config, Explorer, PhaseNs, ThreadCtx, Val, WorkSpec,
    WorkerStats,
};

/// The engine work description for a `seeds` range: one random-strategy
/// execution per seed, on however many workers the environment asks for
/// (`COMPASS_THREADS`; the per-spec tallies below are merge-order
/// independent, so the counts match a serial run exactly).
fn random_over(seeds: std::ops::Range<u64>) -> WorkSpec {
    WorkSpec::Random {
        iters: seeds.end.saturating_sub(seeds.start),
        seed0: seeds.start,
    }
}

/// Per-spec-style satisfaction counts for a queue implementation.
#[derive(Clone, Debug, Default)]
pub struct QueueSpecStats {
    /// Executions performed.
    pub runs: u64,
    /// Executions that aborted (races, panics) — zero for correct
    /// implementations.
    pub model_errors: u64,
    /// Graph satisfies `QueueConsistent` (the `LAT_hb` style).
    pub lat_hb: u64,
    /// so ⊆ lhb (the `LAT_so^abs`/Cosmo view-transfer guarantee).
    pub lat_so: u64,
    /// Commit order replays sequentially (the `LAT_hb^abs` style).
    pub lat_abs: u64,
    /// A linearization `to ⊇ lhb` exists (the `LAT_hb^hist` style).
    pub lat_hist: u64,
    /// Per-phase busy time from the exploration (see `orc11::trace`).
    pub phase_ns: PhaseNs,
    /// Per-worker load-balance counters from the exploration.
    pub workers: Vec<WorkerStats>,
}

impl QueueSpecStats {
    fn pct(n: u64, of: u64) -> String {
        if of == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * n as f64 / of as f64)
        }
    }

    /// `[hb, so, abs, hist]` satisfaction percentages as strings.
    pub fn percentages(&self) -> [String; 4] {
        [
            Self::pct(self.lat_hb, self.runs),
            Self::pct(self.lat_so, self.runs),
            Self::pct(self.lat_abs, self.runs),
            Self::pct(self.lat_hist, self.runs),
        ]
    }

    /// Machine-readable form (raw counts, not percentages).
    pub fn to_json(&self) -> orc11::Json {
        orc11::Json::obj()
            .set("runs", self.runs)
            .set("model_errors", self.model_errors)
            .set("lat_hb", self.lat_hb)
            .set("lat_so", self.lat_so)
            .set("lat_abs", self.lat_abs)
            .set("lat_hist", self.lat_hist)
    }
}

/// Runs the mixed MPMC workload (2 producers × 2 enqueues, 2 consumers ×
/// 2 dequeue attempts) over `seeds` executions of `make`'s queue and
/// tallies spec satisfaction.
pub fn queue_spec_stats<Q: ModelQueue>(
    make: impl Fn(&mut ThreadCtx) -> Q + Send + Sync,
    seeds: std::ops::Range<u64>,
) -> QueueSpecStats {
    let stats = Mutex::new(QueueSpecStats::default());
    let report = Explorer::default().explore(
        &random_over(seeds),
        &|strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| make(ctx),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                        q.enqueue(ctx, Val::Int(10));
                        q.enqueue(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                        q.enqueue(ctx, Val::Int(20));
                        q.enqueue(ctx, Val::Int(21));
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                        q.try_dequeue(ctx);
                        q.try_dequeue(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, q: &Q| {
                        q.try_dequeue(ctx);
                        q.try_dequeue(ctx);
                    }),
                ],
                |_, q, _| q.obj().snapshot(),
            )
        },
        |_, out| {
            let mut stats = stats.lock();
            stats.runs += 1;
            match &out.result {
                Err(_) => stats.model_errors += 1,
                Ok(g) => {
                    if check_queue_consistent(g).is_ok() {
                        stats.lat_hb += 1;
                    }
                    if queue_so_lhb(g).is_ok() {
                        stats.lat_so += 1;
                    }
                    if commit_order_is_linearization(g, &QueueInterp) {
                        stats.lat_abs += 1;
                    }
                    if find_linearization(g, &QueueInterp, &[]).is_some() {
                        stats.lat_hist += 1;
                    }
                }
            }
        },
    );
    let mut stats = stats.into_inner();
    stats.phase_ns = report.phase_ns;
    stats.workers = report.workers;
    stats
}

/// Per-run statistics for the Treiber `LAT_hb^hist` experiment (E4).
#[derive(Clone, Debug, Default)]
pub struct StackHistStats {
    /// Executions performed.
    pub runs: u64,
    /// Aborted executions.
    pub model_errors: u64,
    /// Graph satisfies `StackConsistent`.
    pub consistent: u64,
    /// A linearization `to ⊇ lhb` exists.
    pub hist_ok: u64,
    /// The commit (head-CAS modification) order itself is a full
    /// linearization witness, including empty pops.
    pub commit_order_witness: u64,
    /// Executions containing at least one empty pop.
    pub with_emp_pops: u64,
    /// Per-phase busy time from the exploration (see `orc11::trace`).
    pub phase_ns: PhaseNs,
    /// Per-worker load-balance counters from the exploration.
    pub workers: Vec<WorkerStats>,
}

impl StackHistStats {
    /// Machine-readable form.
    pub fn to_json(&self) -> orc11::Json {
        orc11::Json::obj()
            .set("runs", self.runs)
            .set("model_errors", self.model_errors)
            .set("consistent", self.consistent)
            .set("hist_ok", self.hist_ok)
            .set("commit_order_witness", self.commit_order_witness)
            .set("with_emp_pops", self.with_emp_pops)
    }
}

/// Runs the mixed stack workload over `seeds` executions of a
/// [`TreiberStack`] and tallies `LAT_hb^hist` satisfaction.
pub fn treiber_hist_stats(seeds: std::ops::Range<u64>) -> StackHistStats {
    stack_hist_stats(TreiberStack::new, seeds)
}

/// As [`treiber_hist_stats`] for any [`ModelStack`].
pub fn stack_hist_stats<S: ModelStack>(
    make: impl Fn(&mut ThreadCtx) -> S + Send + Sync,
    seeds: std::ops::Range<u64>,
) -> StackHistStats {
    let stats = Mutex::new(StackHistStats::default());
    let report = Explorer::default().explore(
        &random_over(seeds),
        &|strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| make(ctx),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &S| {
                        s.push(ctx, Val::Int(10));
                        s.push(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &S| {
                        s.push(ctx, Val::Int(20));
                        s.pop(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, s: &S| {
                        s.pop(ctx);
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| s.obj().snapshot(),
            )
        },
        |_, out| {
            let mut stats = stats.lock();
            stats.runs += 1;
            match &out.result {
                Err(_) => stats.model_errors += 1,
                Ok(g) => {
                    use compass::stack_spec::StackEvent;
                    if check_stack_consistent(g).is_ok() {
                        stats.consistent += 1;
                    }
                    let order = compass::abs::commit_order(g);
                    if compass::history::validate_linearization(g, &StackInterp, &order).is_ok() {
                        stats.commit_order_witness += 1;
                    }
                    if find_linearization(g, &StackInterp, &[]).is_some() {
                        stats.hist_ok += 1;
                    }
                    if g.iter().any(|(_, e)| e.ty == StackEvent::EmpPop) {
                        stats.with_emp_pops += 1;
                    }
                }
            }
        },
    );
    let mut stats = stats.into_inner();
    stats.phase_ns = report.phase_ns;
    stats.workers = report.workers;
    stats
}

/// Per-run statistics for the elimination-stack experiment (E5).
#[derive(Clone, Debug, Default)]
pub struct ElimStats {
    /// Executions performed.
    pub runs: u64,
    /// Aborted executions.
    pub model_errors: u64,
    /// ES graph satisfies `StackConsistent`.
    pub es_consistent: u64,
    /// ES graph admits a linearization.
    pub es_hist_ok: u64,
    /// Base stack graph satisfies `StackConsistent`.
    pub base_consistent: u64,
    /// Exchanger graph satisfies `ExchangerConsistent`.
    pub ex_consistent: u64,
    /// Total eliminated pairs across all runs.
    pub eliminations: u64,
    /// Total successful exchanges across all runs (= 2 × matched pairs).
    pub exchanges: u64,
    /// Per-phase busy time from the exploration (see `orc11::trace`).
    pub phase_ns: PhaseNs,
    /// Per-worker load-balance counters from the exploration.
    pub workers: Vec<WorkerStats>,
}

impl ElimStats {
    /// Machine-readable form.
    pub fn to_json(&self) -> orc11::Json {
        orc11::Json::obj()
            .set("runs", self.runs)
            .set("model_errors", self.model_errors)
            .set("es_consistent", self.es_consistent)
            .set("es_hist_ok", self.es_hist_ok)
            .set("base_consistent", self.base_consistent)
            .set("ex_consistent", self.ex_consistent)
            .set("eliminations", self.eliminations)
            .set("exchanges", self.exchanges)
    }
}

/// Runs the mixed push/pop workload over an [`ElimStack`] and tallies
/// compositional consistency.
pub fn elim_stats(seeds: std::ops::Range<u64>, patience: u32) -> ElimStats {
    let stats = Mutex::new(ElimStats::default());
    let report = Explorer::default().explore(
        &random_over(seeds),
        &|strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| ElimStack::new(ctx, patience),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.push(ctx, Val::Int(10));
                        s.push(ctx, Val::Int(11));
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.pop(ctx);
                        s.pop(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, s: &ElimStack| {
                        s.push(ctx, Val::Int(30));
                        s.pop(ctx);
                    }),
                ],
                |_, s, _| {
                    (
                        s.obj().snapshot(),
                        s.base_obj().snapshot(),
                        s.exchanger_obj().snapshot(),
                    )
                },
            )
        },
        |_, out| {
            let mut stats = stats.lock();
            stats.runs += 1;
            match &out.result {
                Err(_) => stats.model_errors += 1,
                Ok((es, base, ex)) => {
                    if check_stack_consistent(es).is_ok() {
                        stats.es_consistent += 1;
                    }
                    if find_linearization(es, &StackInterp, &[]).is_some() {
                        stats.es_hist_ok += 1;
                    }
                    if check_stack_consistent(base).is_ok() {
                        stats.base_consistent += 1;
                    }
                    if check_exchanger_consistent(ex).is_ok() {
                        stats.ex_consistent += 1;
                    }
                    stats.eliminations += (es.len() - base.len()) as u64 / 2;
                    stats.exchanges += ex.iter().filter(|(_, e)| e.ty.succeeded()).count() as u64;
                }
            }
        },
    );
    let mut stats = stats.into_inner();
    stats.phase_ns = report.phase_ns;
    stats.workers = report.workers;
    stats
}

/// Per-run statistics for the Chase-Lev deque (E9/P3).
#[derive(Clone, Debug, Default)]
pub struct DequeStats {
    /// Executions performed.
    pub runs: u64,
    /// Aborted executions.
    pub model_errors: u64,
    /// Graph satisfies `DequeConsistent`.
    pub consistent: u64,
    /// Mutator subgraph admits a linearization.
    pub hist_ok: u64,
    /// Per-phase busy time from the exploration (see `orc11::trace`).
    pub phase_ns: PhaseNs,
    /// Per-worker load-balance counters from the exploration.
    pub workers: Vec<WorkerStats>,
}

impl DequeStats {
    /// Machine-readable form.
    pub fn to_json(&self) -> orc11::Json {
        orc11::Json::obj()
            .set("runs", self.runs)
            .set("model_errors", self.model_errors)
            .set("consistent", self.consistent)
            .set("hist_ok", self.hist_ok)
    }
}

/// Runs the owner+2-thieves workload over `seeds` executions of a
/// [`ChaseLevDeque`] and tallies consistency.
pub fn deque_stats(seeds: std::ops::Range<u64>) -> DequeStats {
    use compass::deque_spec::{check_deque_consistent, mutator_subgraph, DequeInterp};
    let stats = Mutex::new(DequeStats::default());
    let report = Explorer::default().explore(
        &random_over(seeds),
        &|strategy| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| ChaseLevDeque::new(ctx, 8),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.push(ctx, Val::Int(1));
                        d.push(ctx, Val::Int(2));
                        d.pop(ctx);
                        d.pop(ctx);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                    Box::new(|ctx: &mut ThreadCtx, d: &ChaseLevDeque| {
                        d.steal(ctx);
                    }),
                ],
                |_, d, _| d.obj().snapshot(),
            )
        },
        |_, out| {
            let mut stats = stats.lock();
            stats.runs += 1;
            match &out.result {
                Err(_) => stats.model_errors += 1,
                Ok(g) => {
                    if check_deque_consistent(g).is_ok() {
                        stats.consistent += 1;
                    }
                    if find_linearization(&mutator_subgraph(g), &DequeInterp, &[]).is_some() {
                        stats.hist_ok += 1;
                    }
                }
            }
        },
    );
    let mut stats = stats.into_inner();
    stats.phase_ns = report.phase_ns;
    stats.workers = report.workers;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass_structures::buggy::RelaxedMsQueue;
    use compass_structures::queue::{HwQueue, MsQueue};

    #[test]
    fn ms_queue_satisfies_every_style() {
        let s = queue_spec_stats(MsQueue::new, 0..40);
        assert_eq!(s.model_errors, 0);
        assert_eq!(s.lat_hb, s.runs);
        assert_eq!(s.lat_so, s.runs);
        assert_eq!(s.lat_abs, s.runs, "MS commit order always replays");
        assert_eq!(s.lat_hist, s.runs);
    }

    #[test]
    fn hw_queue_satisfies_hb_but_not_always_abs() {
        let s = queue_spec_stats(|ctx| HwQueue::new(ctx, 8), 0..300);
        assert_eq!(s.model_errors, 0);
        assert_eq!(s.lat_hb, s.runs, "LAT_hb always holds");
        assert!(
            s.lat_abs < s.runs,
            "some HW executions must defeat commit-order abstract-state \
             construction (the §3.2 phenomenon); got {}/{}",
            s.lat_abs,
            s.runs
        );
    }

    #[test]
    fn relaxed_ms_queue_fails_hb() {
        let s = queue_spec_stats(RelaxedMsQueue::new, 0..200);
        assert!(s.lat_hb < s.runs, "buggy queue must fail LAT_hb sometimes");
    }

    #[test]
    fn treiber_always_linearizable() {
        let s = treiber_hist_stats(0..40);
        assert_eq!(s.model_errors, 0);
        assert_eq!(s.consistent, s.runs);
        assert_eq!(s.hist_ok, s.runs);
    }

    #[test]
    fn deque_workload_consistent() {
        let s = deque_stats(0..60);
        assert_eq!(s.model_errors, 0);
        assert_eq!(s.consistent, s.runs);
        assert_eq!(s.hist_ok, s.runs);
    }

    #[test]
    fn elimination_composition_consistent() {
        let s = elim_stats(0..60, 3);
        assert_eq!(s.model_errors, 0);
        assert_eq!(s.es_consistent, s.runs);
        assert_eq!(s.base_consistent, s.runs);
        assert_eq!(s.ex_consistent, s.runs);
    }
}
