//! [`ConformSubject`] drivers wiring the native structures to the
//! runtime conformance harness (`compass::conform`).
//!
//! Each driver stress-runs one `compass-native` structure on real
//! threads via the `compass-native` recorder (`feature = "recorder"`),
//! translating results into the event vocabularies the model checker
//! already uses (`QueueEvent`, `StackEvent`, ...) — the op enums live in
//! `compass`, not here. Every produced value is distinct
//! (`(thread+1)*1_000_000 + k`), which is what makes the structural
//! conformance checks exact: each value has at most one producer and one
//! taker.

use std::sync::Barrier;

use compass::conform::{ConformEvent, ConformSubject, History, RoundSpec};
use compass::deque_spec::DequeEvent;
use compass::exchanger_spec::ExchangeEvent;
use compass::queue_spec::QueueEvent;
use compass::stack_spec::StackEvent;
use compass_native::recorder::{run_round, Clock, Jitter, OpLog, TimedOp};
use compass_native::{ConcurrentQueue, ConcurrentStack, Steal};
use orc11::Val;

/// The distinct value produced by thread `index` for its `k`-th produce.
fn value(index: usize, k: usize) -> i64 {
    (index as i64 + 1) * 1_000_000 + k as i64
}

/// Converts recorder logs (thread-indexed) into a conform [`History`].
fn to_history<E: ConformEvent>(logs: Vec<Vec<TimedOp<E>>>) -> History<E> {
    History::from_tuples(
        logs.into_iter()
            .map(|ops| ops.into_iter().map(|t| (t.op, t.inv, t.resp)).collect())
            .collect(),
    )
}

/// A FIFO queue under conformance test. The factory receives the round's
/// total produce count, so bounded non-recycling queues ([`
/// compass_native::HwQueue`]) can size themselves.
pub struct QueueSubject<Q, F> {
    name: &'static str,
    make: F,
    _q: std::marker::PhantomData<fn() -> Q>,
}

impl<Q, F> QueueSubject<Q, F>
where
    Q: ConcurrentQueue<i64>,
    F: Fn(usize) -> Q + Sync,
{
    /// A named queue subject built by `make(total_enqueues)` each round.
    pub fn new(name: &'static str, make: F) -> Self {
        QueueSubject {
            name,
            make,
            _q: std::marker::PhantomData,
        }
    }
}

impl<Q, F> ConformSubject for QueueSubject<Q, F>
where
    Q: ConcurrentQueue<i64>,
    F: Fn(usize) -> Q + Sync,
{
    type Ev = QueueEvent;

    fn name(&self) -> &str {
        self.name
    }

    fn round(&self, spec: &RoundSpec) -> History<QueueEvent> {
        let q = (self.make)(spec.threads * spec.ops_per_thread);
        let logs = run_round(spec.threads, spec.seed, |ctx, log| {
            let mut produced = 0;
            for _ in 0..spec.ops_per_thread {
                ctx.jitter.stagger();
                if ctx.jitter.chance(1, 2) {
                    let v = value(ctx.index, produced);
                    produced += 1;
                    log.record(
                        ctx.clock,
                        || q.enqueue(v),
                        |()| Some(QueueEvent::Enq(Val::Int(v))),
                    );
                } else {
                    log.record(
                        ctx.clock,
                        || q.dequeue(),
                        |r| {
                            Some(match r {
                                Some(w) => QueueEvent::Deq(Val::Int(*w)),
                                None => QueueEvent::EmpDeq,
                            })
                        },
                    );
                }
            }
        });
        to_history(logs)
    }
}

/// A LIFO stack under conformance test.
pub struct StackSubject<S, F> {
    name: &'static str,
    make: F,
    _s: std::marker::PhantomData<fn() -> S>,
}

impl<S, F> StackSubject<S, F>
where
    S: ConcurrentStack<i64>,
    F: Fn() -> S + Sync,
{
    /// A named stack subject built by `make()` each round.
    pub fn new(name: &'static str, make: F) -> Self {
        StackSubject {
            name,
            make,
            _s: std::marker::PhantomData,
        }
    }
}

impl<S, F> ConformSubject for StackSubject<S, F>
where
    S: ConcurrentStack<i64>,
    F: Fn() -> S + Sync,
{
    type Ev = StackEvent;

    fn name(&self) -> &str {
        self.name
    }

    fn round(&self, spec: &RoundSpec) -> History<StackEvent> {
        let s = (self.make)();
        let logs = run_round(spec.threads, spec.seed, |ctx, log| {
            let mut produced = 0;
            for _ in 0..spec.ops_per_thread {
                ctx.jitter.stagger();
                if ctx.jitter.chance(1, 2) {
                    let v = value(ctx.index, produced);
                    produced += 1;
                    log.record(
                        ctx.clock,
                        || s.push(v),
                        |()| Some(StackEvent::Push(Val::Int(v))),
                    );
                } else {
                    log.record(
                        ctx.clock,
                        || s.pop(),
                        |r| {
                            Some(match r {
                                Some(w) => StackEvent::Pop(Val::Int(*w)),
                                None => StackEvent::EmpPop,
                            })
                        },
                    );
                }
            }
        });
        to_history(logs)
    }
}

/// The SPSC ring under conformance test, checked against the queue
/// clauses. Always two threads — the structure's contract — whatever the
/// round asks for: thread 0 produces (blocking pushes; the ring is sized
/// to the round so they never block indefinitely), thread 1 consumes
/// with `try_pop`, recording misses as empty dequeues.
pub struct SpscSubject;

impl ConformSubject for SpscSubject {
    type Ev = QueueEvent;

    fn name(&self) -> &str {
        "spsc_ring"
    }

    fn round(&self, spec: &RoundSpec) -> History<QueueEvent> {
        let (tx, rx) = compass_native::spsc_ring(spec.ops_per_thread.max(1));
        let logs = run_round(2, spec.seed, |ctx, log| {
            if ctx.index == 0 {
                for k in 0..spec.ops_per_thread {
                    ctx.jitter.stagger();
                    let v = value(0, k);
                    log.record(
                        ctx.clock,
                        || tx.push(v),
                        |()| Some(QueueEvent::Enq(Val::Int(v))),
                    );
                }
            } else {
                for _ in 0..spec.ops_per_thread {
                    ctx.jitter.stagger();
                    log.record(
                        ctx.clock,
                        || rx.try_pop(),
                        |r| {
                            Some(match r {
                                Some(w) => QueueEvent::Deq(Val::Int(*w)),
                                None => QueueEvent::EmpDeq,
                            })
                        },
                    );
                }
            }
        });
        to_history(logs)
    }
}

/// The Chase-Lev work-stealing deque under conformance test: thread 0 is
/// the owner (pushes and pops), every other thread steals. `Worker` is
/// single-owner (`Send` but not `Sync`), so this subject hand-rolls the
/// barrier-started round instead of using `run_round`, moving the worker
/// endpoint into the owner thread.
pub struct DequeSubject;

impl ConformSubject for DequeSubject {
    type Ev = DequeEvent;

    fn name(&self) -> &str {
        "chase_lev"
    }

    fn round(&self, spec: &RoundSpec) -> History<DequeEvent> {
        let threads = spec.threads.max(2);
        let ops = spec.ops_per_thread;
        let (worker, stealer) = compass_native::chase_lev(ops.max(1));
        let clock = Clock::new();
        let barrier = Barrier::new(threads);
        let logs: Vec<Vec<TimedOp<DequeEvent>>> = std::thread::scope(|scope| {
            let owner = {
                let clock = &clock;
                let barrier = &barrier;
                let seed = spec.seed;
                scope.spawn(move || {
                    let mut jitter = Jitter::for_thread(seed, 0);
                    let mut log = OpLog::with_capacity(ops);
                    barrier.wait();
                    let mut produced = 0;
                    for _ in 0..ops {
                        jitter.stagger();
                        // Push-biased so thieves have something to fight
                        // over; the capacity bound is `ops` pushes.
                        if produced < ops && jitter.chance(2, 3) {
                            let v = value(0, produced);
                            produced += 1;
                            log.record(
                                clock,
                                || worker.push(v),
                                |()| Some(DequeEvent::Push(Val::Int(v))),
                            );
                        } else {
                            log.record(
                                clock,
                                || worker.pop(),
                                |r| {
                                    Some(match r {
                                        Some(w) => DequeEvent::Pop(Val::Int(*w)),
                                        None => DequeEvent::EmpPop,
                                    })
                                },
                            );
                        }
                    }
                    log.into_ops()
                })
            };
            let thieves: Vec<_> = (1..threads)
                .map(|index| {
                    let stealer = stealer.clone();
                    let clock = &clock;
                    let barrier = &barrier;
                    let seed = spec.seed;
                    scope.spawn(move || {
                        let mut jitter = Jitter::for_thread(seed, index);
                        let mut log = OpLog::with_capacity(ops);
                        barrier.wait();
                        for _ in 0..ops {
                            jitter.stagger();
                            // A lost race is not an event: record nothing
                            // on `Retry`.
                            log.record(
                                clock,
                                || stealer.steal(),
                                |r| match r {
                                    Steal::Stolen(w) => Some(DequeEvent::Steal(Val::Int(*w))),
                                    Steal::Empty => Some(DequeEvent::EmpSteal),
                                    Steal::Retry => None,
                                },
                            );
                        }
                        log.into_ops()
                    })
                })
                .collect();
            let mut logs = vec![owner.join().unwrap()];
            logs.extend(thieves.into_iter().map(|h| h.join().unwrap()));
            logs
        });
        to_history(logs)
    }
}

/// The exchanger under conformance test: every thread repeatedly offers
/// a distinct value with bounded patience; both successes and timeouts
/// are recorded (a timeout is an event too — the `CONFORM-XCHG` clauses
/// only constrain successes).
pub struct ExchangerSubject;

impl ConformSubject for ExchangerSubject {
    type Ev = ExchangeEvent;

    fn name(&self) -> &str {
        "exchanger"
    }

    fn round(&self, spec: &RoundSpec) -> History<ExchangeEvent> {
        let ex = compass_native::Exchanger::new();
        let threads = spec.threads.max(2);
        let logs = run_round(threads, spec.seed, |ctx, log| {
            for k in 0..spec.ops_per_thread {
                ctx.jitter.stagger();
                let v = value(ctx.index, k);
                let _ = log.record(
                    ctx.clock,
                    || ex.exchange(v, 512),
                    |r| {
                        Some(ExchangeEvent {
                            give: Val::Int(v),
                            got: r.as_ref().ok().map(|&w| Val::Int(w)),
                        })
                    },
                );
            }
        });
        to_history(logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::conform::{run_conformance, ConformOptions};
    use compass_native::{MsQueue, TreiberStack};

    fn quick() -> ConformOptions {
        ConformOptions {
            rounds: 3,
            threads: 4,
            ops_per_thread: 24,
            seed0: 1,
            ..ConformOptions::default()
        }
    }

    #[test]
    fn ms_queue_rounds_conform() {
        let subject = QueueSubject::new("MsQueue", |_| MsQueue::new());
        run_conformance(&subject, &quick()).assert_clean();
    }

    #[test]
    fn treiber_rounds_conform() {
        let subject = StackSubject::new("TreiberStack", TreiberStack::new);
        run_conformance(&subject, &quick()).assert_clean();
    }

    #[test]
    fn spsc_rounds_conform() {
        run_conformance(&SpscSubject, &quick()).assert_clean();
    }

    #[test]
    fn chase_lev_rounds_conform() {
        run_conformance(&DequeSubject, &quick()).assert_clean();
    }

    #[test]
    fn exchanger_rounds_conform() {
        run_conformance(&ExchangerSubject, &quick()).assert_clean();
    }
}
