//! # compass-bench — experiment regenerators and benchmark workloads
//!
//! One executable per evaluation artefact of the paper (see `DESIGN.md`
//! §4 for the experiment index):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `e1_mp` | Figure 1/3 — Message-Passing client (with ablation) |
//! | `e2_spec_matrix` | Figure 2 — the spec-strength hierarchy, measured |
//! | `e4_hist_stack` | Figure 4 — `LAT_hb^hist` for the Treiber stack |
//! | `e5_elimination` | Figure 5 / §4 — exchanger + elimination stack |
//! | `e6_sizes` | §1.2 — mechanization-size table analogue |
//! | `e7_spsc` | §3.2 — SPSC client |
//! | `e8_litmus` | §2.3/§5 — substrate litmus gallery |
//! | `e11_conform` | runtime conformance: native structures vs. the specs (DESIGN.md §7) |
//! | `e12_perf` | performance trajectory: latency/throughput curves + explorer speed (DESIGN.md §9) |
//!
//! The `benches/` directory holds the performance benchmarks (P1 queues,
//! P2 stacks, P3 checker throughput, P4 SPSC), built on the in-tree
//! [`timing`] harness. `e12_perf`'s trajectory documents
//! (`BENCH_<n>.json`, written by `scripts/run_bench.sh`) and their
//! regression comparator (`bench_compare`) live in [`perf`].

#![warn(missing_docs)]

pub mod conform_subjects;
pub mod metrics;
pub mod perf;
pub mod table;
pub mod timing;
pub mod workloads;
