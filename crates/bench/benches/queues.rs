//! P1 — native queue throughput: Michael-Scott vs Herlihy-Wing vs the
//! mutex baseline, across thread counts.
//!
//! Shape expectation: the lock-free queues overtake the mutex queue as
//! threads grow; the array-based HW queue is cheapest per operation
//! while its (bounded, non-recycling) capacity lasts.

use std::sync::atomic::{AtomicBool, Ordering};

use compass_bench::timing::Group;
use compass_native::{ConcurrentQueue, HwQueue, MsQueue, MutexQueue};

const OPS_PER_THREAD: u64 = 4_000;
const SAMPLES: u64 = 10;

/// Producer/consumer pairs hammer the queue; total ops = 2 * pairs * OPS.
fn run_pairs<Q: ConcurrentQueue<u64>>(q: &Q, pairs: usize) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for p in 0..pairs {
            let q = &q;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    q.enqueue(p as u64 * OPS_PER_THREAD + i);
                }
            });
        }
        for _ in 0..pairs {
            let q = &q;
            let stop = &stop;
            scope.spawn(move || {
                let mut taken = 0;
                while taken < OPS_PER_THREAD {
                    if q.dequeue().is_some() {
                        taken += 1;
                    } else if stop.load(Ordering::Relaxed) {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

fn main() {
    let mut group = Group::new("p1_queue_throughput", SAMPLES);
    group.warmup(2);
    for pairs in [1usize, 2, 4] {
        let total_ops = 2 * pairs as u64 * OPS_PER_THREAD;
        group.throughput(total_ops);
        group.bench(&format!("michael-scott/{pairs}"), || {
            run_pairs(&MsQueue::new(), pairs)
        });
        group.bench(&format!("herlihy-wing/{pairs}"), || {
            let q = HwQueue::new((pairs as u64 * OPS_PER_THREAD) as usize);
            run_pairs(&q, pairs)
        });
        group.bench(&format!("mutex-baseline/{pairs}"), || {
            run_pairs(&MutexQueue::new(), pairs)
        });
    }
    group.finish();
}
