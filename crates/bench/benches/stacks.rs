//! P2 — native stack throughput under contention: Treiber vs the
//! elimination stack vs the mutex baseline.
//!
//! Shape expectation (Hendler, Shavit & Yerushalmi 2004, the paper's
//! §4.1 subject): at low thread counts the plain Treiber stack wins; as
//! contention grows, the elimination stack's backoff converts head-CAS
//! failures into successful eliminations and it scales past Treiber.

use compass_bench::timing::Group;
use compass_native::{ConcurrentStack, ElimStack, MutexStack, TreiberStack};

const OPS_PER_THREAD: u64 = 4_000;
const SAMPLES: u64 = 10;

/// Symmetric push/pop mix: every thread alternates push and pop, which
/// maximizes elimination opportunities.
fn run_mixed<S: ConcurrentStack<u64>>(s: &S, threads: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = &s;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    if i % 2 == 0 {
                        s.push(t as u64 * OPS_PER_THREAD + i);
                    } else {
                        let _ = s.pop();
                    }
                }
            });
        }
    });
}

fn main() {
    let mut group = Group::new("p2_stack_contention", SAMPLES);
    group.warmup(2);
    let max = std::thread::available_parallelism().map_or(8, |n| n.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > max.max(4) {
            continue;
        }
        group.throughput(threads as u64 * OPS_PER_THREAD);
        group.bench(&format!("treiber/{threads}"), || {
            run_mixed(&TreiberStack::new(), threads)
        });
        group.bench(&format!("elimination/{threads}"), || {
            run_mixed(&ElimStack::new(threads.max(1), 128), threads)
        });
        group.bench(&format!("mutex-baseline/{threads}"), || {
            run_mixed(&MutexStack::new(), threads)
        });
    }
    group.finish();
}
