//! P2 — native stack throughput under contention: Treiber vs the
//! elimination stack vs the mutex baseline.
//!
//! Shape expectation (Hendler, Shavit & Yerushalmi 2004, the paper's
//! §4.1 subject): at low thread counts the plain Treiber stack wins; as
//! contention grows, the elimination stack's backoff converts head-CAS
//! failures into successful eliminations and it scales past Treiber.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use compass_native::{ConcurrentStack, ElimStack, MutexStack, TreiberStack};

const OPS_PER_THREAD: u64 = 4_000;

/// Symmetric push/pop mix: every thread alternates push and pop, which
/// maximizes elimination opportunities.
fn run_mixed<S: ConcurrentStack<u64>>(s: &S, threads: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = &s;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    if i % 2 == 0 {
                        s.push(t as u64 * OPS_PER_THREAD + i);
                    } else {
                        let _ = s.pop();
                    }
                }
            });
        }
    });
}

fn bench_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_stack_contention");
    let max = std::thread::available_parallelism().map_or(8, |n| n.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > max.max(4) {
            continue;
        }
        let total_ops = threads as u64 * OPS_PER_THREAD;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(
            BenchmarkId::new("treiber", threads),
            &threads,
            |b, &threads| b.iter(|| run_mixed(&TreiberStack::new(), threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("elimination", threads),
            &threads,
            |b, &threads| b.iter(|| run_mixed(&ElimStack::new(threads.max(1), 128), threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("mutex-baseline", threads),
            &threads,
            |b, &threads| b.iter(|| run_mixed(&MutexStack::new(), threads)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stacks
}
criterion_main!(benches);
