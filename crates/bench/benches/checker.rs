//! P3 — checking throughput: model executions per second per structure,
//! and the cost of the `LAT_hb^hist` linearization search as histories
//! grow.

use compass::history::{find_linearization, QueueInterp};
use compass::queue_spec::QueueEvent;
use compass::{EventId, Graph};
use compass_bench::timing::Group;
use compass_bench::workloads::{deque_stats, elim_stats, queue_spec_stats, treiber_hist_stats};
use compass_structures::queue::{HwQueue, MsQueue};
use orc11::Val;

const SAMPLES: u64 = 10;

fn bench_model_checking() {
    let mut group = Group::new("p3_model_checking", SAMPLES);
    group.warmup(2);
    const RUNS: u64 = 10;
    group.throughput(RUNS);
    let mut seed = 0;
    group.bench("ms-queue/run+check", || {
        let s = queue_spec_stats(MsQueue::new, seed..seed + RUNS);
        seed += RUNS;
        s
    });
    let mut seed = 0;
    group.bench("hw-queue/run+check", || {
        let s = queue_spec_stats(|ctx| HwQueue::new(ctx, 8), seed..seed + RUNS);
        seed += RUNS;
        s
    });
    let mut seed = 0;
    group.bench("treiber/run+check", || {
        let s = treiber_hist_stats(seed..seed + RUNS);
        seed += RUNS;
        s
    });
    let mut seed = 0;
    group.bench("chase-lev/run+check", || {
        let s = deque_stats(seed..seed + RUNS);
        seed += RUNS;
        s
    });
    let mut seed = 0;
    group.bench("elim-stack/run+check", || {
        let s = elim_stats(seed..seed + RUNS, 3);
        seed += RUNS;
        s
    });
    group.finish();
}

/// A worst-ish-case history for the search: n concurrent enqueues (no
/// lhb) followed by n matched dequeues.
fn synthetic_history(n: usize) -> Graph<QueueEvent> {
    let mut g = Graph::new();
    for i in 0..n {
        let id = EventId::from_raw(i as u64);
        g.add_event(
            QueueEvent::Enq(Val::Int(i as i64)),
            1,
            i as u64,
            [id].into_iter().collect(),
        );
    }
    for i in 0..n {
        let id = EventId::from_raw((n + i) as u64);
        let src = EventId::from_raw(i as u64);
        g.add_event(
            QueueEvent::Deq(Val::Int(i as i64)),
            2,
            (n + i) as u64,
            [src, id].into_iter().collect(),
        );
        g.add_so(src, id);
    }
    g
}

fn bench_linearization_search() {
    let mut group = Group::new("p3_linearization_search", SAMPLES);
    group.warmup(2);
    for n in [2usize, 4, 6, 8] {
        let g = synthetic_history(n);
        group.throughput((2 * n) as u64);
        group.bench(&format!("events/{}", 2 * n), || {
            find_linearization(&g, &QueueInterp, &[]).is_some()
        });
    }
    group.finish();
}

fn main() {
    bench_model_checking();
    bench_linearization_search();
}
