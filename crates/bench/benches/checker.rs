//! P3 — checking throughput: model executions per second per structure,
//! and the cost of the `LAT_hb^hist` linearization search as histories
//! grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use compass::history::{find_linearization, QueueInterp};
use compass::queue_spec::QueueEvent;
use compass::{EventId, Graph};
use compass_bench::workloads::{deque_stats, elim_stats, queue_spec_stats, treiber_hist_stats};
use compass_structures::queue::{HwQueue, MsQueue};
use orc11::Val;

fn bench_model_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_model_checking");
    const RUNS: u64 = 10;
    group.throughput(Throughput::Elements(RUNS));
    group.bench_function("ms-queue/run+check", |b| {
        let mut seed = 0;
        b.iter(|| {
            let s = queue_spec_stats(MsQueue::new, seed..seed + RUNS);
            seed += RUNS;
            s
        })
    });
    group.bench_function("hw-queue/run+check", |b| {
        let mut seed = 0;
        b.iter(|| {
            let s = queue_spec_stats(|ctx| HwQueue::new(ctx, 8), seed..seed + RUNS);
            seed += RUNS;
            s
        })
    });
    group.bench_function("treiber/run+check", |b| {
        let mut seed = 0;
        b.iter(|| {
            let s = treiber_hist_stats(seed..seed + RUNS);
            seed += RUNS;
            s
        })
    });
    group.bench_function("chase-lev/run+check", |b| {
        let mut seed = 0;
        b.iter(|| {
            let s = deque_stats(seed..seed + RUNS);
            seed += RUNS;
            s
        })
    });
    group.bench_function("elim-stack/run+check", |b| {
        let mut seed = 0;
        b.iter(|| {
            let s = elim_stats(seed..seed + RUNS, 3);
            seed += RUNS;
            s
        })
    });
    group.finish();
}

/// A worst-ish-case history for the search: n concurrent enqueues (no
/// lhb) followed by n matched dequeues.
fn synthetic_history(n: usize) -> Graph<QueueEvent> {
    let mut g = Graph::new();
    for i in 0..n {
        let id = EventId::from_raw(i as u64);
        g.add_event(
            QueueEvent::Enq(Val::Int(i as i64)),
            1,
            i as u64,
            [id].into_iter().collect(),
        );
    }
    for i in 0..n {
        let id = EventId::from_raw((n + i) as u64);
        let src = EventId::from_raw(i as u64);
        g.add_event(
            QueueEvent::Deq(Val::Int(i as i64)),
            2,
            (n + i) as u64,
            [src, id].into_iter().collect(),
        );
        g.add_so(src, id);
    }
    g
}

fn bench_linearization_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_linearization_search");
    for n in [2usize, 4, 6, 8] {
        let g = synthetic_history(n);
        group.throughput(Throughput::Elements((2 * n) as u64));
        group.bench_with_input(BenchmarkId::new("events", 2 * n), &g, |b, g| {
            b.iter(|| find_linearization(g, &QueueInterp, &[]).is_some())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_checking, bench_linearization_search
}
criterion_main!(benches);
