//! P4 — SPSC throughput: the bounded ring vs the Michael-Scott queue vs
//! std::sync::mpsc, single producer to single consumer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use compass_native::{spsc_ring, MsQueue};

const N: u64 = 100_000;

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("p4_spsc_throughput");
    group.throughput(Throughput::Elements(N));
    group.bench_function("spsc-ring", |b| {
        b.iter(|| {
            let (p, cns) = spsc_ring::<u64>(1024);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..N {
                        p.push(i);
                    }
                });
                scope.spawn(move || {
                    for _ in 0..N {
                        let _ = cns.pop();
                    }
                });
            });
        })
    });
    group.bench_function("ms-queue", |b| {
        b.iter(|| {
            let q = MsQueue::new();
            std::thread::scope(|scope| {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..N {
                        q.push(i);
                    }
                });
                scope.spawn(move || {
                    let mut got = 0;
                    while got < N {
                        if q.pop().is_some() {
                            got += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            });
        })
    });
    group.bench_function("std-mpsc", |b| {
        b.iter(|| {
            let (tx, rx) = std::sync::mpsc::channel::<u64>();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..N {
                        tx.send(i).unwrap();
                    }
                });
                scope.spawn(move || {
                    for _ in 0..N {
                        let _ = rx.recv().unwrap();
                    }
                });
            });
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spsc
}
criterion_main!(benches);
