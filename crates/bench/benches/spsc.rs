//! P4 — SPSC throughput: the bounded ring vs the Michael-Scott queue vs
//! std::sync::mpsc, single producer to single consumer.

use compass_bench::timing::Group;
use compass_native::{spsc_ring, MsQueue};

const N: u64 = 100_000;
const SAMPLES: u64 = 10;

fn main() {
    let mut group = Group::new("p4_spsc_throughput", SAMPLES);
    group.warmup(2);
    group.throughput(N);
    group.bench("spsc-ring", || {
        let (p, cns) = spsc_ring::<u64>(1024);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    p.push(i);
                }
            });
            scope.spawn(move || {
                for _ in 0..N {
                    let _ = cns.pop();
                }
            });
        });
    });
    group.bench("ms-queue", || {
        let q = MsQueue::new();
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                for i in 0..N {
                    q.push(i);
                }
            });
            scope.spawn(move || {
                let mut got = 0;
                while got < N {
                    if q.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    });
    group.bench("std-mpsc", || {
        let (tx, rx) = std::sync::mpsc::channel::<u64>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    tx.send(i).unwrap();
                }
            });
            scope.spawn(move || {
                for _ in 0..N {
                    let _ = rx.recv().unwrap();
                }
            });
        });
    });
    group.finish();
}
