//! Values, locations, and thread identifiers of the model.

use std::fmt;

/// A memory location of the simulated machine.
///
/// Locations are dense indices into the model's location table; they are
/// created with [`crate::ThreadCtx::alloc`] or
/// [`crate::ThreadCtx::alloc_block`]. A `Loc` is only meaningful within the
/// execution that allocated it.
///
/// ```
/// use orc11::{Loc, Val};
/// let v = Val::from(Loc::from_raw(3));
/// assert_eq!(v.as_loc(), Some(Loc::from_raw(3)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u32);

impl Loc {
    /// Creates a location from its raw index.
    ///
    /// Mostly useful in tests; real locations come from allocation.
    pub fn from_raw(idx: u32) -> Self {
        Loc(idx)
    }

    /// The raw index of this location.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The location `offset` slots after `self` inside a block allocated
    /// with [`crate::ThreadCtx::alloc_block`].
    ///
    /// # Panics
    ///
    /// Panics on index overflow. Using an offset that walks past the end of
    /// the allocated block is not detected here but will be rejected by the
    /// memory on access if it walks off the location table.
    pub fn field(self, offset: u32) -> Loc {
        Loc(self.0.checked_add(offset).expect("location index overflow"))
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Identifier of a simulated thread.
///
/// Thread 0 is the "main" thread that runs the setup and finish phases of a
/// [`crate::run_model`] program; the parallel bodies get ids `1..=n`.
pub type ThreadId = usize;

/// A value stored in simulated memory.
///
/// The model is untyped but tagged: a cell holds either the null value, a
/// signed integer, or a location (pointer). CAS compares values for
/// (tag and payload) equality.
///
/// ```
/// use orc11::Val;
/// assert!(Val::Null.is_null());
/// assert_eq!(Val::Int(7).as_int(), Some(7));
/// assert_ne!(Val::Int(0), Val::Null);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Val {
    /// The null pointer / distinguished empty value.
    #[default]
    Null,
    /// An integer value.
    Int(i64),
    /// A pointer to a location.
    Loc(Loc),
}

impl Val {
    /// Whether this is [`Val::Null`].
    pub fn is_null(self) -> bool {
        matches!(self, Val::Null)
    }

    /// The integer payload, if this is an [`Val::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The location payload, if this is a [`Val::Loc`].
    pub fn as_loc(self) -> Option<Loc> {
        match self {
            Val::Loc(l) => Some(l),
            _ => None,
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Val::Int`].
    pub fn expect_int(self) -> i64 {
        self.as_int()
            .unwrap_or_else(|| panic!("expected integer value, got {self:?}"))
    }

    /// The location payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Val::Loc`].
    pub fn expect_loc(self) -> Loc {
        self.as_loc()
            .unwrap_or_else(|| panic!("expected location value, got {self:?}"))
    }
}

impl From<i64> for Val {
    fn from(i: i64) -> Self {
        Val::Int(i)
    }
}

impl From<Loc> for Val {
    fn from(l: Loc) -> Self {
        Val::Loc(l)
    }
}

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Null => write!(f, "null"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Loc(l) => write!(f, "{l:?}"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_distinct_from_zero() {
        assert_ne!(Val::Null, Val::Int(0));
        assert!(Val::Null.is_null());
        assert!(!Val::Int(0).is_null());
    }

    #[test]
    fn loc_field_offsets() {
        let base = Loc::from_raw(10);
        assert_eq!(base.field(0), base);
        assert_eq!(base.field(2).index(), 12);
    }

    #[test]
    fn val_conversions() {
        assert_eq!(Val::from(5i64), Val::Int(5));
        assert_eq!(Val::from(Loc::from_raw(1)).expect_loc(), Loc::from_raw(1));
        assert_eq!(Val::Int(-3).expect_int(), -3);
        assert_eq!(Val::Null.as_int(), None);
        assert_eq!(Val::Int(1).as_loc(), None);
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn expect_int_panics_on_null() {
        let _ = Val::Null.expect_int();
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Val::Null), "null");
        assert_eq!(format!("{:?}", Val::Int(9)), "9");
        assert_eq!(format!("{}", Loc::from_raw(4)), "ℓ4");
    }
}
