//! Per-thread view state and the fence transfer rules.

use crate::frontier::Frontier;
use crate::mode::FenceMode;

/// The view state of a simulated thread.
///
/// Following the operational presentations of RC11-style models (and §2.3
/// of the paper), each thread carries three frontiers:
///
/// * `cur` — everything the thread has *observed* (its local view),
/// * `acq` — `cur` plus frontiers obtained by **relaxed** reads, which only
///   become observations after an acquire *fence* (`cur ⊑ acq`),
/// * `rel` — the snapshot of `cur` taken at the last release *fence*, which
///   is what a **relaxed** write publishes (`rel ⊑ cur`).
#[derive(Clone, Debug, Default)]
pub struct ThreadView {
    /// The thread's current frontier.
    pub cur: Frontier,
    /// Pending acquisitions from relaxed reads.
    pub acq: Frontier,
    /// Snapshot published by relaxed writes (last release fence).
    pub rel: Frontier,
}

impl ThreadView {
    /// A fresh thread view with all frontiers empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// A thread view inheriting a parent's `cur` frontier (thread spawn
    /// edge: everything the parent observed happens-before the child).
    pub fn inherit(parent_cur: &Frontier) -> Self {
        ThreadView {
            cur: parent_cur.clone(),
            acq: parent_cur.clone(),
            rel: Frontier::new(),
        }
    }

    /// Joins a message frontier as an **acquiring** read would: into `cur`
    /// (and `acq`, to keep `cur ⊑ acq`).
    pub fn acquire(&mut self, fr: &Frontier) {
        self.cur.join(fr);
        self.acq.join(fr);
    }

    /// Joins a message frontier as a **relaxed** read would: only into
    /// `acq`, to be promoted by a later acquire fence.
    pub fn acquire_relaxed(&mut self, fr: &Frontier) {
        self.acq.join(fr);
    }

    /// Applies a fence.
    ///
    /// [`FenceMode::SeqCst`] additionally requires the global SC frontier;
    /// use [`ThreadView::sc_fence`] for it — calling `fence(SeqCst)` here
    /// applies only its acquire-release part.
    pub fn fence(&mut self, mode: FenceMode) {
        match mode {
            FenceMode::Acquire => {
                let acq = self.acq.clone();
                self.cur.join(&acq);
            }
            FenceMode::Release => {
                self.rel = self.cur.clone();
            }
            FenceMode::AcqRel | FenceMode::SeqCst => {
                self.fence(FenceMode::Acquire);
                self.fence(FenceMode::Release);
            }
        }
    }

    /// Applies an SC fence against the global SC frontier `sc`: promotes
    /// pending acquisitions, joins with `sc`, snapshots into `rel`, and
    /// publishes the result back into `sc`. All SC fences thereby totally
    /// order their views, giving the store-load ordering that
    /// release/acquire fences cannot.
    pub fn sc_fence(&mut self, sc: &mut Frontier) {
        let acq = self.acq.clone();
        self.cur.join(&acq);
        self.cur.join(sc);
        self.acq.join(sc);
        self.rel = self.cur.clone();
        *sc = self.cur.clone();
    }

    /// Checks the internal invariants `rel ⊑ cur ⊑ acq`.
    pub fn invariants_hold(&self) -> bool {
        self.rel.leq(&self.cur) && self.cur.leq(&self.acq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val::Loc;
    use crate::view::View;

    fn fr(loc: u32, ts: u64) -> Frontier {
        let mut f = Frontier::new();
        f.view.bump(Loc::from_raw(loc), ts);
        f
    }

    fn view_of(f: &Frontier) -> &View {
        &f.view
    }

    #[test]
    fn acquire_updates_cur_and_acq() {
        let mut tv = ThreadView::new();
        tv.acquire(&fr(0, 3));
        assert_eq!(view_of(&tv.cur).get(Loc::from_raw(0)), Some(3));
        assert_eq!(view_of(&tv.acq).get(Loc::from_raw(0)), Some(3));
        assert!(tv.invariants_hold());
    }

    #[test]
    fn relaxed_read_needs_acquire_fence() {
        let mut tv = ThreadView::new();
        tv.acquire_relaxed(&fr(0, 3));
        // Not yet observed...
        assert_eq!(view_of(&tv.cur).get(Loc::from_raw(0)), None);
        assert!(tv.invariants_hold());
        // ...until an acquire fence promotes it.
        tv.fence(FenceMode::Acquire);
        assert_eq!(view_of(&tv.cur).get(Loc::from_raw(0)), Some(3));
        assert!(tv.invariants_hold());
    }

    #[test]
    fn release_fence_snapshots_cur() {
        let mut tv = ThreadView::new();
        tv.acquire(&fr(0, 1));
        tv.fence(FenceMode::Release);
        assert_eq!(view_of(&tv.rel).get(Loc::from_raw(0)), Some(1));
        // Later observations do NOT retroactively enter rel.
        tv.acquire(&fr(0, 5));
        assert_eq!(view_of(&tv.rel).get(Loc::from_raw(0)), Some(1));
        assert!(tv.invariants_hold());
    }

    #[test]
    fn acqrel_fence_does_both() {
        let mut tv = ThreadView::new();
        tv.acquire_relaxed(&fr(1, 2));
        tv.fence(FenceMode::AcqRel);
        assert_eq!(view_of(&tv.cur).get(Loc::from_raw(1)), Some(2));
        assert_eq!(view_of(&tv.rel).get(Loc::from_raw(1)), Some(2));
    }

    #[test]
    fn inherit_copies_cur_only() {
        let mut parent = ThreadView::new();
        parent.acquire(&fr(0, 4));
        parent.fence(FenceMode::Release);
        let child = ThreadView::inherit(&parent.cur);
        assert_eq!(view_of(&child.cur).get(Loc::from_raw(0)), Some(4));
        assert!(view_of(&child.rel).is_empty());
        assert!(child.invariants_hold());
    }
}
