//! Throttled stderr progress lines (`COMPASS_PROGRESS`).
//!
//! The checker and the experiment binaries all want the same thing: an
//! opt-in, carriage-return-refreshed status line that many worker
//! threads can feed without ever blocking on it. [`ProgressLine`] is
//! that plumbing — the rendering stays with the caller (each driver has
//! its own vocabulary), this module owns only the gating: the env knob,
//! the `try_lock` so the line never serializes workers, and the 200ms
//! refresh throttle.

use std::sync::Mutex;
use std::time::Instant;

/// Minimum interval between refreshes of the line.
const REFRESH_MS: u128 = 200;

/// Whether `COMPASS_PROGRESS` asks for progress lines (set and not "0").
pub fn from_env() -> bool {
    std::env::var_os("COMPASS_PROGRESS").is_some_and(|v| v != *"0")
}

/// A throttled, non-blocking stderr status line.
///
/// Any number of threads may call [`maybe`](ProgressLine::maybe); at
/// most one at a time enters the printer (via `try_lock`, so nobody
/// ever waits), and at most one refresh lands per 200ms. The closure
/// renders the line only when it will actually be printed.
#[derive(Debug)]
pub struct ProgressLine {
    enabled: bool,
    last: Mutex<Instant>,
}

impl ProgressLine {
    /// A line that prints only when `enabled` (callers usually pass
    /// [`from_env`]).
    pub fn new(enabled: bool) -> Self {
        ProgressLine {
            enabled,
            last: Mutex::new(Instant::now()),
        }
    }

    /// Whether this line prints at all (lets callers skip work that
    /// only feeds the line, e.g. shared op counters).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Refreshes the line with `render()`'s text if enabled, the
    /// printer is free, and 200ms have passed since the last refresh.
    /// Trailing padding covers a previously-longer line.
    pub fn maybe(&self, render: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let Ok(mut last) = self.last.try_lock() else {
            return;
        };
        let now = Instant::now();
        if now.duration_since(*last).as_millis() < REFRESH_MS {
            return;
        }
        *last = now;
        eprint!("\r{}    ", render());
    }

    /// Overwrites the line with a final summary and a newline.
    pub fn finish(&self, line: &str) {
        if !self.enabled {
            return;
        }
        eprintln!("\r{line}            ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_line_never_renders() {
        let p = ProgressLine::new(false);
        p.maybe(|| unreachable!("disabled line must not render"));
        assert!(!p.enabled());
        p.finish("done");
    }

    #[test]
    fn throttle_skips_immediate_rerender() {
        let p = ProgressLine::new(true);
        // Constructed "now": the first maybe() is inside the throttle
        // window, so the closure must not run (nothing is printed from
        // tests either way, but the gating is what we pin).
        p.maybe(|| unreachable!("throttled render must not run"));
    }
}
