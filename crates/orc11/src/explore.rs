//! Drivers for exploring a program's executions.
//!
//! Stateless model checking: a [`Model`] is re-run many times, each time
//! with a different [`crate::Strategy`]. [`Explorer::random`] samples
//! interleavings with seeded random strategies, [`Explorer::pct`] uses
//! PCT priority scheduling, and [`Explorer::dfs`] enumerates the
//! decision tree exhaustively (bounded by an execution budget). All
//! three are thin wrappers over one engine ([`Explorer::explore`]) that
//! pulls [`StrategyDesc`]s from a shared [`crate::WorkSource`] — with
//! [`Explorer::threads`] workers in parallel when asked (or by default,
//! via `COMPASS_THREADS`), with a deterministic merged report.

use std::fmt;

use crate::error::ModelError;
use crate::exec::RunOutcome;
use crate::model::Model;
use crate::parallel::{self, Sink};
use crate::work::{StrategyDesc, WorkSpec};

/// Default cap on the number of [`ModelError`]s kept verbatim in an
/// [`ExploreReport`] (the *count* is always exact).
pub const DEFAULT_MAX_ERRORS: usize = 16;

/// The PCT scheduling-decision horizon used by [`Explorer::pct`].
pub const DEFAULT_PCT_HORIZON: u64 = 64;

/// Aggregated result of an exploration.
///
/// Reports merge ([`ExploreReport::merge`]): every field is either a
/// commutative accumulation (counters, histograms, coverage) or kept in
/// descriptor order (errors), so a parallel exploration's merged report
/// equals the serial one.
#[derive(Debug)]
pub struct ExploreReport {
    /// Executions performed.
    pub execs: u64,
    /// Executions that completed without a model error.
    pub ok: u64,
    /// Model errors encountered, with the descriptor of the execution
    /// that produced each, sorted by descriptor (= serial visit order).
    /// At most [`ExploreReport::max_errors`] are kept.
    pub errors: Vec<(StrategyDesc, ModelError)>,
    /// Total number of errors (may exceed `errors.len()`).
    pub error_count: u64,
    /// Cap on `errors` (default [`DEFAULT_MAX_ERRORS`]); the smallest
    /// descriptors win, which is what a serial run's "first N" is.
    pub max_errors: usize,
    /// For DFS: whether the decision tree was fully explored within the
    /// execution budget.
    pub exhausted: bool,
    /// For DFS: whether the execution budget cut the enumeration short.
    /// A truncated run visits a worker-schedule-dependent subset of the
    /// tree, so its counts are not comparable across thread counts.
    pub truncated: bool,
    /// DPOR pruning counters ([`crate::WorkSpec::DfsDpor`] runs only).
    pub dpor: Option<crate::stats::DporStats>,
    /// Total model steps across all executions.
    pub total_steps: u64,
    /// Instruction counters summed over all executions.
    pub stats: crate::stats::ExecStats,
    /// Steps-per-execution distribution (log2 buckets).
    pub steps_hist: crate::stats::StepHistogram,
    /// Schedule coverage: distinct choice traces and (for DFS) decision
    /// tree nodes visited.
    pub coverage: crate::stats::Coverage,
    /// Per-phase busy-time breakdown, averaged per worker so the entries
    /// sum to at most the exploration's wall time (see [`crate::trace`]).
    /// Wall-clock measurements: like `check_ns` in the checker, this
    /// field is excluded from the byte-identical determinism guarantee
    /// and normalized by determinism tests.
    pub phase_ns: crate::trace::PhaseNs,
    /// Per-worker load-balance counters, indexed by worker. Scheduling-
    /// dependent, so *not* part of [`ExploreReport::to_json`] — use
    /// [`ExploreReport::workers_json`] for metrics.
    pub workers: Vec<crate::stats::WorkerStats>,
}

impl Default for ExploreReport {
    fn default() -> Self {
        ExploreReport::with_max_errors(DEFAULT_MAX_ERRORS)
    }
}

impl ExploreReport {
    /// An empty report keeping at most `max_errors` errors verbatim.
    pub fn with_max_errors(max_errors: usize) -> Self {
        ExploreReport {
            execs: 0,
            ok: 0,
            errors: Vec::new(),
            error_count: 0,
            max_errors,
            exhausted: false,
            truncated: false,
            dpor: None,
            total_steps: 0,
            stats: Default::default(),
            steps_hist: Default::default(),
            coverage: Default::default(),
            phase_ns: Default::default(),
            workers: Vec::new(),
        }
    }

    pub(crate) fn record<R>(&mut self, desc: &StrategyDesc, out: &RunOutcome<R>) {
        self.execs += 1;
        self.total_steps += out.steps;
        self.stats.merge(&out.stats);
        self.steps_hist.record(out.steps);
        self.coverage.record_trace(&out.trace);
        match &out.result {
            Ok(_) => self.ok += 1,
            Err(e) => {
                self.error_count += 1;
                self.keep_error(desc.clone(), e.clone());
            }
        }
    }

    /// Inserts in descriptor order, keeping the `max_errors` smallest.
    fn keep_error(&mut self, desc: StrategyDesc, err: ModelError) {
        let pos = self.errors.partition_point(|(d, _)| *d < desc);
        if pos < self.max_errors {
            self.errors.insert(pos, (desc, err));
            self.errors.truncate(self.max_errors);
        }
    }

    /// Folds another worker's report into this one. Order-insensitive:
    /// merging per-worker reports in any order yields the same totals,
    /// and the same `errors` list, as one serial report.
    pub fn merge(&mut self, other: ExploreReport) {
        self.execs += other.execs;
        self.ok += other.ok;
        self.error_count += other.error_count;
        self.exhausted |= other.exhausted;
        self.truncated |= other.truncated;
        match (&mut self.dpor, other.dpor) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (mine @ None, theirs) => *mine = theirs,
            (Some(_), None) => {}
        }
        self.total_steps += other.total_steps;
        self.stats.merge(&other.stats);
        self.steps_hist.merge(&other.steps_hist);
        self.coverage.merge(&other.coverage);
        self.phase_ns.merge(&other.phase_ns);
        if self.workers.len() < other.workers.len() {
            self.workers.resize(other.workers.len(), Default::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(other.workers.iter()) {
            mine.merge(theirs);
        }
        for (desc, err) in other.errors {
            self.keep_error(desc, err);
        }
    }

    /// Machine-readable form (see `EXPERIMENTS.md`, "Observability &
    /// replay", for the schema).
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj()
            .set("execs", self.execs)
            .set("ok", self.ok)
            .set("error_count", self.error_count)
            .set("exhausted", self.exhausted)
            .set("truncated", self.truncated)
            .set(
                "dpor",
                match &self.dpor {
                    Some(d) => d.to_json(),
                    None => crate::Json::Null,
                },
            )
            .set("total_steps", self.total_steps)
            .set("stats", self.stats.to_json())
            .set("steps_hist", self.steps_hist.to_json())
            .set(
                "coverage",
                crate::Json::obj()
                    .set("distinct_traces", self.coverage.distinct_traces())
                    .set("dfs_nodes", self.coverage.dfs_nodes),
            )
            .set("phase_ns", self.phase_ns.to_json())
    }

    /// The per-worker load-balance counters as JSON (worker-index
    /// sorted). Kept separate from [`ExploreReport::to_json`] because
    /// worker stats depend on the run's scheduling, which would break
    /// the byte-identical guarantee that function carries.
    pub fn workers_json(&self) -> crate::Json {
        crate::stats::workers_to_json(&self.workers)
    }

    /// Panics with a readable message if any execution errored.
    ///
    /// # Panics
    ///
    /// Panics when `error_count > 0`.
    pub fn assert_all_ok(&self) {
        assert!(
            self.error_count == 0,
            "{} of {} executions failed; first errors: {:#?}",
            self.error_count,
            self.execs,
            self.errors
        );
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions ({} distinct traces), {} ok, {} errors{}, {} total steps",
            self.execs,
            self.coverage.distinct_traces(),
            self.ok,
            self.error_count,
            if self.exhausted { " (exhaustive)" } else { "" },
            self.total_steps
        )?;
        if self.workers.len() > 1 {
            write!(f, "; workers (executed/stolen/idle)")?;
            for (i, w) in self.workers.iter().enumerate() {
                write!(
                    f,
                    "{} {}:{}/{}/{}",
                    if i == 0 { "" } else { "," },
                    i,
                    w.executed,
                    w.stolen,
                    w.idle_waits
                )?;
            }
        }
        Ok(())
    }
}

/// Exploration driver.
///
/// The program is supplied as a [`Model`] — typically a closure from a
/// strategy to a [`RunOutcome`] wrapping [`crate::run_model`]:
///
/// ```
/// use orc11::{Config, Explorer, Mode, ThreadCtx, Val};
///
/// let explorer = Explorer::default();
/// let report = explorer.random(200, 0, |strategy| {
///     orc11::run_model(
///         &Config::default(),
///         strategy,
///         |ctx| ctx.alloc("x", Val::Int(0)),
///         vec![Box::new(|ctx: &mut ThreadCtx, &x: &orc11::Loc| {
///             ctx.fetch_add(x, 1, Mode::Relaxed);
///         })],
///         |ctx, &x, _| assert_eq!(ctx.peek(x), Val::Int(1)),
///     )
/// }, |_, _| {});
/// report.assert_all_ok();
/// ```
///
/// `threads == 0` (the default) means *auto*: `COMPASS_THREADS` if set,
/// else the host's available parallelism (capped; see
/// [`crate::default_threads`]). The merged report is byte-identical for
/// every thread count — see [`crate::parallel`] for the guarantee's
/// exact scope.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    /// Worker thread count; `0` = auto ([`crate::default_threads`]).
    pub threads: usize,
    /// Cap on verbatim errors kept per report
    /// ([`ExploreReport::max_errors`]).
    pub max_errors: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            threads: 0,
            max_errors: DEFAULT_MAX_ERRORS,
        }
    }
}

impl Explorer {
    /// An explorer with auto thread count and default error cap.
    pub fn new() -> Self {
        Explorer::default()
    }

    /// A single-threaded explorer (what `COMPASS_THREADS=1` forces).
    pub fn serial() -> Self {
        Explorer {
            threads: 1,
            ..Explorer::default()
        }
    }

    /// An explorer with an explicit worker count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Explorer {
            threads,
            ..Explorer::default()
        }
    }

    /// Runs `iters` executions with random strategies seeded
    /// `seed0..seed0+iters`, feeding every outcome to `on`.
    pub fn random<M: Model>(
        &self,
        iters: u64,
        seed0: u64,
        model: M,
        on: impl Fn(&StrategyDesc, &RunOutcome<M::Out>) + Sync,
    ) -> ExploreReport {
        self.explore(&WorkSpec::Random { iters, seed0 }, &model, on)
    }

    /// Runs `iters` PCT executions (priority scheduling with `depth`
    /// change points, seeds `seed0..seed0+iters`) — typically an order of
    /// magnitude better than [`Explorer::random`] at exposing small-depth
    /// ordering bugs.
    pub fn pct<M: Model>(
        &self,
        iters: u64,
        seed0: u64,
        depth: usize,
        model: M,
        on: impl Fn(&StrategyDesc, &RunOutcome<M::Out>) + Sync,
    ) -> ExploreReport {
        self.explore(
            &WorkSpec::Pct {
                iters,
                seed0,
                depth,
                horizon: DEFAULT_PCT_HORIZON,
            },
            &model,
            on,
        )
    }

    /// Exhaustively enumerates the program's decision tree, up to
    /// `max_execs` executions.
    ///
    /// If the budget suffices, `exhausted` is set in the report and every
    /// execution (under the model's scheduler granularity) has been
    /// visited. Programs must be deterministic apart from the strategy's
    /// decisions.
    ///
    /// The `COMPASS_DPOR` environment variable switches DPOR pruning on
    /// for this entry point (see [`WorkSpec::dfs`]); use
    /// [`Explorer::dfs_dpor`] or [`Explorer::explore`] with an explicit
    /// [`WorkSpec`] to force one behaviour.
    pub fn dfs<M: Model>(
        &self,
        max_execs: u64,
        model: M,
        on: impl Fn(&StrategyDesc, &RunOutcome<M::Out>) + Sync,
    ) -> ExploreReport {
        self.explore(&WorkSpec::dfs(max_execs), &model, on)
    }

    /// [`Explorer::dfs`] with dynamic partial-order reduction: visits a
    /// conflict-complete subset of the decision tree covering the same
    /// distinct behaviours in (often far) fewer executions — see
    /// [`crate::dpor`].
    pub fn dfs_dpor<M: Model>(
        &self,
        max_execs: u64,
        model: M,
        on: impl Fn(&StrategyDesc, &RunOutcome<M::Out>) + Sync,
    ) -> ExploreReport {
        self.explore(&WorkSpec::DfsDpor { budget: max_execs }, &model, on)
    }

    /// The unified driver all modes reduce to: runs `spec` over `model`,
    /// invoking `on` for every outcome (concurrently, from worker
    /// threads — accumulate through a lock or atomics).
    pub fn explore<M: Model + ?Sized>(
        &self,
        spec: &WorkSpec,
        model: &M,
        on: impl Fn(&StrategyDesc, &RunOutcome<M::Out>) + Sync,
    ) -> ExploreReport {
        self.explore_with(spec, model, |_| &on).0
    }

    /// [`Explorer::explore`] with one caller-built [`Sink`] per worker
    /// instead of a shared callback: `make_sink(i)` is called once per
    /// worker, each sink sees only its own worker's outcomes without
    /// locking, and all sinks are returned (in worker-index order) for
    /// the caller to merge. This is what `compass`' checker builds on.
    pub fn explore_with<M, S, F>(
        &self,
        spec: &WorkSpec,
        model: &M,
        make_sink: F,
    ) -> (ExploreReport, Vec<S>)
    where
        M: Model + ?Sized,
        S: Sink<M::Out> + Send,
        F: Fn(usize) -> S + Sync,
    {
        let threads = parallel::resolve_threads(self.threads);
        parallel::explore_with(threads, self.max_errors, spec, model, make_sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_model, BodyFn, Config, ThreadCtx};
    use crate::mode::Mode;
    use crate::sync::Mutex;
    use crate::val::{Loc, Val};
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Store buffering: both threads can read 0 — and DFS must find all
    /// four outcomes.
    fn sb(strategy: Box<dyn crate::Strategy>) -> RunOutcome<(i64, i64)> {
        run_model(
            &Config::default(),
            strategy,
            |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("y", Val::Int(0))),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                    ctx.write(x, Val::Int(1), Mode::Relaxed);
                    ctx.read(y, Mode::Relaxed).expect_int()
                }) as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                    ctx.write(y, Val::Int(1), Mode::Relaxed);
                    ctx.read(x, Mode::Relaxed).expect_int()
                }),
            ],
            |_, _, outs| (outs[0], outs[1]),
        )
    }

    #[test]
    fn dfs_finds_all_sb_outcomes() {
        let outcomes = Mutex::new(BTreeSet::new());
        let report = Explorer::default().dfs(10_000, sb, |_, out| {
            outcomes.lock().insert(*out.result.as_ref().unwrap());
        });
        assert!(report.exhausted, "SB should be fully explorable");
        report.assert_all_ok();
        // All four combinations, including the weak (0,0).
        assert_eq!(
            outcomes.into_inner(),
            BTreeSet::from([(0, 0), (0, 1), (1, 0), (1, 1)])
        );
    }

    #[test]
    fn pct_finds_weak_sb_outcome() {
        let weak = AtomicU64::new(0);
        let report = Explorer::default().pct(300, 0, 2, sb, |_, out| {
            if *out.result.as_ref().unwrap() == (0, 0) {
                weak.fetch_add(1, Ordering::Relaxed);
            }
        });
        report.assert_all_ok();
        assert_eq!(report.execs, 300);
        assert!(
            weak.load(Ordering::Relaxed) > 0,
            "weak SB outcome should appear under PCT too"
        );
    }

    #[test]
    fn random_finds_weak_sb_outcome() {
        let weak = AtomicU64::new(0);
        let report = Explorer::default().random(300, 0, sb, |_, out| {
            if *out.result.as_ref().unwrap() == (0, 0) {
                weak.fetch_add(1, Ordering::Relaxed);
            }
        });
        report.assert_all_ok();
        assert!(
            weak.load(Ordering::Relaxed) > 0,
            "weak SB outcome should appear under random search"
        );
    }

    fn racy(strategy: Box<dyn crate::Strategy>) -> RunOutcome<()> {
        // Races in SOME interleavings: the non-atomic read of x is safe
        // only when the acquire read observed the release of the gate.
        run_model(
            &Config::default(),
            strategy,
            |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("gate", Val::Int(0))),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &(x, gate): &(Loc, Loc)| {
                    ctx.write(x, Val::Int(1), Mode::NonAtomic);
                    ctx.write(gate, Val::Int(1), Mode::Release);
                }) as BodyFn<'_, _, ()>,
                Box::new(|ctx: &mut ThreadCtx, &(x, gate): &(Loc, Loc)| {
                    ctx.read(gate, Mode::Acquire);
                    // Unconditional non-atomic read: a race exactly in
                    // the interleavings where the gate read saw 0 (or
                    // the writer has not finished).
                    ctx.read(x, Mode::NonAtomic);
                }),
            ],
            |_, _, _| (),
        )
    }

    #[test]
    fn dfs_reports_errors_without_stopping() {
        let report = Explorer::default().dfs(10_000, racy, |_, _| {});
        assert!(report.exhausted, "exploration keeps going past errors");
        assert!(report.error_count > 0, "some interleavings race");
        assert!(report.ok > 0, "some interleavings are race-free");
        assert!(report
            .errors
            .iter()
            .all(|(_, e)| matches!(e, crate::ModelError::Race(_))));
    }

    #[test]
    fn max_errors_caps_the_list_but_not_the_count() {
        let capped = Explorer {
            threads: 1,
            max_errors: 2,
        }
        .dfs(10_000, racy, |_, _| {});
        assert_eq!(capped.errors.len(), 2);
        assert!(capped.error_count > 2);
        // The kept errors are the smallest descriptors (= the first a
        // serial run encounters).
        let full = Explorer {
            threads: 1,
            max_errors: usize::MAX,
        }
        .dfs(10_000, racy, |_, _| {});
        assert_eq!(capped.errors[0].0, full.errors[0].0);
        assert_eq!(capped.errors[1].0, full.errors[1].0);
    }

    #[test]
    fn parallel_reports_are_byte_identical_to_serial() {
        for spec in [
            WorkSpec::Random {
                iters: 64,
                seed0: 3,
            },
            WorkSpec::Pct {
                iters: 64,
                seed0: 3,
                depth: 2,
                horizon: DEFAULT_PCT_HORIZON,
            },
            WorkSpec::Dfs { budget: 10_000 },
            WorkSpec::DfsDpor { budget: 10_000 },
        ] {
            // phase_ns is wall-clock (like check_ns) and so exempt from
            // the byte-identical guarantee — normalize it.
            let norm = |r: &ExploreReport| {
                r.to_json()
                    .set("phase_ns", crate::trace::PhaseNs::ZERO.to_json())
                    .render()
            };
            let serial = Explorer::serial().explore(&spec, &sb, |_, _| {});
            let parallel = Explorer::with_threads(4).explore(&spec, &sb, |_, _| {});
            assert_eq!(norm(&serial), norm(&parallel), "spec {spec:?}");
            // The racy program exercises the error path too.
            let serial = Explorer::serial().explore(&spec, &racy, |_, _| {});
            let parallel = Explorer::with_threads(4).explore(&spec, &racy, |_, _| {});
            assert_eq!(norm(&serial), norm(&parallel));
            assert_eq!(serial.errors, parallel.errors, "spec {spec:?}");
        }
    }
}
