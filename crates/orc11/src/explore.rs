//! Drivers for exploring a program's executions.
//!
//! Stateless model checking: a program is re-run many times, each time with
//! a different [`Strategy`]. [`Explorer::random`] samples interleavings
//! with seeded random strategies; [`Explorer::dfs`] enumerates the decision
//! tree exhaustively (bounded by an execution budget) by backtracking over
//! recorded choice traces.

use std::fmt;

use crate::error::ModelError;
use crate::exec::RunOutcome;
use crate::sched::{dfs_strategy, next_dfs_prefix, random_strategy, Strategy};
use crate::stats::{Coverage, ExecStats, StepHistogram};

/// Aggregated result of an exploration.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Executions performed.
    pub execs: u64,
    /// Executions that completed without a model error.
    pub ok: u64,
    /// Model errors encountered, with the execution index (random: the
    /// seed; dfs: the sequence number). At most 16 are kept.
    pub errors: Vec<(u64, ModelError)>,
    /// Total number of errors (may exceed `errors.len()`).
    pub error_count: u64,
    /// For DFS: whether the decision tree was fully explored within the
    /// execution budget.
    pub exhausted: bool,
    /// Total model steps across all executions.
    pub total_steps: u64,
    /// Instruction counters summed over all executions.
    pub stats: ExecStats,
    /// Steps-per-execution distribution (log2 buckets).
    pub steps_hist: StepHistogram,
    /// Schedule coverage: distinct choice traces and (for DFS) decision
    /// tree nodes visited.
    pub coverage: Coverage,
}

impl ExploreReport {
    fn record<R>(&mut self, id: u64, out: &RunOutcome<R>) {
        self.execs += 1;
        self.total_steps += out.steps;
        self.stats.merge(&out.stats);
        self.steps_hist.record(out.steps);
        self.coverage.record_trace(&out.trace);
        match &out.result {
            Ok(_) => self.ok += 1,
            Err(e) => {
                self.error_count += 1;
                if self.errors.len() < 16 {
                    self.errors.push((id, e.clone()));
                }
            }
        }
    }

    /// Machine-readable form (see `EXPERIMENTS.md`, "Observability &
    /// replay", for the schema).
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj()
            .set("execs", self.execs)
            .set("ok", self.ok)
            .set("error_count", self.error_count)
            .set("exhausted", self.exhausted)
            .set("total_steps", self.total_steps)
            .set("stats", self.stats.to_json())
            .set("steps_hist", self.steps_hist.to_json())
            .set(
                "coverage",
                crate::Json::obj()
                    .set("distinct_traces", self.coverage.distinct_traces())
                    .set("dfs_nodes", self.coverage.dfs_nodes),
            )
    }

    /// Panics with a readable message if any execution errored.
    ///
    /// # Panics
    ///
    /// Panics when `error_count > 0`.
    pub fn assert_all_ok(&self) {
        assert!(
            self.error_count == 0,
            "{} of {} executions failed; first errors: {:#?}",
            self.error_count,
            self.execs,
            self.errors
        );
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions ({} distinct traces), {} ok, {} errors{}, {} total steps",
            self.execs,
            self.coverage.distinct_traces(),
            self.ok,
            self.error_count,
            if self.exhausted { " (exhaustive)" } else { "" },
            self.total_steps
        )
    }
}

/// Exploration driver.
///
/// The program is supplied as a closure from a strategy to a
/// [`RunOutcome`], typically wrapping [`crate::run_model`]:
///
/// ```
/// use orc11::{Config, Explorer, Mode, ThreadCtx, Val};
///
/// let explorer = Explorer::default();
/// let report = explorer.random(200, 0, |strategy| {
///     orc11::run_model(
///         &Config::default(),
///         strategy,
///         |ctx| ctx.alloc("x", Val::Int(0)),
///         vec![Box::new(|ctx: &mut ThreadCtx, &x: &orc11::Loc| {
///             ctx.fetch_add(x, 1, Mode::Relaxed);
///         })],
///         |ctx, &x, _| assert_eq!(ctx.peek(x), Val::Int(1)),
///     )
/// }, |_, _| {});
/// report.assert_all_ok();
/// ```
#[derive(Debug, Default)]
pub struct Explorer;

impl Explorer {
    /// Runs `iters` executions with random strategies seeded
    /// `seed0..seed0+iters`, feeding every outcome to `on`.
    pub fn random<R>(
        &self,
        iters: u64,
        seed0: u64,
        mut run: impl FnMut(Box<dyn Strategy>) -> RunOutcome<R>,
        mut on: impl FnMut(u64, &RunOutcome<R>),
    ) -> ExploreReport {
        let mut report = ExploreReport::default();
        for i in 0..iters {
            let seed = seed0 + i;
            let out = run(random_strategy(seed));
            report.record(seed, &out);
            on(seed, &out);
        }
        report
    }

    /// Runs `iters` PCT executions (priority scheduling with `depth`
    /// change points, seeds `seed0..seed0+iters`) — typically an order of
    /// magnitude better than [`Explorer::random`] at exposing small-depth
    /// ordering bugs.
    pub fn pct<R>(
        &self,
        iters: u64,
        seed0: u64,
        depth: usize,
        mut run: impl FnMut(Box<dyn Strategy>) -> RunOutcome<R>,
        mut on: impl FnMut(u64, &RunOutcome<R>),
    ) -> ExploreReport {
        let mut report = ExploreReport::default();
        for i in 0..iters {
            let seed = seed0 + i;
            let out = run(crate::sched::pct_strategy(seed, depth, 64));
            report.record(seed, &out);
            on(seed, &out);
        }
        report
    }

    /// Exhaustively enumerates the program's decision tree, up to
    /// `max_execs` executions.
    ///
    /// If the budget suffices, `exhausted` is set in the report and every
    /// execution (under the model's scheduler granularity) has been
    /// visited. Programs must be deterministic apart from the strategy's
    /// decisions.
    pub fn dfs<R>(
        &self,
        max_execs: u64,
        mut run: impl FnMut(Box<dyn Strategy>) -> RunOutcome<R>,
        mut on: impl FnMut(u64, &RunOutcome<R>),
    ) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut prefix: Vec<u32> = Vec::new();
        let mut n = 0u64;
        loop {
            if n >= max_execs {
                return report;
            }
            let out = run(dfs_strategy(prefix.clone()));
            report.record(n, &out);
            // Decision-tree accounting: this execution shares the first
            // `prefix.len() - 1` decisions with an earlier one (the last
            // forced choice was freshly bumped), so everything from there
            // on is new.
            let shared = prefix.len().saturating_sub(1);
            report.coverage.dfs_nodes += (out.trace.len() - shared.min(out.trace.len())) as u64;
            on(n, &out);
            n += 1;
            match next_dfs_prefix(&out.trace) {
                Some(p) => prefix = p,
                None => {
                    report.exhausted = true;
                    return report;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_model, BodyFn, Config, ThreadCtx};
    use crate::mode::Mode;
    use crate::val::{Loc, Val};
    use std::collections::BTreeSet;

    /// Store buffering: both threads can read 0 — and DFS must find all
    /// four outcomes.
    fn sb(strategy: Box<dyn Strategy>) -> RunOutcome<(i64, i64)> {
        run_model(
            &Config::default(),
            strategy,
            |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("y", Val::Int(0))),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                    ctx.write(x, Val::Int(1), Mode::Relaxed);
                    ctx.read(y, Mode::Relaxed).expect_int()
                }) as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, &(x, y): &(Loc, Loc)| {
                    ctx.write(y, Val::Int(1), Mode::Relaxed);
                    ctx.read(x, Mode::Relaxed).expect_int()
                }),
            ],
            |_, _, outs| (outs[0], outs[1]),
        )
    }

    #[test]
    fn dfs_finds_all_sb_outcomes() {
        let mut outcomes = BTreeSet::new();
        let report = Explorer.dfs(10_000, sb, |_, out| {
            outcomes.insert(*out.result.as_ref().unwrap());
        });
        assert!(report.exhausted, "SB should be fully explorable");
        report.assert_all_ok();
        // All four combinations, including the weak (0,0).
        assert_eq!(outcomes, BTreeSet::from([(0, 0), (0, 1), (1, 0), (1, 1)]));
    }

    #[test]
    fn pct_finds_weak_sb_outcome() {
        let mut weak = 0u64;
        let report = Explorer.pct(300, 0, 2, sb, |_, out| {
            if *out.result.as_ref().unwrap() == (0, 0) {
                weak += 1;
            }
        });
        report.assert_all_ok();
        assert_eq!(report.execs, 300);
        assert!(weak > 0, "weak SB outcome should appear under PCT too");
    }

    #[test]
    fn random_finds_weak_sb_outcome() {
        let mut weak = 0u64;
        let report = Explorer.random(300, 0, sb, |_, out| {
            if *out.result.as_ref().unwrap() == (0, 0) {
                weak += 1;
            }
        });
        report.assert_all_ok();
        assert!(
            weak > 0,
            "weak SB outcome should appear under random search"
        );
    }

    #[test]
    fn dfs_reports_errors_without_stopping() {
        // Races in SOME interleavings: the non-atomic read of x is safe
        // only when the acquire read observed the release of the gate.
        let run = |strategy: Box<dyn Strategy>| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| (ctx.alloc("x", Val::Int(0)), ctx.alloc("gate", Val::Int(0))),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, &(x, gate): &(Loc, Loc)| {
                        ctx.write(x, Val::Int(1), Mode::NonAtomic);
                        ctx.write(gate, Val::Int(1), Mode::Release);
                    }) as BodyFn<'_, _, ()>,
                    Box::new(|ctx: &mut ThreadCtx, &(x, gate): &(Loc, Loc)| {
                        ctx.read(gate, Mode::Acquire);
                        // Unconditional non-atomic read: a race exactly in
                        // the interleavings where the gate read saw 0 (or
                        // the writer has not finished).
                        ctx.read(x, Mode::NonAtomic);
                    }),
                ],
                |_, _, _| (),
            )
        };
        let report = Explorer.dfs(10_000, run, |_, _| {});
        assert!(report.exhausted, "exploration keeps going past errors");
        assert!(report.error_count > 0, "some interleavings race");
        assert!(report.ok > 0, "some interleavings are race-free");
        assert!(report
            .errors
            .iter()
            .all(|(_, e)| matches!(e, crate::ModelError::Race(_))));
    }
}
