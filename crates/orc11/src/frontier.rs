//! Frontiers: the bundled lattice transferred by synchronization.

use crate::clock::VecClock;
use crate::ghost::GhostView;
use crate::view::View;

/// A *frontier* bundles everything that flows along synchronization edges:
///
/// * the physical [`View`] (per-location timestamps),
/// * the [`VecClock`] used for data-race detection, and
/// * the [`GhostView`] of logical views.
///
/// All three are join-semilattices, and all three are transferred with the
/// same rules (release publishes, acquire joins), so bundling them keeps the
/// transfer code in one place and guarantees the ghost lattice is a faithful
/// mirror of happens-before.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Frontier {
    /// Physical view.
    pub view: View,
    /// Race-detection vector clock.
    pub vc: VecClock,
    /// Ghost logical views.
    pub ghost: GhostView,
}

impl Frontier {
    /// The empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins `other` into `self` (component-wise least upper bound).
    pub fn join(&mut self, other: &Frontier) {
        self.view.join(&other.view);
        self.vc.join(&other.vc);
        self.ghost.join(&other.ghost);
    }

    /// Component-wise inclusion.
    pub fn leq(&self, other: &Frontier) -> bool {
        self.view.leq(&other.view) && self.vc.leq(&other.vc) && self.ghost.leq(&other.ghost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val::Loc;

    #[test]
    fn join_joins_all_components() {
        let mut a = Frontier::new();
        a.view.bump(Loc::from_raw(0), 1);
        a.vc.tick(0);
        a.ghost.insert(7, 1);
        let mut b = Frontier::new();
        b.view.bump(Loc::from_raw(1), 2);
        b.vc.tick(1);
        b.ghost.insert(7, 2);

        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert!(j.ghost.contains(7, 1) && j.ghost.contains(7, 2));
    }

    #[test]
    fn empty_is_bottom() {
        let mut a = Frontier::new();
        a.view.bump(Loc::from_raw(0), 1);
        assert!(Frontier::new().leq(&a));
        assert!(!a.leq(&Frontier::new()));
    }
}
