//! Structured tracing: spans, counter tracks, per-phase time
//! accounting, and Chrome trace-event export.
//!
//! The exploration stack is instrumented with lightweight *spans*
//! ([`span`]) classified by [`Phase`] (model execution, DPOR analysis,
//! clause checking, linearization search, conformance rounds, bundle
//! I/O) and *counters* ([`counter`]) for gauges like the DFS frontier
//! depth. Two consumers share the instrumentation:
//!
//! 1. **Per-phase time profiling** — always on. Every span adds its
//!    *exclusive* wall time (elapsed minus the time spent in nested
//!    spans) to a thread-local [`PhaseNs`] accumulator, so the six
//!    phases are disjoint and their sum never exceeds the thread's busy
//!    time. Drivers snapshot the accumulator ([`thread_phases`]) around
//!    their work and surface the delta on `ExploreReport`/`CheckReport`
//!    and in the metrics documents (since schema v5). Cost: two
//!    `Instant::now` calls per span,
//!    at coarse (per-execution / per-check) granularity — far below the
//!    cost of the work the spans delimit.
//!
//! 2. **Timeline tracing** — off by default. When a session is active
//!    ([`start`], or `COMPASS_TRACE=<path>` via [`init_from_env`]),
//!    spans and counters additionally append timestamped events to a
//!    bounded per-thread buffer (one `Vec` per worker, no locks on the
//!    hot path); [`finish`] merges the buffers and writes Chrome
//!    trace-event JSON viewable in [Perfetto](https://ui.perfetto.dev)
//!    or `chrome://tracing`. When no session is active the event path is
//!    a single relaxed atomic load ([`enabled`]), so disabled overhead
//!    is unmeasurable.
//!
//! ## Determinism quarantine
//!
//! Timestamps exist *only* inside the trace file. The deterministic
//! outputs (reports, bundles, violation samples) never embed trace
//! data; the per-phase totals are wall-clock measurements and are
//! therefore — like `check_ns` — excluded from the byte-identical
//! cross-thread-count guarantee and normalized by the determinism
//! tests. Tracing on or off changes no exploration decision, so reports
//! and bundles are byte-identical either way (pinned in
//! `tests/parallel_determinism.rs`).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::json::Json;

/// Default cap on buffered events per thread (a bounded ring guard, not
/// a hard functional limit — see [`TraceSummary::dropped`]).
const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// Anonymous (unregistered) threads get tids from this base so they
/// never collide with worker tids.
const ANON_TID_BASE: u32 = 1000;

/// The phase a span's time is attributed to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Running the model under a strategy (execution batches).
    Explore,
    /// DPOR race analysis and backtrack computation.
    Dpor,
    /// Consistency-clause evaluation.
    Check,
    /// Linearization search inside the checks.
    Linearize,
    /// Runtime-conformance rounds (real threads).
    Conform,
    /// Bundle and metrics file writes.
    Io,
}

/// Number of distinct [`Phase`]s.
pub const PHASE_COUNT: usize = 6;

impl Phase {
    /// The phase's stable lowercase name (JSON key, trace category).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Explore => "explore",
            Phase::Dpor => "dpor",
            Phase::Check => "check",
            Phase::Linearize => "linearize",
            Phase::Conform => "conform",
            Phase::Io => "io",
        }
    }
}

/// Exclusive (self) wall time per [`Phase`], in nanoseconds.
///
/// Exclusivity means nested spans do not double-count: a `check` span
/// containing a `linearize` span contributes only its own time to
/// `check`. On one thread the six entries are disjoint slices of busy
/// time; exploration drivers average the per-worker breakdowns
/// (`ExploreReport::phase_ns`), so the total stays bounded by wall time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseNs {
    /// Model execution ([`Phase::Explore`]).
    pub explore: u64,
    /// DPOR analysis ([`Phase::Dpor`]).
    pub dpor: u64,
    /// Clause checking ([`Phase::Check`]).
    pub check: u64,
    /// Linearization search ([`Phase::Linearize`]).
    pub linearize: u64,
    /// Conformance rounds ([`Phase::Conform`]).
    pub conform: u64,
    /// Bundle/metrics writes ([`Phase::Io`]).
    pub io: u64,
}

impl PhaseNs {
    /// The all-zero breakdown (`const`, for thread-local init).
    pub const ZERO: PhaseNs = PhaseNs {
        explore: 0,
        dpor: 0,
        check: 0,
        linearize: 0,
        conform: 0,
        io: 0,
    };

    /// The entry for `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Explore => self.explore,
            Phase::Dpor => self.dpor,
            Phase::Check => self.check,
            Phase::Linearize => self.linearize,
            Phase::Conform => self.conform,
            Phase::Io => self.io,
        }
    }

    fn entry_mut(&mut self, phase: Phase) -> &mut u64 {
        match phase {
            Phase::Explore => &mut self.explore,
            Phase::Dpor => &mut self.dpor,
            Phase::Check => &mut self.check,
            Phase::Linearize => &mut self.linearize,
            Phase::Conform => &mut self.conform,
            Phase::Io => &mut self.io,
        }
    }

    /// `(name, nanoseconds)` pairs in the fixed schema order.
    pub fn entries(&self) -> [(&'static str, u64); PHASE_COUNT] {
        [
            ("explore", self.explore),
            ("dpor", self.dpor),
            ("check", self.check),
            ("linearize", self.linearize),
            ("conform", self.conform),
            ("io", self.io),
        ]
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|&(_, ns)| ns).sum()
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &PhaseNs) {
        self.explore += other.explore;
        self.dpor += other.dpor;
        self.check += other.check;
        self.linearize += other.linearize;
        self.conform += other.conform;
        self.io += other.io;
    }

    /// The per-phase increase since `earlier` (a snapshot of the same
    /// monotone accumulator; saturating, so an unrelated snapshot cannot
    /// underflow).
    #[must_use]
    pub fn delta_since(&self, earlier: &PhaseNs) -> PhaseNs {
        PhaseNs {
            explore: self.explore.saturating_sub(earlier.explore),
            dpor: self.dpor.saturating_sub(earlier.dpor),
            check: self.check.saturating_sub(earlier.check),
            linearize: self.linearize.saturating_sub(earlier.linearize),
            conform: self.conform.saturating_sub(earlier.conform),
            io: self.io.saturating_sub(earlier.io),
        }
    }

    /// Divides every entry by `n` (per-worker averaging; `n == 0` is
    /// treated as 1).
    #[must_use]
    pub fn div_by(self, n: u64) -> PhaseNs {
        let n = n.max(1);
        PhaseNs {
            explore: self.explore / n,
            dpor: self.dpor / n,
            check: self.check / n,
            linearize: self.linearize / n,
            conform: self.conform / n,
            io: self.io / n,
        }
    }

    /// Machine-readable form: one key per phase, fixed order.
    pub fn to_json(&self) -> Json {
        self.entries()
            .iter()
            .fold(Json::obj(), |j, &(k, ns)| j.set(k, ns))
    }
}

impl fmt::Display for PhaseNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, ns) in self.entries() {
            if ns == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name} {:.1}ms", ns as f64 / 1e6)?;
        }
        if first {
            write!(f, "(no phase data)")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Per-thread phase accounting (always on).

thread_local! {
    /// Exclusive time per phase accumulated on this thread.
    static PHASE_ACC: RefCell<PhaseNs> = const { RefCell::new(PhaseNs::ZERO) };
    /// Total (inclusive) span time this thread has closed so far — each
    /// span snapshots it at open to learn how much child time elapsed
    /// under it.
    static CHILD_NS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's monotone per-phase accumulator. Pair two
/// snapshots with [`PhaseNs::delta_since`] to attribute a region of
/// work.
pub fn thread_phases() -> PhaseNs {
    PHASE_ACC.with(|acc| *acc.borrow())
}

/// An open span: attributes its exclusive time to `phase` on drop, and
/// (when a trace session is active) records begin/end timeline events.
#[derive(Debug)]
pub struct Span {
    phase: Phase,
    name: &'static str,
    start: Instant,
    child_mark: u64,
    traced: bool,
}

/// Opens a span; close it by dropping the returned guard.
pub fn span(phase: Phase, name: &'static str) -> Span {
    let traced = enabled();
    if traced {
        record_event(EventKind::Begin, phase.name(), name, 0);
    }
    Span {
        phase,
        name,
        start: Instant::now(),
        child_mark: CHILD_NS.with(Cell::get),
        traced,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let total = self.start.elapsed().as_nanos() as u64;
        let children = CHILD_NS.with(Cell::get).saturating_sub(self.child_mark);
        PHASE_ACC.with(|acc| {
            *acc.borrow_mut().entry_mut(self.phase) += total.saturating_sub(children);
        });
        // This span's whole duration is child time for its parent.
        CHILD_NS.with(|c| c.set(self.child_mark.saturating_add(total)));
        if self.traced {
            record_event(EventKind::End, self.phase.name(), self.name, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Counters and gauges.

static FRONTIER_DEPTH: AtomicU64 = AtomicU64::new(0);
static SLEEP_HITS: AtomicU64 = AtomicU64::new(0);

/// Records a counter sample on this thread's track (no-op when no
/// session is active).
pub fn counter(name: &'static str, value: u64) {
    if enabled() {
        record_event(EventKind::Counter, "counter", name, value);
    }
}

/// Publishes the current DFS frontier depth: readable via
/// [`frontier_depth`] (progress lines) and sampled as a counter track
/// when tracing is on.
pub fn gauge_frontier_depth(depth: u64) {
    FRONTIER_DEPTH.store(depth, Ordering::Relaxed);
    counter("frontier_depth", depth);
}

/// The last published DFS frontier depth (process-wide; best-effort
/// under concurrent explorations).
pub fn frontier_depth() -> u64 {
    FRONTIER_DEPTH.load(Ordering::Relaxed)
}

/// Publishes the running DPOR sleep-set hit total (counter track
/// `sleep_set_hits`).
pub fn gauge_sleep_hits(total: u64) {
    SLEEP_HITS.store(total, Ordering::Relaxed);
    counter("sleep_set_hits", total);
}

// ---------------------------------------------------------------------
// Session and per-thread event buffers.

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static SESSION: Mutex<Option<Session>> = Mutex::new(None);

/// Whether a trace session is active (one relaxed load — the only cost
/// tracing adds to span opens when off).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EventKind {
    Begin,
    End,
    Counter,
}

#[derive(Clone, Debug)]
struct Event {
    kind: EventKind,
    /// Nanoseconds since the session epoch.
    ts_ns: u64,
    /// Trace category (the phase name, or `"counter"`).
    cat: &'static str,
    name: &'static str,
    value: u64,
}

#[derive(Debug)]
struct Track {
    tid: u32,
    name: String,
    events: Vec<Event>,
    dropped: u64,
}

#[derive(Debug)]
struct Session {
    path: PathBuf,
    epoch: Instant,
    generation: u64,
    cap: usize,
    flushed: Vec<Track>,
    next_anon: u32,
}

struct LocalTrack {
    generation: u64,
    epoch: Instant,
    cap: usize,
    /// Open Begin events whose buffer slot was dropped (cap hit): their
    /// matching Ends must be dropped too, or nesting breaks.
    drop_depth: u32,
    track: Track,
}

/// Thread-local buffer slot whose drop flushes into the session, so
/// worker-thread events survive thread exit.
struct TrackSlot(RefCell<Option<LocalTrack>>);

impl Drop for TrackSlot {
    fn drop(&mut self) {
        if let Some(local) = self.0.borrow_mut().take() {
            flush_local(local);
        }
    }
}

thread_local! {
    static TRACK: TrackSlot = const { TrackSlot(RefCell::new(None)) };
}

fn lock_session() -> std::sync::MutexGuard<'static, Option<Session>> {
    SESSION.lock().unwrap_or_else(PoisonError::into_inner)
}

fn flush_local(local: LocalTrack) {
    let mut session = lock_session();
    if let Some(s) = session.as_mut() {
        if s.generation == local.generation {
            s.flushed.push(local.track);
        }
    }
}

/// Registers the current thread as exploration worker `index` (tid
/// `index + 1`, track name `worker-<index>`). No-op when no session is
/// active. The main thread is registered as tid 0 by [`start`].
pub fn register_worker(index: usize) {
    register_current(index as u32 + 1, format!("worker-{index}"));
}

fn register_current(tid: u32, name: String) {
    if !enabled() {
        return;
    }
    let (generation, epoch, cap) = {
        let session = lock_session();
        match session.as_ref() {
            Some(s) => (s.generation, s.epoch, s.cap),
            None => return,
        }
    };
    TRACK.with(|slot| {
        let mut b = slot.0.borrow_mut();
        if let Some(old) = b.take() {
            flush_local(old);
        }
        *b = Some(LocalTrack {
            generation,
            epoch,
            cap,
            drop_depth: 0,
            track: Track {
                tid,
                name,
                events: Vec::new(),
                dropped: 0,
            },
        });
    });
}

fn record_event(kind: EventKind, cat: &'static str, name: &'static str, value: u64) {
    TRACK.with(|slot| {
        let mut b = slot.0.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        let stale = !matches!(&*b, Some(l) if l.generation == generation);
        if stale {
            // Unregistered (or left over from an ended session): adopt an
            // anonymous tid so the events still land somewhere sensible.
            let mut session = lock_session();
            let Some(s) = session.as_mut() else { return };
            if let Some(old) = b.take() {
                if s.generation == old.generation {
                    s.flushed.push(old.track);
                }
            }
            let tid = ANON_TID_BASE + s.next_anon;
            s.next_anon += 1;
            *b = Some(LocalTrack {
                generation: s.generation,
                epoch: s.epoch,
                cap: s.cap,
                drop_depth: 0,
                track: Track {
                    tid,
                    name: format!("thread-{tid}"),
                    events: Vec::new(),
                    dropped: 0,
                },
            });
        }
        let Some(local) = b.as_mut() else { return };
        let ts_ns = local.epoch.elapsed().as_nanos() as u64;
        let event = Event {
            kind,
            ts_ns,
            cat,
            name,
            value,
        };
        match kind {
            EventKind::Begin => {
                if local.track.events.len() >= local.cap {
                    local.track.dropped += 1;
                    local.drop_depth += 1;
                } else {
                    local.track.events.push(event);
                }
            }
            // Ends always push once their Begin did, even past the cap
            // (bounded by the open-span depth), so tracks stay
            // well-nested.
            EventKind::End => {
                if local.drop_depth > 0 {
                    local.drop_depth -= 1;
                    local.track.dropped += 1;
                } else {
                    local.track.events.push(event);
                }
            }
            EventKind::Counter => {
                if local.track.events.len() >= local.cap {
                    local.track.dropped += 1;
                } else {
                    local.track.events.push(event);
                }
            }
        }
    });
}

/// What [`finish`] wrote.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// The trace file.
    pub path: PathBuf,
    /// Events written.
    pub events: usize,
    /// Thread tracks written.
    pub tracks: usize,
    /// Events dropped by the per-thread buffer cap.
    pub dropped: u64,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events on {} tracks -> {}",
            self.events,
            self.tracks,
            self.path.display()
        )?;
        if self.dropped > 0 {
            write!(f, " ({} dropped at buffer cap)", self.dropped)?;
        }
        Ok(())
    }
}

/// Starts a trace session writing to `path` on [`finish`]. The calling
/// thread is registered as tid 0 (`main`). The per-thread buffer cap
/// can be overridden with `COMPASS_TRACE_CAP`.
///
/// # Errors
///
/// `AlreadyExists` if a session is already active.
pub fn start(path: impl Into<PathBuf>) -> io::Result<()> {
    let cap = std::env::var("COMPASS_TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_EVENT_CAP);
    {
        let mut session = lock_session();
        if session.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "a trace session is already active",
            ));
        }
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
        *session = Some(Session {
            path: path.into(),
            epoch: Instant::now(),
            generation,
            cap,
            flushed: Vec::new(),
            next_anon: 0,
        });
        ENABLED.store(true, Ordering::Relaxed);
    }
    register_current(0, "main".to_string());
    Ok(())
}

/// Starts a session from `COMPASS_TRACE=<path>` if set (the hook every
/// `e*` binary calls first thing). Returns whether a session started.
pub fn init_from_env() -> bool {
    let Some(path) = std::env::var_os("COMPASS_TRACE") else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    match start(PathBuf::from(path)) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("orc11: cannot start trace session: {e}");
            false
        }
    }
}

/// Ends the active session and writes the Chrome trace-event file.
/// Returns `Ok(None)` when no session was active.
///
/// Buffers of still-live threads other than the caller are not
/// collected (their events are discarded when those threads exit);
/// exploration workers always exit before their driver returns, so in
/// practice only the calling thread's buffer needs the explicit flush
/// done here.
///
/// # Errors
///
/// Propagates filesystem errors from writing the trace file.
pub fn finish() -> io::Result<Option<TraceSummary>> {
    ENABLED.store(false, Ordering::Relaxed);
    // Flush the calling thread's buffer into the session first.
    TRACK.with(|slot| {
        if let Some(local) = slot.0.borrow_mut().take() {
            flush_local(local);
        }
    });
    let session = lock_session().take();
    match session {
        None => Ok(None),
        Some(s) => export(s).map(Some),
    }
}

/// [`finish`], reporting the outcome on stderr instead of failing.
pub fn finish_or_warn() {
    match finish() {
        Ok(Some(summary)) => eprintln!("trace: wrote {summary}"),
        Ok(None) => {}
        Err(e) => eprintln!("trace: cannot write trace file: {e}"),
    }
}

/// One timestamp as fractional microseconds (Chrome's `ts` unit) with
/// nanosecond precision.
fn ts_us(ts_ns: u64) -> Json {
    Json::Float(ts_ns as f64 / 1000.0)
}

fn export(session: Session) -> io::Result<TraceSummary> {
    // Group per tid; concatenation order (thread exit order) breaks ts
    // ties, and a stable sort by timestamp preserves push order within
    // a buffer — so every track stays monotone and well-nested.
    let mut tracks: BTreeMap<u32, (String, Vec<Event>)> = BTreeMap::new();
    let mut dropped = 0;
    for track in session.flushed {
        dropped += track.dropped;
        let entry = tracks
            .entry(track.tid)
            .or_insert_with(|| (track.name.clone(), Vec::new()));
        entry.1.extend(track.events);
    }
    let mut events = Json::arr();
    events = events.push(
        Json::obj()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", 0u64)
            .set("args", Json::obj().set("name", "compass")),
    );
    let mut n_events = 0usize;
    let mut n_tracks = 0usize;
    for (tid, (name, mut track_events)) in tracks {
        // A registered thread that recorded nothing (e.g. the caller of
        // a fully parallel exploration) would be an empty Perfetto row;
        // skip it so the summary agrees with validate_trace_text.
        if track_events.is_empty() {
            continue;
        }
        n_tracks += 1;
        events = events.push(
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0u64)
                .set("tid", tid)
                .set("args", Json::obj().set("name", name)),
        );
        events = events.push(
            Json::obj()
                .set("name", "thread_sort_index")
                .set("ph", "M")
                .set("pid", 0u64)
                .set("tid", tid)
                .set("args", Json::obj().set("sort_index", tid)),
        );
        track_events.sort_by_key(|e| e.ts_ns);
        for e in track_events {
            n_events += 1;
            let mut j = Json::obj()
                .set("name", e.name)
                .set("cat", e.cat)
                .set(
                    "ph",
                    match e.kind {
                        EventKind::Begin => "B",
                        EventKind::End => "E",
                        EventKind::Counter => "C",
                    },
                )
                .set("pid", 0u64)
                .set("tid", tid)
                .set("ts", ts_us(e.ts_ns));
            if e.kind == EventKind::Counter {
                j = j.set("args", Json::obj().set("value", e.value));
            }
            events = events.push(j);
        }
    }
    let doc = Json::obj()
        .set("traceEvents", events)
        .set("displayTimeUnit", "ms")
        .set(
            "otherData",
            Json::obj()
                .set("tool", "compass")
                .set("dropped_events", dropped),
        );
    if let Some(parent) = session.path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&session.path, doc.render_pretty())?;
    Ok(TraceSummary {
        path: session.path,
        events: n_events,
        tracks: n_tracks,
        dropped,
    })
}

// ---------------------------------------------------------------------
// Structural validation (shared by tests and the CI trace-smoke step —
// deliberately not behind #[cfg(test)]).

/// What [`validate_trace_text`] found in a structurally valid trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total non-metadata events.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Counter samples.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks with non-metadata events.
    pub tracks: usize,
    /// Largest tid seen (0 when no events).
    pub max_tid: u32,
}

/// Structurally validates Chrome trace-event JSON produced by this
/// module: parseable, required fields present, `pid` 0 throughout,
/// timestamps monotone per track, and `B`/`E` events well-nested per
/// tid with matching names.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_trace_text(text: &str) -> Result<TraceCheck, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut check = TraceCheck::default();
    // Per (pid, tid): last timestamp and the open-span name stack.
    let mut per_track: BTreeMap<(i64, i64), (f64, Vec<String>)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| e.get(k).ok_or_else(|| format!("event {i}: missing {k}"));
        let str_field = |k: &str| match field(k)? {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("event {i}: {k} is not a string ({other:?})")),
        };
        let int_field = |k: &str| match field(k)? {
            Json::Int(n) => Ok(*n),
            other => Err(format!("event {i}: {k} is not an integer ({other:?})")),
        };
        let ph = str_field("ph")?;
        let name = str_field("name")?;
        let pid = int_field("pid")?;
        let tid = int_field("tid")?;
        if pid != 0 {
            return Err(format!("event {i}: pid {pid} != 0"));
        }
        if !(0..=u32::MAX as i64).contains(&tid) {
            return Err(format!("event {i}: tid {tid} out of range"));
        }
        if ph == "M" {
            continue;
        }
        let ts = match field("ts")? {
            Json::Float(x) => *x,
            Json::Int(n) => *n as f64,
            other => return Err(format!("event {i}: ts is not a number ({other:?})")),
        };
        check.events += 1;
        check.max_tid = check.max_tid.max(tid as u32);
        let track = per_track
            .entry((pid, tid))
            .or_insert((f64::MIN, Vec::new()));
        if ts < track.0 {
            return Err(format!(
                "event {i}: tid {tid} timestamp went backwards ({ts} < {})",
                track.0
            ));
        }
        track.0 = ts;
        match ph.as_str() {
            "B" => track.1.push(name),
            "E" => match track.1.pop() {
                Some(open) if open == name => check.spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: tid {tid} E \"{name}\" does not match open B \"{open}\""
                    ));
                }
                None => {
                    return Err(format!("event {i}: tid {tid} E \"{name}\" with no open B"));
                }
            },
            "C" => {
                let ok = matches!(
                    e.get("args").and_then(|a| a.get("value")),
                    Some(Json::Int(_) | Json::Float(_))
                );
                if !ok {
                    return Err(format!("event {i}: counter without numeric args.value"));
                }
                check.counters += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for ((_, tid), (_, stack)) in &per_track {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} unclosed B events: {stack:?}",
                stack.len()
            ));
        }
    }
    check.tracks = per_track.len();
    Ok(check)
}

/// [`validate_trace_text`] over a file on disk.
///
/// # Errors
///
/// Read failures and structural violations, as a readable string.
pub fn validate_trace_file(path: &Path) -> Result<TraceCheck, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate_trace_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Session-lifecycle tests live in `tests/trace_format.rs` (their own
    // process), because a live session would also capture spans from
    // unrelated unit tests running concurrently in this binary. The
    // phase accounting below needs no session.

    #[test]
    fn exclusive_time_subtracts_children() {
        let before = thread_phases();
        {
            let _outer = span(Phase::Check, "outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span(Phase::Linearize, "inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let d = thread_phases().delta_since(&before);
        assert!(d.check >= 3_000_000, "outer self time recorded: {d:?}");
        assert!(d.linearize >= 3_000_000, "inner time recorded: {d:?}");
        // The inner 4ms is attributed to linearize only, never to check:
        // check's exclusive time is roughly half the 8ms total.
        assert!(
            d.check < d.check + d.linearize && d.total() >= 6_000_000,
            "phases are disjoint slices: {d:?}"
        );
    }

    #[test]
    fn sibling_spans_accumulate_independently() {
        let before = thread_phases();
        for _ in 0..3 {
            let _s = span(Phase::Io, "w");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let d = thread_phases().delta_since(&before);
        assert!(d.io >= 2_000_000);
        assert_eq!(d.explore, 0);
    }

    #[test]
    fn phase_ns_arithmetic_and_json() {
        let mut a = PhaseNs {
            explore: 10,
            dpor: 1,
            check: 5,
            linearize: 2,
            conform: 0,
            io: 3,
        };
        let b = PhaseNs {
            explore: 5,
            ..PhaseNs::ZERO
        };
        a.merge(&b);
        assert_eq!(a.explore, 15);
        assert_eq!(a.total(), 26);
        assert_eq!(a.delta_since(&b).explore, 10);
        assert_eq!(a.div_by(2).explore, 7);
        let j = a.to_json();
        assert_eq!(
            j.render(),
            r#"{"explore":15,"dpor":1,"check":5,"linearize":2,"conform":0,"io":3}"#
        );
        assert_eq!(a.get(Phase::Check), 5);
        assert!(format!("{a}").contains("explore"));
        assert!(format!("{}", PhaseNs::ZERO).contains("no phase data"));
    }

    #[test]
    fn validator_accepts_well_formed_and_rejects_broken_traces() {
        let good = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"compass"}},
            {"name":"a","cat":"check","ph":"B","pid":0,"tid":1,"ts":1.0},
            {"name":"b","cat":"linearize","ph":"B","pid":0,"tid":1,"ts":2.0},
            {"name":"b","cat":"linearize","ph":"E","pid":0,"tid":1,"ts":3.0},
            {"name":"n","cat":"counter","ph":"C","pid":0,"tid":1,"ts":3.5,"args":{"value":7}},
            {"name":"a","cat":"check","ph":"E","pid":0,"tid":1,"ts":4.0}
        ]}"#;
        let c = validate_trace_text(good).unwrap();
        assert_eq!((c.events, c.spans, c.counters, c.tracks), (5, 2, 1, 1));
        assert_eq!(c.max_tid, 1);

        let crossed = good.replace(
            r#"{"name":"b","cat":"linearize","ph":"E","pid":0,"tid":1,"ts":3.0}"#,
            r#"{"name":"a","cat":"check","ph":"E","pid":0,"tid":1,"ts":3.0}"#,
        );
        assert!(validate_trace_text(&crossed)
            .unwrap_err()
            .contains("does not match"));

        let backwards = good.replace("\"ts\":4.0", "\"ts\":0.5");
        assert!(validate_trace_text(&backwards)
            .unwrap_err()
            .contains("went backwards"));

        assert!(validate_trace_text("{").unwrap_err().contains("JSON"));
        assert!(validate_trace_text("{}")
            .unwrap_err()
            .contains("traceEvents"));

        let unclosed = r#"{"traceEvents":[
            {"name":"a","cat":"check","ph":"B","pid":0,"tid":2,"ts":1.0}
        ]}"#;
        assert!(validate_trace_text(unclosed)
            .unwrap_err()
            .contains("unclosed"));

        let bad_pid = good.replace(
            "\"pid\":0,\"tid\":1,\"ts\":1.0",
            "\"pid\":9,\"tid\":1,\"ts\":1.0",
        );
        assert!(validate_trace_text(&bad_pid).unwrap_err().contains("pid"));
    }
}
