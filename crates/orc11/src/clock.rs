//! Vector clocks used for non-atomic data-race detection.

use std::fmt;

use crate::val::ThreadId;

/// A vector clock: one logical clock per simulated thread.
///
/// Vector clocks ride along with the physical views on every message and
/// thread frontier, with exactly the same transfer rules. They are used by
/// the memory to decide whether two conflicting accesses are ordered by
/// happens-before (FastTrack-style epoch checks), so that races on
/// non-atomic accesses can be reported — the operational stand-in for RC11's
/// catch-fire semantics.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VecClock {
    clocks: Vec<u64>,
}

impl VecClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock component for `tid` (0 if never ticked/joined).
    pub fn get(&self, tid: ThreadId) -> u64 {
        self.clocks.get(tid).copied().unwrap_or(0)
    }

    /// Sets the component for `tid` to at least `c`.
    pub fn bump(&mut self, tid: ThreadId, c: u64) {
        if self.clocks.len() <= tid {
            self.clocks.resize(tid + 1, 0);
        }
        self.clocks[tid] = self.clocks[tid].max(c);
    }

    /// Increments the component for `tid` and returns the new value.
    pub fn tick(&mut self, tid: ThreadId) -> u64 {
        if self.clocks.len() <= tid {
            self.clocks.resize(tid + 1, 0);
        }
        self.clocks[tid] += 1;
        self.clocks[tid]
    }

    /// Pointwise join with `other`.
    pub fn join(&mut self, other: &VecClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (s, &o) in self.clocks.iter_mut().zip(&other.clocks) {
            *s = (*s).max(o);
        }
    }

    /// Pointwise comparison: `self ⊑ other`.
    pub fn leq(&self, other: &VecClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(t, &c)| c <= other.get(t))
    }
}

impl fmt::Debug for VecClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.clocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_only_own_component() {
        let mut vc = VecClock::new();
        assert_eq!(vc.tick(2), 1);
        assert_eq!(vc.tick(2), 2);
        assert_eq!(vc.get(2), 2);
        assert_eq!(vc.get(0), 0);
        assert_eq!(vc.get(99), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VecClock::new();
        a.bump(0, 3);
        let mut b = VecClock::new();
        b.bump(1, 2);
        b.bump(0, 1);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 2);
    }

    #[test]
    fn leq_detects_concurrency() {
        let mut a = VecClock::new();
        a.tick(0);
        let mut b = VecClock::new();
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn zero_clock_is_bottom() {
        let z = VecClock::new();
        let mut a = VecClock::new();
        a.tick(5);
        assert!(z.leq(&a));
        assert!(z.leq(&z));
    }
}
