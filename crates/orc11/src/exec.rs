//! The execution harness: gated OS threads driven by a strategy.
//!
//! A model program has three phases:
//!
//! 1. **setup** — runs solo on the main context (thread id 0), typically
//!    allocating locations and building library objects;
//! 2. **parallel bodies** — each runs on its own OS thread (ids `1..=n`),
//!    but every model instruction passes through a turnstile so that
//!    exactly one instruction executes at a time and every interleaving
//!    decision is delegated to the [`Strategy`];
//! 3. **finish** — runs solo again with the join of all final thread views
//!    (like joining the threads), typically asserting postconditions and
//!    extracting results.
//!
//! The scheduler only makes a decision once *every* live thread has either
//! arrived at the turnstile or finished, which makes executions a
//! deterministic function of the strategy's choices — the basis for replay
//! and exhaustive exploration.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

use crate::dpor::{Access, AccessKind, StepAccess, CANDIDATES_UNKNOWN};
use crate::error::ModelError;
use crate::frontier::Frontier;
use crate::memory::Memory;
use crate::mode::{FenceMode, Mode};
use crate::oplog::{OpKindRecord, OpRecord};
use crate::sched::{Choice, ChoiceKind, Strategy};
use crate::stats::ExecStats;
use crate::tview::ThreadView;
use crate::val::{Loc, ThreadId, Val};

/// Execution configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Abort the execution after this many model instructions (livelock
    /// guard). Default: 100 000.
    pub max_steps: u64,
    /// Record every model instruction into [`RunOutcome::ops`]
    /// (see [`crate::render_ops`]). Default: off.
    pub record_ops: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 100_000,
            record_ops: false,
        }
    }
}

/// Sentinel panic payload used to unwind simulated threads after the
/// execution has been aborted (race, step limit, deadlock, ...).
struct ModelAbort;

type Pred = Box<dyn Fn(Val) -> bool + Send>;

struct ThreadSlot {
    tv: ThreadView,
    arrived: bool,
    finished: bool,
    /// `Some` while the thread is blocked in `read_await`.
    waiting: Option<(Loc, Mode, Pred)>,
}

struct ExecState {
    memory: Memory,
    threads: Vec<ThreadSlot>,
    strategy: Box<dyn Strategy>,
    trace: Vec<Choice>,
    current: Option<ThreadId>,
    aborted: Option<ModelError>,
    steps: u64,
    max_steps: u64,
    /// True during setup/finish: instructions execute immediately.
    solo: bool,
    n_bodies: usize,
    /// The global SC frontier joined/published by SC fences.
    sc: Frontier,
    /// Recorded instructions (when `Config::record_ops`).
    ops: Option<Vec<OpRecord>>,
    /// Always-on instruction counters (see [`crate::stats`]).
    stats: ExecStats,
    /// Access summary of the instruction currently executing — written by
    /// the operation's closure, consumed by `with_step` (see
    /// [`crate::dpor`]).
    cur_kind: AccessKind,
    /// Whether the current instruction's commit continuation touched
    /// ghost state.
    cur_ghost: bool,
    /// Trace index and selectable-thread bitmask of the [`ChoiceKind::Thread`]
    /// decision that scheduled the instruction about to execute; `None`
    /// when only one thread was selectable (no decision recorded).
    pending_decision: Option<(u32, u64)>,
    /// Per-body-instruction access summaries (see [`RunOutcome::accesses`]).
    accesses: Vec<StepAccess>,
}

impl ExecState {
    fn record(&mut self, tid: ThreadId, loc: Option<Loc>, kind: OpKindRecord) {
        if let Some(ops) = &mut self.ops {
            let loc_name = loc
                .map(|l| self.memory.loc_name(l).to_string())
                .unwrap_or_default();
            ops.push(OpRecord {
                step: self.steps,
                tid,
                loc,
                loc_name,
                kind,
            });
        }
    }
}

impl fmt::Debug for ExecState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecState")
            .field("steps", &self.steps)
            .field("current", &self.current)
            .field("aborted", &self.aborted)
            .finish_non_exhaustive()
    }
}

struct ExecShared {
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// Information handed to the commit continuation of an RMW
/// (see [`ThreadCtx::update_with`]).
#[derive(Clone, Debug)]
pub struct OpResult {
    /// The value the RMW read (always the latest write).
    pub old: Val,
    /// The value it is writing, or `None` if it failed (failed CAS).
    pub new: Option<Val>,
}

/// Handle given to commit continuations: runs *inside* the atomic step,
/// between the operation's view transfer and (for writes) the publication
/// of its message.
///
/// Ghost events added here are carried on the message being published,
/// which is exactly how a committed library event enters the logical views
/// of later synchronized operations (§3.1 of the paper).
pub struct GhostHandle<'a> {
    tv: &'a mut ThreadView,
    step: u64,
    tid: ThreadId,
    /// Flips when the continuation reads or extends ghost state or
    /// observes the step index — the signal that this instruction is a
    /// commit point, which the DPOR conflict relation treats as
    /// conflicting with every other commit point (see [`crate::dpor`]).
    used: Cell<bool>,
}

impl fmt::Debug for GhostHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GhostHandle")
            .field("step", &self.step)
            .field("tid", &self.tid)
            .finish()
    }
}

impl GhostHandle<'_> {
    /// The thread's current ghost event set for `key` — at a commit point
    /// this is the set of `key`'s events that happen before the commit.
    pub fn ghost(&self, key: u64) -> BTreeSet<u64> {
        self.used.set(true);
        self.tv.cur.ghost.get(key)
    }

    /// Adds event `id` to the thread's current ghost set for `key`.
    pub fn ghost_add(&mut self, key: u64, id: u64) {
        self.used.set(true);
        self.tv.cur.ghost.insert(key, id);
        self.tv.acq.ghost.insert(key, id);
    }

    /// The global step index of the instruction being executed. Strictly
    /// monotone across the execution; usable as a commit order.
    pub fn step_index(&self) -> u64 {
        self.used.set(true);
        self.step
    }

    /// The executing thread.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// Per-thread handle to the execution: all simulated memory operations go
/// through it. Obtained inside [`run_model`] closures.
pub struct ThreadCtx {
    shared: Arc<ExecShared>,
    tid: ThreadId,
}

impl fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx").field("tid", &self.tid).finish()
    }
}

/// The result of one model execution.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// `Ok` with the finish phase's result, or the reason the execution
    /// aborted.
    pub result: Result<R, ModelError>,
    /// Number of model instructions executed.
    pub steps: u64,
    /// The recorded decision trace (only decisions with arity >= 2).
    pub trace: Vec<Choice>,
    /// Instruction log (empty unless [`Config::record_ops`] is set).
    pub ops: Vec<OpRecord>,
    /// Instruction counters for this execution (always recorded).
    pub stats: ExecStats,
    /// Per-body-instruction access summaries (one entry per turnstile
    /// instruction, in execution order), linking each instruction to the
    /// scheduling decision that ran it. Consumed by the DPOR layer
    /// (see [`crate::dpor`]); setup/finish instructions are not recorded.
    pub accesses: Vec<StepAccess>,
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Makes a decision if every live body thread has arrived or finished.
fn maybe_decide(st: &mut ExecState) {
    if st.solo || st.current.is_some() || st.aborted.is_some() {
        return;
    }
    let n = st.n_bodies;
    let mut arrived = Vec::new();
    let mut finished = 0usize;
    for t in 1..=n {
        if st.threads[t].finished {
            finished += 1;
        } else if st.threads[t].arrived {
            arrived.push(t);
        }
    }
    if arrived.is_empty() || arrived.len() + finished != n {
        return;
    }
    // A thread blocked in read_await is only selectable if a satisfying
    // message is now readable.
    let selectable: Vec<ThreadId> = arrived
        .iter()
        .copied()
        .filter(|&t| match &st.threads[t].waiting {
            None => true,
            Some((loc, _, pred)) => {
                let p: &dyn Fn(Val) -> bool = &**pred;
                !st.memory
                    .candidates(&st.threads[t].tv, *loc, Some(p))
                    .is_empty()
            }
        })
        .collect();
    if selectable.is_empty() {
        st.aborted = Some(ModelError::Deadlock);
        return;
    }
    let idx = if selectable.len() == 1 {
        0
    } else {
        let i = st.strategy.choose_thread(&selectable);
        assert!(i < selectable.len(), "strategy returned out-of-range index");
        // Remember which trace entry scheduled the next instruction and
        // which threads were selectable, for the DPOR access summary.
        let mut mask: u64 = 0;
        let mut overflow = false;
        for &t in &selectable {
            if t < 64 {
                mask |= 1 << t;
            } else {
                overflow = true;
            }
        }
        st.pending_decision = Some((
            st.trace.len() as u32,
            if overflow { CANDIDATES_UNKNOWN } else { mask },
        ));
        st.trace.push(Choice {
            kind: ChoiceKind::Thread,
            chosen: i as u32,
            arity: selectable.len() as u32,
        });
        i
    };
    st.current = Some(selectable[idx]);
}

impl ThreadCtx {
    /// The id of this simulated thread.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Executes one model instruction `f`, respecting the turnstile.
    fn with_step<R>(
        &mut self,
        waiting: Option<(Loc, Mode, Pred)>,
        f: impl FnOnce(&mut ExecState, ThreadId) -> Result<R, ModelError>,
    ) -> R {
        let tid = self.tid;
        let mut st = self.shared.state.lock();
        if st.aborted.is_some() {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if !st.solo {
            st.threads[tid].waiting = waiting;
            st.threads[tid].arrived = true;
            maybe_decide(&mut st);
            if st.aborted.is_some() {
                self.shared.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            self.shared.cv.notify_all();
            while st.current != Some(tid) {
                if st.aborted.is_some() {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                self.shared.cv.wait(&mut st);
            }
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.aborted = Some(ModelError::StepLimit(st.max_steps));
            st.current = None;
            self.shared.cv.notify_all();
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        let decision = st.pending_decision.take();
        let trace_start = st.trace.len() as u32;
        st.cur_kind = AccessKind::Other;
        st.cur_ghost = false;
        let res = f(&mut st, tid);
        if !st.solo {
            // Record the access summary even when the instruction aborted
            // the execution: DPOR only ever uses summaries to *add*
            // backtrack points, so including an aborting access is the
            // conservative choice.
            let (d, candidates) = match decision {
                Some((d, m)) => (Some(d), m),
                None => (None, 0),
            };
            let access = Access {
                tid,
                kind: st.cur_kind,
                ghost: st.cur_ghost,
            };
            st.accesses.push(StepAccess {
                access,
                decision: d,
                candidates,
                trace_start,
            });
            st.current = None;
            st.threads[tid].arrived = false;
        }
        match res {
            Ok(r) => {
                self.shared.cv.notify_all();
                r
            }
            Err(e) => {
                st.aborted = Some(e);
                self.shared.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Allocates a fresh location named `name`, initialized to `init`.
    pub fn alloc(&mut self, name: &str, init: Val) -> Loc {
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Alloc;
            let loc = {
                let ExecState {
                    memory, threads, ..
                } = st;
                memory.alloc(name, init, &mut threads[tid].tv, tid)
            };
            st.stats.allocs += 1;
            st.record(tid, Some(loc), OpKindRecord::Alloc { count: 1 });
            Ok(loc)
        })
    }

    /// Allocates a contiguous block of locations (a record); address the
    /// fields with [`Loc::field`].
    pub fn alloc_block(&mut self, name: &str, inits: &[Val]) -> Loc {
        let n = inits.len() as u32;
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Alloc;
            let loc = {
                let ExecState {
                    memory, threads, ..
                } = st;
                memory.alloc_block(name, inits, &mut threads[tid].tv, tid)
            };
            st.stats.allocs += u64::from(n);
            st.record(tid, Some(loc), OpKindRecord::Alloc { count: n });
            Ok(loc)
        })
    }

    /// Allocates a location whose initializing write is atomic — use for
    /// locations only ever accessed atomically, so that unsynchronized
    /// atomic readers do not race with the initialization.
    pub fn alloc_atomic(&mut self, name: &str, init: Val) -> Loc {
        self.alloc_block_atomic(name, &[init])
    }

    /// Block version of [`ThreadCtx::alloc_atomic`].
    pub fn alloc_block_atomic(&mut self, name: &str, inits: &[Val]) -> Loc {
        let n = inits.len() as u32;
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Alloc;
            let loc = {
                let ExecState {
                    memory, threads, ..
                } = st;
                memory.alloc_block_atomic(name, inits, &mut threads[tid].tv, tid)
            };
            st.stats.allocs += u64::from(n);
            st.record(tid, Some(loc), OpKindRecord::Alloc { count: n });
            Ok(loc)
        })
    }

    fn do_read<T>(
        &mut self,
        loc: Loc,
        mode: Mode,
        waiting: Option<(Loc, Mode, Pred)>,
        k: impl FnOnce(Val, &mut GhostHandle) -> T,
    ) -> (Val, T) {
        self.with_step(waiting, |st, tid| {
            st.cur_kind = AccessKind::Read {
                loc,
                atomic: mode.is_atomic(),
            };
            let step = st.steps;
            let ExecState {
                memory,
                threads,
                strategy,
                trace,
                ..
            } = st;
            let pred = threads[tid].waiting.take();
            let pred_ref: Option<&dyn Fn(Val) -> bool> =
                pred.as_ref().map(|(_, _, p)| &**p as &dyn Fn(Val) -> bool);
            let got = memory
                .read(tid, &mut threads[tid].tv, loc, mode, pred_ref, |n| {
                    if n <= 1 {
                        0
                    } else {
                        let c = strategy.choose(ChoiceKind::Read, n);
                        trace.push(Choice {
                            kind: ChoiceKind::Read,
                            chosen: c as u32,
                            arity: n as u32,
                        });
                        c
                    }
                })
                .map_err(ModelError::Race)?;
            let (val, ts) = got
                .expect("scheduled read_await must have a candidate; plain reads always have one");
            let (t, ghost_used) = {
                let mut gh = GhostHandle {
                    tv: &mut threads[tid].tv,
                    step,
                    tid,
                    used: Cell::new(false),
                };
                let t = k(val, &mut gh);
                (t, gh.used.get())
            };
            st.cur_ghost = ghost_used;
            let awaited = pred.is_some();
            st.stats.reads.bump(mode);
            st.stats.awaited_reads += u64::from(awaited);
            st.record(
                tid,
                Some(loc),
                OpKindRecord::Read {
                    mode,
                    val,
                    ts,
                    awaited,
                },
            );
            Ok((val, t))
        })
    }

    /// Reads `loc` at `mode`.
    ///
    /// Atomic reads may read any write not older than the thread's view;
    /// the scheduling strategy picks which. Non-atomic reads read the
    /// latest write (anything else is a race, which aborts the execution).
    ///
    /// ```
    /// use orc11::{random_strategy, run_model, BodyFn, Config, Mode, Val};
    /// let out = run_model(
    ///     &Config::default(),
    ///     random_strategy(0),
    ///     |ctx| ctx.alloc("x", Val::Int(5)),
    ///     Vec::<BodyFn<'_, _, ()>>::new(),
    ///     |ctx, &x, _| ctx.read(x, Mode::Relaxed),
    /// );
    /// assert_eq!(out.result.unwrap(), Val::Int(5));
    /// ```
    pub fn read(&mut self, loc: Loc, mode: Mode) -> Val {
        self.do_read(loc, mode, None, |_, _| ()).0
    }

    /// Like [`ThreadCtx::read`], running `k` atomically with the read
    /// (after its view transfer) — the read-commit window.
    pub fn read_with<T>(
        &mut self,
        loc: Loc,
        mode: Mode,
        k: impl FnOnce(Val, &mut GhostHandle) -> T,
    ) -> (Val, T) {
        self.do_read(loc, mode, None, k)
    }

    /// Blocks (in model terms: becomes unschedulable) until a message
    /// satisfying `pred` is readable at `loc`, then reads one such message
    /// at `mode`.
    ///
    /// This is the fair, finitely-explorable encoding of a spin loop like
    /// `while (*acq flag == 0) {}` — preferred over an actual loop because
    /// it keeps exhaustive exploration finite.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is non-atomic.
    pub fn read_await(
        &mut self,
        loc: Loc,
        mode: Mode,
        pred: impl Fn(Val) -> bool + Send + 'static,
    ) -> Val {
        self.read_await_with(loc, mode, pred, |_, _| ()).0
    }

    /// Like [`ThreadCtx::read_await`] with a commit continuation.
    pub fn read_await_with<T>(
        &mut self,
        loc: Loc,
        mode: Mode,
        pred: impl Fn(Val) -> bool + Send + 'static,
        k: impl FnOnce(Val, &mut GhostHandle) -> T,
    ) -> (Val, T) {
        assert!(mode.is_atomic(), "read_await requires an atomic mode");
        self.do_read(loc, mode, Some((loc, mode, Box::new(pred))), k)
    }

    /// Writes `val` to `loc` at `mode`.
    pub fn write(&mut self, loc: Loc, val: Val, mode: Mode) {
        self.write_with(loc, val, mode, |_| ());
    }

    /// Like [`ThreadCtx::write`], running `k` atomically with the write,
    /// *before* its message is published: ghost events added by `k` ride on
    /// the message (the write-commit window).
    pub fn write_with<T>(
        &mut self,
        loc: Loc,
        val: Val,
        mode: Mode,
        k: impl FnOnce(&mut GhostHandle) -> T,
    ) -> T {
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Write {
                loc,
                atomic: mode.is_atomic(),
            };
            let step = st.steps;
            let ExecState {
                memory, threads, ..
            } = st;
            let (ts, (t, ghost_used)) = memory
                .write(tid, &mut threads[tid].tv, loc, val, mode, |tv| {
                    let mut gh = GhostHandle {
                        tv,
                        step,
                        tid,
                        used: Cell::new(false),
                    };
                    let t = k(&mut gh);
                    let used = gh.used.get();
                    (t, used)
                })
                .map_err(ModelError::Race)?;
            st.cur_ghost = ghost_used;
            st.stats.writes.bump(mode);
            st.record(tid, Some(loc), OpKindRecord::Write { mode, val, ts });
            Ok(t)
        })
    }

    /// Issues a fence.
    pub fn fence(&mut self, mode: FenceMode) {
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Fence {
                sc: mode == FenceMode::SeqCst,
            };
            if mode == FenceMode::SeqCst {
                let ExecState { threads, sc, .. } = st;
                threads[tid].tv.sc_fence(sc);
            } else {
                st.threads[tid].tv.fence(mode);
            }
            st.stats.fences.bump(mode);
            st.record(tid, None, OpKindRecord::Fence { mode });
            Ok(())
        })
    }

    /// General read-modify-write: atomically reads the latest value,
    /// applies `compute`, and — if it returns `Some(new)` — writes `new`.
    ///
    /// `ok_mode` governs the successful RMW (both halves), `fail_mode` the
    /// read when `compute` declines. The continuation `k` runs inside the
    /// atomic step between the view transfer and the publication of the
    /// written message — the commit-point window of the paper's logically
    /// atomic specs.
    ///
    /// Returns `(old_value, succeeded, k_result)`.
    ///
    /// ```
    /// use orc11::{random_strategy, run_model, BodyFn, Config, Mode, Val};
    /// // A saturating-at-3 increment as a custom RMW.
    /// let out = run_model(
    ///     &Config::default(),
    ///     random_strategy(0),
    ///     |ctx| ctx.alloc("x", Val::Int(3)),
    ///     Vec::<BodyFn<'_, _, ()>>::new(),
    ///     |ctx, &x, _| {
    ///         let (old, ok, step) = ctx.update_with(
    ///             x,
    ///             |v| (v.expect_int() < 3).then(|| Val::Int(v.expect_int() + 1)),
    ///             Mode::AcqRel,
    ///             Mode::Relaxed,
    ///             |_res, gh| gh.step_index(),
    ///         );
    ///         assert_eq!(old, Val::Int(3));
    ///         assert!(!ok, "already saturated");
    ///         assert!(step > 0);
    ///     },
    /// );
    /// out.result.unwrap();
    /// ```
    pub fn update_with<T>(
        &mut self,
        loc: Loc,
        compute: impl FnOnce(Val) -> Option<Val>,
        ok_mode: Mode,
        fail_mode: Mode,
        k: impl FnOnce(&OpResult, &mut GhostHandle) -> T,
    ) -> (Val, bool, T) {
        self.with_step(None, |st, tid| {
            st.cur_kind = AccessKind::Rmw { loc };
            let step = st.steps;
            let (old, ts, t, ghost_used, new) = {
                let ExecState {
                    memory, threads, ..
                } = st;
                let (old, ts, (t, ghost_used)) = memory
                    .rmw(
                        tid,
                        &mut threads[tid].tv,
                        loc,
                        compute,
                        ok_mode,
                        fail_mode,
                        |pre, tv| {
                            let mut gh = GhostHandle {
                                tv,
                                step,
                                tid,
                                used: Cell::new(false),
                            };
                            let t = k(
                                &OpResult {
                                    old: pre.old,
                                    new: pre.new,
                                },
                                &mut gh,
                            );
                            let used = gh.used.get();
                            (t, used)
                        },
                    )
                    .map_err(ModelError::Race)?;
                let new = ts.map(|_| memory.peek_latest(loc));
                (old, ts, t, ghost_used, new)
            };
            st.cur_ghost = ghost_used;
            st.stats.rmws.bump(ok_mode);
            st.stats.failed_cas += u64::from(new.is_none());
            st.record(
                tid,
                Some(loc),
                OpKindRecord::Rmw {
                    mode: ok_mode,
                    old,
                    new,
                },
            );
            Ok((old, ts.is_some(), t))
        })
    }

    /// Compare-and-swap: atomically replaces `expect` by `new`.
    ///
    /// Returns `Ok(old)` on success and `Err(observed)` on failure.
    ///
    /// ```
    /// use orc11::{random_strategy, run_model, BodyFn, Config, Mode, Val};
    /// let out = run_model(
    ///     &Config::default(),
    ///     random_strategy(0),
    ///     |ctx| ctx.alloc("x", Val::Int(0)),
    ///     Vec::<BodyFn<'_, _, ()>>::new(),
    ///     |ctx, &x, _| {
    ///         assert!(ctx.cas(x, Val::Int(0), Val::Int(1), Mode::AcqRel, Mode::Relaxed).is_ok());
    ///         // Second attempt observes 1 and fails.
    ///         ctx.cas(x, Val::Int(0), Val::Int(2), Mode::AcqRel, Mode::Relaxed)
    ///     },
    /// );
    /// assert_eq!(out.result.unwrap(), Err(Val::Int(1)));
    /// ```
    pub fn cas(
        &mut self,
        loc: Loc,
        expect: Val,
        new: Val,
        ok_mode: Mode,
        fail_mode: Mode,
    ) -> Result<Val, Val> {
        self.cas_with(loc, expect, new, ok_mode, fail_mode, |_, _| ())
            .0
    }

    /// [`ThreadCtx::cas`] with a commit continuation (see
    /// [`ThreadCtx::update_with`]).
    pub fn cas_with<T>(
        &mut self,
        loc: Loc,
        expect: Val,
        new: Val,
        ok_mode: Mode,
        fail_mode: Mode,
        k: impl FnOnce(&OpResult, &mut GhostHandle) -> T,
    ) -> (Result<Val, Val>, T) {
        let (old, ok, t) = self.update_with(
            loc,
            |v| if v == expect { Some(new) } else { None },
            ok_mode,
            fail_mode,
            k,
        );
        (if ok { Ok(old) } else { Err(old) }, t)
    }

    /// Atomically replaces the value at `loc`, returning the old value.
    pub fn exchange(&mut self, loc: Loc, val: Val, mode: Mode) -> Val {
        self.exchange_with(loc, val, mode, |_, _| ()).0
    }

    /// [`ThreadCtx::exchange`] with a commit continuation.
    pub fn exchange_with<T>(
        &mut self,
        loc: Loc,
        val: Val,
        mode: Mode,
        k: impl FnOnce(&OpResult, &mut GhostHandle) -> T,
    ) -> (Val, T) {
        let (old, _ok, t) = self.update_with(loc, |_| Some(val), mode, mode, k);
        (old, t)
    }

    /// Atomically adds `delta` to the integer at `loc`, returning the old
    /// value.
    ///
    /// # Panics
    ///
    /// Panics (aborting the execution) if the location does not hold an
    /// integer.
    pub fn fetch_add(&mut self, loc: Loc, delta: i64, mode: Mode) -> Val {
        self.fetch_add_with(loc, delta, mode, |_, _| ()).0
    }

    /// [`ThreadCtx::fetch_add`] with a commit continuation.
    pub fn fetch_add_with<T>(
        &mut self,
        loc: Loc,
        delta: i64,
        mode: Mode,
        k: impl FnOnce(&OpResult, &mut GhostHandle) -> T,
    ) -> (Val, T) {
        let (old, _ok, t) = self.update_with(
            loc,
            |v| Some(Val::Int(v.expect_int() + delta)),
            mode,
            mode,
            k,
        );
        (old, t)
    }

    /// The thread's current ghost event set for `key`.
    ///
    /// This is the thread-local logical view (the `M₀` of a `SeenQueue`
    /// assertion). Reading it is not a scheduling point: only the thread
    /// itself mutates its ghost state.
    pub fn ghost(&self, key: u64) -> BTreeSet<u64> {
        let st = self.shared.state.lock();
        st.threads[self.tid].tv.cur.ghost.get(key)
    }

    /// Adds an event to the thread's own ghost set without a memory
    /// operation (e.g. when a library hands the caller an event id through
    /// a return value rather than through memory).
    pub fn ghost_add(&mut self, key: u64, id: u64) {
        let mut st = self.shared.state.lock();
        let tv = &mut st.threads[self.tid].tv;
        tv.cur.ghost.insert(key, id);
        tv.acq.ghost.insert(key, id);
    }

    /// The latest value at `loc`, bypassing synchronization and race
    /// detection. Intended for the finish phase and debugging.
    pub fn peek(&self, loc: Loc) -> Val {
        self.shared.state.lock().memory.peek_latest(loc)
    }

    /// Number of model instructions executed so far.
    pub fn step_count(&self) -> u64 {
        self.shared.state.lock().steps
    }
}

/// A parallel body of a model program.
pub type BodyFn<'a, S, O> = Box<dyn FnOnce(&mut ThreadCtx, &S) -> O + Send + 'a>;

/// Runs one model execution.
///
/// See the [crate docs](crate) for an example. The `strategy` resolves all
/// nondeterminism; use [`crate::random_strategy`] for seeded random
/// exploration or [`crate::dfs_strategy`]/[`crate::Explorer`] for bounded
/// exhaustive exploration.
///
/// Panics from simulated threads (assertion failures) are captured and
/// reported as [`ModelError::ThreadPanic`] in the outcome rather than
/// propagated.
pub fn run_model<S, O, R>(
    cfg: &Config,
    strategy: Box<dyn Strategy>,
    setup: impl FnOnce(&mut ThreadCtx) -> S,
    bodies: Vec<BodyFn<'_, S, O>>,
    finish: impl FnOnce(&mut ThreadCtx, &S, Vec<O>) -> R,
) -> RunOutcome<R>
where
    S: Sync,
    O: Send,
{
    let _span = crate::trace::span(crate::trace::Phase::Explore, "exec");
    let n = bodies.len();
    let shared = Arc::new(ExecShared {
        state: Mutex::new(ExecState {
            memory: Memory::new(),
            threads: (0..=n)
                .map(|_| ThreadSlot {
                    tv: ThreadView::new(),
                    arrived: false,
                    finished: false,
                    waiting: None,
                })
                .collect(),
            strategy,
            trace: Vec::new(),
            current: None,
            aborted: None,
            steps: 0,
            max_steps: cfg.max_steps,
            solo: true,
            n_bodies: n,
            sc: Frontier::new(),
            ops: cfg.record_ops.then(Vec::new),
            stats: ExecStats::default(),
            cur_kind: AccessKind::Other,
            cur_ghost: false,
            pending_decision: None,
            accesses: Vec::new(),
        }),
        cv: Condvar::new(),
    });

    let outcome = |shared: &Arc<ExecShared>, result: Result<R, ModelError>| {
        let mut st = shared.state.lock();
        let ops = st.ops.take().unwrap_or_default();
        st.stats.steps = st.steps;
        st.stats.races = u64::from(matches!(&result, Err(ModelError::Race(_))));
        RunOutcome {
            result,
            steps: st.steps,
            trace: st.trace.clone(),
            ops,
            stats: st.stats,
            accesses: std::mem::take(&mut st.accesses),
        }
    };

    // Phase 1: setup, solo.
    let mut main_ctx = ThreadCtx {
        shared: shared.clone(),
        tid: 0,
    };
    let s = match catch_unwind(AssertUnwindSafe(|| setup(&mut main_ctx))) {
        Ok(s) => s,
        Err(p) => {
            let mut st = shared.state.lock();
            let err = st.aborted.clone().unwrap_or_else(|| {
                ModelError::ThreadPanic(if p.downcast_ref::<ModelAbort>().is_some() {
                    "aborted".into()
                } else {
                    panic_msg(p)
                })
            });
            st.aborted = Some(err.clone());
            drop(st);
            return outcome(&shared, Err(err));
        }
    };

    // Phase 2: parallel bodies.
    {
        let mut st = shared.state.lock();
        st.solo = n == 0;
        let parent = st.threads[0].tv.cur.clone();
        for t in 1..=n {
            st.threads[t].tv = ThreadView::inherit(&parent);
        }
    }
    let outs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (i, body) in bodies.into_iter().enumerate() {
            let shared = shared.clone();
            let s = &s;
            let out_slot = &outs[i];
            scope.spawn(move || {
                let mut ctx = ThreadCtx {
                    shared: shared.clone(),
                    tid: i + 1,
                };
                let r = catch_unwind(AssertUnwindSafe(|| body(&mut ctx, s)));
                let mut st = shared.state.lock();
                st.threads[i + 1].finished = true;
                st.threads[i + 1].arrived = false;
                if st.current == Some(i + 1) {
                    st.current = None;
                }
                match r {
                    Ok(o) => *out_slot.lock() = Some(o),
                    Err(p) => {
                        if p.downcast_ref::<ModelAbort>().is_none() && st.aborted.is_none() {
                            st.aborted = Some(ModelError::ThreadPanic(panic_msg(p)));
                        }
                    }
                }
                maybe_decide(&mut st);
                shared.cv.notify_all();
            });
        }
    });

    // Phase 3: finish, solo, with joined views.
    let aborted = {
        let mut st = shared.state.lock();
        st.solo = true;
        st.current = None;
        let frontiers: Vec<Frontier> = (1..=n).map(|t| st.threads[t].tv.cur.clone()).collect();
        for fr in &frontiers {
            st.threads[0].tv.acquire(fr);
        }
        st.aborted.clone()
    };
    if let Some(e) = aborted {
        return outcome(&shared, Err(e));
    }
    let collected: Vec<O> = outs
        .into_iter()
        .map(|m| m.into_inner().expect("unaborted body produced output"))
        .collect();
    match catch_unwind(AssertUnwindSafe(|| finish(&mut main_ctx, &s, collected))) {
        Ok(r) => outcome(&shared, Ok(r)),
        Err(p) => {
            let st = shared.state.lock();
            let err = st.aborted.clone().unwrap_or_else(|| {
                ModelError::ThreadPanic(if p.downcast_ref::<ModelAbort>().is_some() {
                    "aborted".into()
                } else {
                    panic_msg(p)
                })
            });
            drop(st);
            outcome(&shared, Err(err))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::random_strategy;

    #[test]
    fn solo_program_runs() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| {
                let l = ctx.alloc("x", Val::Int(1));
                ctx.write(l, Val::Int(2), Mode::NonAtomic);
                l
            },
            Vec::<BodyFn<'_, _, ()>>::new(),
            |ctx, &l, _| ctx.read(l, Mode::NonAtomic),
        );
        assert_eq!(out.result.unwrap(), Val::Int(2));
        assert!(out.steps > 0);
    }

    #[test]
    fn two_thread_counter_with_cas() {
        // Two threads each CAS-increment a counter once; final value is 2.
        for seed in 0..20 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| ctx.alloc("ctr", Val::Int(0)),
                (0..2)
                    .map(|_| {
                        Box::new(|ctx: &mut ThreadCtx, &l: &Loc| loop {
                            let cur = ctx.read(l, Mode::Relaxed);
                            if ctx
                                .cas(
                                    l,
                                    cur,
                                    Val::Int(cur.expect_int() + 1),
                                    Mode::Relaxed,
                                    Mode::Relaxed,
                                )
                                .is_ok()
                            {
                                return;
                            }
                        }) as BodyFn<'_, _, _>
                    })
                    .collect(),
                |ctx, &l, _| ctx.peek(l),
            );
            assert_eq!(out.result.unwrap(), Val::Int(2), "seed {seed}");
        }
    }

    #[test]
    fn fetch_add_is_atomic() {
        for seed in 0..20 {
            let out = run_model(
                &Config::default(),
                random_strategy(seed),
                |ctx| ctx.alloc("ctr", Val::Int(0)),
                (0..3)
                    .map(|_| {
                        Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                            ctx.fetch_add(l, 1, Mode::Relaxed);
                        }) as BodyFn<'_, _, _>
                    })
                    .collect(),
                |ctx, &l, _| ctx.peek(l),
            );
            assert_eq!(out.result.unwrap(), Val::Int(3), "seed {seed}");
        }
    }

    #[test]
    fn race_is_reported() {
        let out = run_model(
            &Config::default(),
            random_strategy(3),
            |ctx| ctx.alloc("x", Val::Int(0)),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| ctx.write(l, Val::Int(1), Mode::NonAtomic))
                    as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                    ctx.write(l, Val::Int(2), Mode::NonAtomic)
                }),
            ],
            |_, _, _| (),
        );
        assert!(matches!(out.result, Err(ModelError::Race(_))));
    }

    #[test]
    fn thread_panic_is_captured() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| ctx.alloc("x", Val::Int(0)),
            vec![Box::new(|_: &mut ThreadCtx, _: &Loc| panic!("boom 42")) as BodyFn<'_, _, ()>],
            |_, _, _| (),
        );
        match out.result {
            Err(ModelError::ThreadPanic(m)) => assert!(m.contains("boom 42")),
            other => panic!("expected ThreadPanic, got {other:?}"),
        }
    }

    #[test]
    fn read_await_blocks_until_written() {
        let out = run_model(
            &Config::default(),
            random_strategy(11),
            |ctx| ctx.alloc("flag", Val::Int(0)),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                    ctx.write(l, Val::Int(1), Mode::Release);
                    Val::Null
                }) as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                    ctx.read_await(l, Mode::Acquire, |v| v == Val::Int(1))
                }),
            ],
            |_, _, outs| outs[1],
        );
        assert_eq!(out.result.unwrap(), Val::Int(1));
    }

    #[test]
    fn deadlock_detected_when_no_writer() {
        let out = run_model(
            &Config::default(),
            random_strategy(0),
            |ctx| ctx.alloc("flag", Val::Int(0)),
            vec![Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                ctx.read_await(l, Mode::Acquire, |v| v == Val::Int(1))
            }) as BodyFn<'_, _, _>],
            |_, _, _| (),
        );
        assert!(matches!(out.result, Err(ModelError::Deadlock)));
    }

    #[test]
    fn step_limit_aborts_spinners() {
        let out = run_model(
            &Config {
                max_steps: 200,
                ..Config::default()
            },
            random_strategy(0),
            |ctx| ctx.alloc("flag", Val::Int(0)),
            vec![Box::new(|ctx: &mut ThreadCtx, &l: &Loc| loop {
                if ctx.read(l, Mode::Acquire) == Val::Int(1) {
                    return;
                }
            }) as BodyFn<'_, _, _>],
            |_, _, _| (),
        );
        assert!(matches!(out.result, Err(ModelError::StepLimit(_))));
    }

    #[test]
    fn replay_reproduces_execution() {
        use crate::sched::replay_strategy;
        // Find a seed where the relaxed read observes the stale value.
        let prog_result = |strategy: Box<dyn Strategy>| {
            run_model(
                &Config::default(),
                strategy,
                |ctx| ctx.alloc("x", Val::Int(0)),
                vec![
                    Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                        ctx.write(l, Val::Int(1), Mode::Relaxed);
                        Val::Null
                    }) as BodyFn<'_, _, _>,
                    Box::new(|ctx: &mut ThreadCtx, &l: &Loc| ctx.read(l, Mode::Relaxed)),
                ],
                |_, _, outs| outs[1],
            )
        };
        let mut stale = None;
        for seed in 0..100 {
            let out = prog_result(random_strategy(seed));
            if out.result.as_ref().unwrap() == &Val::Int(0) {
                stale = Some(out);
                break;
            }
        }
        let stale = stale.expect("some interleaving reads the stale value");
        let replayed = prog_result(replay_strategy(&stale.trace));
        assert_eq!(replayed.result.unwrap(), Val::Int(0));
        assert_eq!(replayed.trace, stale.trace);
    }

    #[test]
    fn ghost_handle_commit_flows_to_acquirer() {
        let out = run_model(
            &Config::default(),
            random_strategy(5),
            |ctx| ctx.alloc("flag", Val::Int(0)),
            vec![
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                    ctx.write_with(l, Val::Int(1), Mode::Release, |gh| {
                        gh.ghost_add(9, 77);
                    });
                    true
                }) as BodyFn<'_, _, _>,
                Box::new(|ctx: &mut ThreadCtx, &l: &Loc| {
                    ctx.read_await(l, Mode::Acquire, |v| v == Val::Int(1));
                    ctx.ghost(9).contains(&77)
                }),
            ],
            |_, _, outs| outs[1],
        );
        assert!(out.result.unwrap());
    }
}
