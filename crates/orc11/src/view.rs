//! Physical views: per-location timestamp frontiers.

use std::collections::BTreeMap;
use std::fmt;

use crate::val::Loc;

/// A timestamp: the index of a write in a location's history.
///
/// Modification order in this model is the append order, so timestamps are
/// dense indices starting at 0 (the initializing write).
pub type Timestamp = u64;

/// A *view*: a map from locations to timestamps, recording for each location
/// the latest write the owner has observed (§2.3 of the paper).
///
/// Views form a join-semilattice under pointwise maximum; view inclusion
/// ([`View::leq`]) is the induced partial order. Missing entries mean
/// "nothing observed" and behave like `-∞`.
///
/// ```
/// use orc11::{Loc, View};
/// let mut a = View::new();
/// a.bump(Loc::from_raw(0), 3);
/// let mut b = View::new();
/// b.bump(Loc::from_raw(1), 1);
/// let mut j = a.clone();
/// j.join(&b);
/// assert!(a.leq(&j) && b.leq(&j));
/// assert_eq!(j.get(Loc::from_raw(0)), Some(3));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct View {
    map: BTreeMap<Loc, Timestamp>,
}

impl View {
    /// The empty view (observed nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The timestamp this view holds for `loc`, if any.
    pub fn get(&self, loc: Loc) -> Option<Timestamp> {
        self.map.get(&loc).copied()
    }

    /// Raises the entry for `loc` to at least `ts`.
    pub fn bump(&mut self, loc: Loc, ts: Timestamp) {
        let e = self.map.entry(loc).or_insert(ts);
        *e = (*e).max(ts);
    }

    /// Pointwise join (least upper bound) with `other`.
    pub fn join(&mut self, other: &View) {
        for (&loc, &ts) in &other.map {
            self.bump(loc, ts);
        }
    }

    /// View inclusion: `self ⊑ other`.
    pub fn leq(&self, other: &View) -> bool {
        self.map
            .iter()
            .all(|(&loc, &ts)| other.get(loc).is_some_and(|o| ts <= o))
    }

    /// Number of locations with an entry.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(location, timestamp)` entries in location order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, Timestamp)> + '_ {
        self.map.iter().map(|(&l, &t)| (l, t))
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Loc {
        Loc::from_raw(i)
    }

    #[test]
    fn empty_view_is_bottom() {
        let e = View::new();
        let mut v = View::new();
        v.bump(l(0), 5);
        assert!(e.leq(&v));
        assert!(!v.leq(&e));
        assert!(e.leq(&e));
        assert!(e.is_empty());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn bump_is_monotone() {
        let mut v = View::new();
        v.bump(l(1), 3);
        v.bump(l(1), 1);
        assert_eq!(v.get(l(1)), Some(3));
        v.bump(l(1), 7);
        assert_eq!(v.get(l(1)), Some(7));
    }

    #[test]
    fn join_is_lub() {
        let mut a = View::new();
        a.bump(l(0), 2);
        a.bump(l(1), 5);
        let mut b = View::new();
        b.bump(l(1), 3);
        b.bump(l(2), 1);
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(l(0)), Some(2));
        assert_eq!(j.get(l(1)), Some(5));
        assert_eq!(j.get(l(2)), Some(1));
    }

    #[test]
    fn join_commutes() {
        let mut a = View::new();
        a.bump(l(0), 2);
        let mut b = View::new();
        b.bump(l(0), 4);
        b.bump(l(3), 9);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn leq_is_partial_order() {
        let mut a = View::new();
        a.bump(l(0), 1);
        let mut b = View::new();
        b.bump(l(1), 1);
        // Incomparable.
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
    }
}
