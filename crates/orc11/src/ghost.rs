//! Ghost logical views: per-object event-id sets carried on messages.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A *ghost view*: a finite map from object keys to sets of event ids,
/// forming a join-semilattice under pointwise union.
///
/// This is the model-level carrier for the paper's *logical views* (§3.1):
/// the `compass` crate allocates one key per library object and interprets
/// the id sets as sets of committed library events. Ghost views are
/// transferred between threads with exactly the same rules as physical
/// views — release writes publish them on messages, acquire reads join them
/// — so `ghost(key)` at an operation's commit point is precisely the set of
/// that object's events that *happen before* the operation, i.e. the event's
/// `logview`.
///
/// ```
/// use orc11::GhostView;
/// let mut g = GhostView::new();
/// g.insert(1, 10);
/// g.insert(1, 11);
/// let mut h = GhostView::new();
/// h.insert(1, 12);
/// g.join(&h);
/// assert_eq!(g.get(1).len(), 3);
/// assert!(g.get(2).is_empty());
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct GhostView {
    map: BTreeMap<u64, BTreeSet<u64>>,
}

impl GhostView {
    /// The empty ghost view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds event `id` to the set for `key`.
    pub fn insert(&mut self, key: u64, id: u64) {
        self.map.entry(key).or_default().insert(id);
    }

    /// The event set for `key` (empty if absent).
    pub fn get(&self, key: u64) -> BTreeSet<u64> {
        self.map.get(&key).cloned().unwrap_or_default()
    }

    /// Whether `id` is in the set for `key`.
    pub fn contains(&self, key: u64, id: u64) -> bool {
        self.map.get(&key).is_some_and(|s| s.contains(&id))
    }

    /// Pointwise union with `other`.
    pub fn join(&mut self, other: &GhostView) {
        for (&k, s) in &other.map {
            self.map.entry(k).or_default().extend(s.iter().copied());
        }
    }

    /// Pointwise inclusion: `self ⊑ other`.
    pub fn leq(&self, other: &GhostView) -> bool {
        self.map
            .iter()
            .all(|(&k, s)| other.map.get(&k).is_some_and(|o| s.is_subset(o)) || s.is_empty())
    }

    /// Whether no key has any events.
    pub fn is_empty(&self) -> bool {
        self.map.values().all(|s| s.is_empty())
    }
}

impl fmt::Debug for GhostView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut g = GhostView::new();
        assert!(!g.contains(0, 1));
        g.insert(0, 1);
        assert!(g.contains(0, 1));
        assert!(!g.contains(1, 1));
    }

    #[test]
    fn join_unions_per_key() {
        let mut a = GhostView::new();
        a.insert(0, 1);
        a.insert(2, 5);
        let mut b = GhostView::new();
        b.insert(0, 2);
        a.join(&b);
        assert!(a.contains(0, 1) && a.contains(0, 2) && a.contains(2, 5));
    }

    #[test]
    fn leq_is_pointwise_subset() {
        let mut a = GhostView::new();
        a.insert(0, 1);
        let mut b = a.clone();
        b.insert(0, 2);
        b.insert(1, 9);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(GhostView::new().leq(&a));
    }

    #[test]
    fn empty_checks() {
        let g = GhostView::new();
        assert!(g.is_empty());
        let mut h = GhostView::new();
        h.insert(3, 4);
        assert!(!h.is_empty());
    }
}
