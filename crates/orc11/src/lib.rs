//! # orc11 — an operational RC11-style relaxed memory model simulator
//!
//! This crate is the substrate of the Compass reproduction: a from-scratch,
//! view-based operational semantics in the style of ORC11 / RC11
//! (Lahav et al., PLDI 2017; Dang et al., POPL 2020), the memory model the
//! Compass paper's separation logic is sound for.
//!
//! The model provides:
//!
//! * **Per-location write histories**: every write appends a *message*
//!   `(value, frontier)` to the location's history; modification order is
//!   the append order (see `DESIGN.md` for the — documented — restriction
//!   this places on `mo`).
//! * **Per-thread views** (`cur`/`acq`/`rel` frontiers): release writes
//!   publish the writer's current frontier on the message, acquire reads
//!   join the message frontier, relaxed reads stash it in `acq` until an
//!   acquire fence, relaxed writes publish the `rel`-fence snapshot.
//!   Read-modify-writes join the read message's frontier into the written
//!   message, which implements RC11 *release sequences*.
//! * **Non-atomic accesses with data-race detection**: vector clocks ride
//!   along with views; a race aborts the execution (the operational stand-in
//!   for catch-fire semantics).
//! * **Ghost logical views**: an extra join-semilattice of
//!   `object-key -> event-id set` carried on every message with exactly the
//!   same transfer rules as physical views. The `compass` crate uses this to
//!   compute each library operation's *logical view* (`G(e).logview` in the
//!   paper) at its commit point.
//! * **A controllable scheduler**: every model instruction is a scheduling
//!   point; strategies include seeded random choice and bounded-exhaustive
//!   DFS over replayable choice traces (stateless model checking), so client
//!   programs (litmus tests, the paper's MP and SPSC clients) can be explored
//!   over many executions.
//!
//! `po ∪ rf` is acyclic by construction (the semantics is an interleaving
//! semantics over existing messages), matching ORC11's exclusion of
//! load-buffering behaviours.
//!
//! ## Quick example
//!
//! ```
//! use orc11::{Config, Mode, RunOutcome, Strategy, Val, run_model};
//!
//! // Message passing: with release/acquire, reading flag == 1 implies
//! // reading data == 42.
//! let out: RunOutcome<()> = run_model(
//!     &Config::default(),
//!     orc11::random_strategy(7),
//!     |ctx| {
//!         let data = ctx.alloc("data", Val::Int(0));
//!         let flag = ctx.alloc("flag", Val::Int(0));
//!         (data, flag)
//!     },
//!     vec![
//!         Box::new(|ctx, &(data, flag)| {
//!             ctx.write(data, Val::Int(42), Mode::NonAtomic);
//!             ctx.write(flag, Val::Int(1), Mode::Release);
//!             Val::Null
//!         }),
//!         Box::new(|ctx, &(data, flag)| {
//!             ctx.read_await(flag, Mode::Acquire, |v| v == Val::Int(1));
//!             ctx.read(data, Mode::NonAtomic)
//!         }),
//!     ],
//!     |_ctx, _shared, outs| assert_eq!(outs[1], Val::Int(42)),
//! );
//! assert!(out.result.is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
pub mod dpor;
mod error;
mod exec;
mod explore;
mod frontier;
mod ghost;
pub mod json;
pub mod litmus;
mod memory;
mod mode;
mod model;
mod msg;
pub mod oplog;
mod parallel;
pub mod progress;
pub mod rate;
pub mod rng;
mod sched;
pub mod stats;
pub mod sync;
pub mod trace;
mod tview;
mod val;
mod view;
mod work;

pub use clock::VecClock;
pub use dpor::{conflicts, dpor_from_env, Access, AccessKind, StepAccess};
pub use error::{ModelError, RaceInfo};
pub use exec::{run_model, BodyFn, Config, GhostHandle, OpResult, RunOutcome, ThreadCtx};
pub use explore::{ExploreReport, Explorer, DEFAULT_MAX_ERRORS, DEFAULT_PCT_HORIZON};
pub use frontier::Frontier;
pub use ghost::GhostView;
pub use json::Json;
pub use memory::Memory;
pub use mode::{FenceMode, Mode};
pub use model::Model;
pub use msg::Msg;
pub use oplog::{render_ops, OpKindRecord, OpRecord};
pub use parallel::{default_threads, Sink};
pub use progress::ProgressLine;
pub use rate::RateMeter;
pub use sched::{
    dfs_strategy, next_dfs_prefix, pct_strategy, random_strategy, replay_strategy, Choice,
    ChoiceKind, DfsStrategy, PctStrategy, RandomStrategy, Strategy,
};
pub use stats::{workers_to_json, Coverage, DporStats, ExecStats, StepHistogram, WorkerStats};
pub use trace::{Phase, PhaseNs};
pub use tview::ThreadView;
pub use val::{Loc, ThreadId, Val};
pub use view::{Timestamp, View};
pub use work::{StrategyDesc, WorkSource, WorkSpec};
