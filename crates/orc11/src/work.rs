//! Work enumeration shared by the serial and parallel exploration
//! drivers.
//!
//! A [`WorkSpec`] describes a whole exploration (a seed range, or a DFS
//! budget); a [`WorkSource`] turns it into a stream of
//! [`StrategyDesc`]s — self-contained strategy descriptors — that any
//! number of workers can claim concurrently. Serial exploration is just
//! the one-worker special case, so there is exactly one enumeration to
//! get right.
//!
//! For random/PCT the source hands out chunks of a seed range. For DFS
//! it maintains a shared LIFO *frontier* of forced choice prefixes:
//! completing an execution pushes the unexplored sibling prefixes of
//! every fresh node on its path (deepest on top), which is the standard
//! iterative formulation of depth-first search. Claimed single-threaded,
//! the frontier visits prefixes in exactly the order the recursive
//! backtracking driver ([`crate::next_dfs_prefix`]) does; claimed from
//! many threads it visits the same *set*, which is why exhaustive
//! parallel reports can be byte-identical to serial ones.

use crate::dpor::{analyze, dpor_from_env, DporState, StepAccess};
use crate::sched::{dfs_strategy, pct_strategy, random_strategy, Choice, Strategy};
use crate::stats::{DporStats, WorkerStats};
use crate::sync::{Condvar, Mutex};
use crate::trace::{gauge_frontier_depth, gauge_sleep_hits, span, Phase};
use std::fmt;
use std::time::Instant;

/// How many random/PCT seeds a worker claims per lock acquisition.
const SEED_CHUNK: u64 = 16;

/// A self-contained descriptor of one execution's strategy.
///
/// The descriptor doubles as the execution's *identity*: its derived
/// ordering (seed order for random/PCT, lexicographic prefix order for
/// DFS) is exactly the order a serial exploration visits executions in,
/// so sorting by descriptor reconstructs the serial order from any
/// concurrent interleaving.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StrategyDesc {
    /// Seeded uniform-random execution.
    Random {
        /// The seed.
        seed: u64,
    },
    /// PCT execution (priority scheduling with change points).
    Pct {
        /// The seed.
        seed: u64,
        /// Number of priority-change points.
        depth: usize,
        /// Scheduling-decision horizon the change points are drawn from.
        horizon: u64,
    },
    /// DFS execution: the forced choice prefix identifies the path
    /// (beyond it the strategy always picks alternative 0).
    Dfs {
        /// The forced choice prefix.
        prefix: Vec<u32>,
    },
}

impl StrategyDesc {
    /// Instantiates the strategy this descriptor describes; running the
    /// same [`crate::Model`] under it reproduces the execution exactly.
    pub fn strategy(&self) -> Box<dyn Strategy> {
        match self {
            StrategyDesc::Random { seed } => random_strategy(*seed),
            StrategyDesc::Pct {
                seed,
                depth,
                horizon,
            } => pct_strategy(*seed, *depth, *horizon),
            StrategyDesc::Dfs { prefix } => dfs_strategy(prefix.clone()),
        }
    }
}

impl fmt::Display for StrategyDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyDesc::Random { seed } => write!(f, "random seed {seed}"),
            StrategyDesc::Pct { seed, depth, .. } => write!(f, "pct seed {seed} depth {depth}"),
            StrategyDesc::Dfs { prefix } => write!(f, "dfs prefix {prefix:?}"),
        }
    }
}

/// A whole exploration, described declaratively.
#[derive(Clone, Debug)]
pub enum WorkSpec {
    /// `iters` seeded uniform-random executions starting at `seed0`.
    Random {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
    },
    /// `iters` PCT executions with `depth` change points over `horizon`
    /// scheduling decisions.
    Pct {
        /// Number of executions.
        iters: u64,
        /// First seed.
        seed0: u64,
        /// Number of priority-change points.
        depth: usize,
        /// Scheduling-decision horizon.
        horizon: u64,
    },
    /// Bounded-exhaustive DFS with an execution budget.
    Dfs {
        /// Maximum executions before giving up on exhausting the tree.
        budget: u64,
    },
    /// Bounded-exhaustive DFS pruned by dynamic partial-order reduction
    /// (see [`crate::dpor`]): visits a sound subset of [`WorkSpec::Dfs`]'s
    /// executions covering the same set of distinct behaviours.
    DfsDpor {
        /// Maximum executions before giving up on exhausting the tree.
        budget: u64,
    },
}

impl WorkSpec {
    /// Bounded-exhaustive DFS with an execution budget, with DPOR pruning
    /// switched by the `COMPASS_DPOR` environment variable (set and not
    /// `0` → [`WorkSpec::DfsDpor`]). This is the constructor the generic
    /// entry points ([`crate::Explorer::dfs`], `Litmus::dfs`, the
    /// checker's `Exploration::Dfs`) use, so one env var flips a whole
    /// test suite; build the variants directly to force one behaviour.
    pub fn dfs(budget: u64) -> Self {
        WorkSpec::Dfs { budget }.with_dpor(dpor_from_env())
    }

    /// Switches DPOR pruning on or off (no-op for seed-based specs).
    #[must_use]
    pub fn with_dpor(self, on: bool) -> Self {
        match (self, on) {
            (WorkSpec::Dfs { budget }, true) => WorkSpec::DfsDpor { budget },
            (WorkSpec::DfsDpor { budget }, false) => WorkSpec::Dfs { budget },
            (spec, _) => spec,
        }
    }

    /// Upper bound on the number of executions this spec will perform
    /// (used for progress reporting).
    pub fn total(&self) -> u64 {
        match *self {
            WorkSpec::Random { iters, .. } | WorkSpec::Pct { iters, .. } => iters,
            WorkSpec::Dfs { budget } | WorkSpec::DfsDpor { budget } => budget,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SeedKind {
    Random,
    Pct { depth: usize, horizon: u64 },
}

impl SeedKind {
    fn desc(self, seed: u64) -> StrategyDesc {
        match self {
            SeedKind::Random => StrategyDesc::Random { seed },
            SeedKind::Pct { depth, horizon } => StrategyDesc::Pct {
                seed,
                depth,
                horizon,
            },
        }
    }
}

/// A frontier entry: the forced choice prefix plus which worker pushed
/// it, so a claim by a *different* worker counts as a steal in the
/// load-balance stats. The producer is bookkeeping only — it never
/// influences which prefixes are visited.
#[derive(Debug)]
struct Prefix {
    choices: Vec<u32>,
    producer: usize,
}

/// Producer tag of the root prefix (claimed by whoever gets there
/// first; not a steal).
const NO_PRODUCER: usize = usize::MAX;

#[derive(Debug)]
enum State {
    Seeds {
        kind: SeedKind,
        next: u64,
        end: u64,
    },
    Dfs {
        /// LIFO stack of unexplored forced prefixes (top = deepest).
        frontier: Vec<Prefix>,
        /// Executions issued so far (claims, not completions).
        issued: u64,
        budget: u64,
        /// Workers currently running a claimed DFS execution — they may
        /// still push new prefixes, so an empty frontier with `active >
        /// 0` means "wait", not "done".
        active: usize,
        /// `Some` when DPOR pruning is on: the shared sleep sets and
        /// pruning counters (see [`crate::dpor`]).
        dpor: Option<DporState>,
    },
}

/// Everything behind the source's one lock: the work enumeration plus
/// the per-worker load-balance counters (indexed by worker; grown
/// lazily on first claim).
#[derive(Debug)]
struct Shared {
    work: State,
    workers: Vec<WorkerStats>,
}

/// A concurrent source of [`StrategyDesc`]s for one exploration.
///
/// Workers repeatedly [`claim`](WorkSource::claim) a batch, run each
/// descriptor, and [`complete`](WorkSource::complete) it with the
/// recorded trace (which, for DFS, feeds the frontier). All coordination
/// is internal; the source is shared by reference between threads.
///
/// Both calls take the caller's worker index (serial exploration passes
/// 0) purely for the per-worker [`WorkerStats`]; the index never
/// influences what work is handed out.
#[derive(Debug)]
pub struct WorkSource {
    state: Mutex<Shared>,
    available: Condvar,
    /// Whether the spec uses DPOR — immutable, so workers can run the
    /// O(trace²) race analysis of [`WorkSource::complete`] outside the
    /// lock.
    dpor: bool,
}

impl WorkSource {
    /// Creates a source covering the whole of `spec`.
    pub fn new(spec: &WorkSpec) -> Self {
        let state = match *spec {
            WorkSpec::Random { iters, seed0 } => State::Seeds {
                kind: SeedKind::Random,
                next: seed0,
                end: seed0.saturating_add(iters),
            },
            WorkSpec::Pct {
                iters,
                seed0,
                depth,
                horizon,
            } => State::Seeds {
                kind: SeedKind::Pct { depth, horizon },
                next: seed0,
                end: seed0.saturating_add(iters),
            },
            WorkSpec::Dfs { budget } => State::Dfs {
                frontier: vec![Prefix {
                    choices: Vec::new(),
                    producer: NO_PRODUCER,
                }],
                issued: 0,
                budget,
                active: 0,
                dpor: None,
            },
            WorkSpec::DfsDpor { budget } => State::Dfs {
                frontier: vec![Prefix {
                    choices: Vec::new(),
                    producer: NO_PRODUCER,
                }],
                issued: 0,
                budget,
                active: 0,
                dpor: Some(DporState::default()),
            },
        };
        WorkSource {
            state: Mutex::new(Shared {
                work: state,
                workers: Vec::new(),
            }),
            available: Condvar::new(),
            dpor: matches!(spec, WorkSpec::DfsDpor { .. }),
        }
    }

    /// Claims the next batch of work, or `None` when the exploration is
    /// over (budget reached, or nothing left and no worker can produce
    /// more). Blocks when the DFS frontier is momentarily empty but
    /// other workers are still running.
    pub fn claim(&self, worker: usize) -> Option<Vec<StrategyDesc>> {
        let mut st = self.state.lock();
        if st.workers.len() <= worker {
            st.workers.resize(worker + 1, WorkerStats::default());
        }
        loop {
            let Shared { work, workers } = &mut *st;
            match work {
                State::Seeds { kind, next, end } => {
                    if *next >= *end {
                        return None;
                    }
                    let n = SEED_CHUNK.min(*end - *next);
                    let batch = (*next..*next + n).map(|seed| kind.desc(seed)).collect();
                    *next += n;
                    workers[worker].executed += n;
                    return Some(batch);
                }
                State::Dfs {
                    frontier,
                    issued,
                    budget,
                    active,
                    ..
                } => {
                    if *issued >= *budget {
                        return None;
                    }
                    if let Some(prefix) = frontier.pop() {
                        *issued += 1;
                        *active += 1;
                        workers[worker].executed += 1;
                        if prefix.producer != NO_PRODUCER && prefix.producer != worker {
                            workers[worker].stolen += 1;
                        }
                        gauge_frontier_depth(frontier.len() as u64);
                        return Some(vec![StrategyDesc::Dfs {
                            prefix: prefix.choices,
                        }]);
                    }
                    if *active == 0 {
                        return None;
                    }
                    workers[worker].idle_waits += 1;
                }
            }
            let t0 = Instant::now();
            self.available.wait(&mut st);
            st.workers[worker].idle_wait_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Reports a claimed execution's recorded trace (and access
    /// summaries) back to the source.
    ///
    /// For plain DFS this performs the *sibling expansion*: for every
    /// decision on the path past the forced prefix (where the strategy
    /// defaulted to alternative 0), the unexplored alternatives are
    /// pushed as new forced prefixes — deepest decision on top, smallest
    /// alternative first, which is exactly recursive DFS order when there
    /// is a single worker. Every leaf's canonical prefix is pushed
    /// exactly once, so the visited set does not depend on worker count.
    ///
    /// Under DPOR ([`WorkSpec::DfsDpor`]) thread-choice siblings are
    /// instead pushed on demand, when a conflict between the execution's
    /// instructions requires the reversal (see
    /// [`crate::dpor`]); `accesses` must then be the execution's
    /// [`crate::RunOutcome::accesses`].
    pub fn complete(
        &self,
        worker: usize,
        desc: &StrategyDesc,
        trace: &[Choice],
        accesses: &[StepAccess],
    ) {
        let StrategyDesc::Dfs { prefix } = desc else {
            return;
        };
        // The race analysis is O(trace² · threads) and pure, so run it
        // before taking the lock: workers analyse their own executions
        // concurrently and only serialize to apply the demands.
        let analysis = self.dpor.then(|| {
            let _span = span(Phase::Dpor, "dpor-analyze");
            analyze(trace, accesses)
        });
        let mut st = self.state.lock();
        if let State::Dfs {
            frontier,
            active,
            dpor,
            ..
        } = &mut st.work
        {
            match (dpor, &analysis) {
                (Some(dpor), Some(analysis)) => {
                    // on_complete speaks plain prefixes; tag the fresh
                    // ones with this worker for steal accounting (push
                    // order is preserved, so visit order is unchanged).
                    let mut fresh: Vec<Vec<u32>> = Vec::new();
                    dpor.on_complete(prefix.len(), trace, analysis, &mut fresh);
                    frontier.extend(fresh.into_iter().map(|choices| Prefix {
                        choices,
                        producer: worker,
                    }));
                    gauge_sleep_hits(dpor.stats.sleep_hits);
                }
                _ => {
                    for d in prefix.len()..trace.len() {
                        let c = trace[d];
                        for a in (c.chosen + 1..c.arity).rev() {
                            let mut p: Vec<u32> = trace[..d].iter().map(|c| c.chosen).collect();
                            p.push(a);
                            frontier.push(Prefix {
                                choices: p,
                                producer: worker,
                            });
                        }
                    }
                }
            }
            gauge_frontier_depth(frontier.len() as u64);
            *active -= 1;
            self.available.notify_all();
        }
    }

    /// Arms a panic-safety guard for the execution about to run: if the
    /// model or a sink panics before [`WorkSource::complete`] runs, the
    /// guard's drop releases the worker's `active` slot so sibling
    /// workers blocked in [`WorkSource::claim`] wake up and drain
    /// instead of deadlocking under the panic.
    pub fn guard(&self) -> ActiveGuard<'_> {
        ActiveGuard {
            source: self,
            armed: true,
        }
    }

    /// Whether the DFS tree was fully enumerated (always `false` for
    /// seed-based specs). Meaningful once all workers have returned.
    pub fn exhausted(&self) -> bool {
        match &self.state.lock().work {
            State::Seeds { .. } => false,
            State::Dfs {
                frontier, active, ..
            } => frontier.is_empty() && *active == 0,
        }
    }

    /// Whether the DFS execution budget cut the enumeration short —
    /// i.e. the budget was consumed while unexplored prefixes remained.
    /// Always `false` for seed-based specs (they enumerate a fixed seed
    /// range). Meaningful once all workers have returned.
    ///
    /// A truncated DFS visits a worker-schedule-dependent subset of the
    /// tree, so reports from truncated runs are *not* comparable across
    /// thread counts; consumers must check this flag (reported as
    /// `truncated` in [`crate::ExploreReport`]).
    pub fn truncated(&self) -> bool {
        match &self.state.lock().work {
            State::Seeds { .. } => false,
            State::Dfs {
                frontier,
                issued,
                budget,
                active,
                ..
            } => *issued >= *budget && !(frontier.is_empty() && *active == 0),
        }
    }

    /// The DPOR pruning counters, or `None` when the spec does not use
    /// DPOR. Deterministic across worker counts once all workers have
    /// returned (see [`crate::dpor`]).
    pub fn dpor_stats(&self) -> Option<DporStats> {
        match &self.state.lock().work {
            State::Seeds { .. } => None,
            State::Dfs { dpor, .. } => dpor.as_ref().map(|d| d.stats),
        }
    }

    /// The per-worker load-balance counters, indexed by worker (workers
    /// that never claimed are absent from the tail). Scheduling-
    /// dependent — see [`WorkerStats`].
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.state.lock().workers.clone()
    }

    fn release(&self) {
        let mut st = self.state.lock();
        if let State::Dfs { active, .. } = &mut st.work {
            *active -= 1;
            self.available.notify_all();
        }
    }
}

/// See [`WorkSource::guard`].
#[derive(Debug)]
pub struct ActiveGuard<'a> {
    source: &'a WorkSource,
    armed: bool,
}

impl ActiveGuard<'_> {
    /// Disarms the guard; call after [`WorkSource::complete`] has run.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.source.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{next_dfs_prefix, ChoiceKind, DfsStrategy};

    /// A fixed 2×3 decision tree.
    fn run_tree(prefix: Vec<u32>) -> Vec<Choice> {
        let mut s = DfsStrategy::new(prefix);
        let a = s.choose(ChoiceKind::Thread, 2) as u32;
        let b = s.choose(ChoiceKind::Read, 3) as u32;
        vec![
            Choice {
                kind: ChoiceKind::Thread,
                chosen: a,
                arity: 2,
            },
            Choice {
                kind: ChoiceKind::Read,
                chosen: b,
                arity: 3,
            },
        ]
    }

    #[test]
    fn single_worker_frontier_matches_recursive_dfs_order() {
        // Enumerate the reference order with next_dfs_prefix.
        let mut reference = Vec::new();
        let mut prefix = Vec::new();
        loop {
            let trace = run_tree(prefix.clone());
            reference.push((trace[0].chosen, trace[1].chosen));
            match next_dfs_prefix(&trace) {
                Some(p) => prefix = p,
                None => break,
            }
        }
        assert_eq!(
            reference,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );

        // The frontier, drained by one worker, visits the same order.
        let source = WorkSource::new(&WorkSpec::Dfs { budget: 100 });
        let mut visited = Vec::new();
        while let Some(batch) = source.claim(0) {
            for desc in batch {
                let StrategyDesc::Dfs { prefix } = &desc else {
                    unreachable!()
                };
                let trace = run_tree(prefix.clone());
                visited.push((trace[0].chosen, trace[1].chosen));
                source.complete(0, &desc, &trace, &[]);
            }
        }
        assert_eq!(visited, reference);
        assert!(source.exhausted());
        // One worker claimed everything; nothing is a steal.
        let workers = source.worker_stats();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].executed, reference.len() as u64);
        assert_eq!(workers[0].stolen, 0);
        assert_eq!(workers[0].idle_waits, 0);
    }

    #[test]
    fn dfs_budget_truncates_and_is_not_exhausted() {
        let source = WorkSource::new(&WorkSpec::Dfs { budget: 3 });
        let mut n = 0;
        while let Some(batch) = source.claim(0) {
            for desc in batch {
                let StrategyDesc::Dfs { prefix } = &desc else {
                    unreachable!()
                };
                let trace = run_tree(prefix.clone());
                n += 1;
                source.complete(0, &desc, &trace, &[]);
            }
        }
        assert_eq!(n, 3);
        assert!(!source.exhausted(), "budget cut the tree short");
    }

    #[test]
    fn seed_source_covers_the_range_in_chunks() {
        let source = WorkSource::new(&WorkSpec::Random {
            iters: 40,
            seed0: 5,
        });
        let mut seeds = Vec::new();
        while let Some(batch) = source.claim(0) {
            assert!(batch.len() as u64 <= SEED_CHUNK);
            for desc in batch {
                match desc {
                    StrategyDesc::Random { seed } => seeds.push(seed),
                    other => panic!("unexpected desc {other:?}"),
                }
            }
        }
        assert_eq!(seeds, (5..45).collect::<Vec<_>>());
        assert!(!source.exhausted());
    }

    #[test]
    fn descriptor_order_is_the_serial_visit_order() {
        // Seeds order by seed; DFS prefixes order lexicographically,
        // which is the order the frontier test above visits them in.
        assert!(StrategyDesc::Random { seed: 1 } < StrategyDesc::Random { seed: 2 });
        let d = |p: &[u32]| StrategyDesc::Dfs { prefix: p.to_vec() };
        assert!(d(&[]) < d(&[0, 1]));
        assert!(d(&[0, 1]) < d(&[0, 2]));
        assert!(d(&[0, 2]) < d(&[1]));
        assert!(d(&[1]) < d(&[1, 1]));
    }
}
