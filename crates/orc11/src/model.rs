//! The [`Model`] trait: a re-runnable program under test.
//!
//! Exploration drivers ([`crate::Explorer`], the `compass` checker) need
//! one thing from the checked program: *run it once under this strategy
//! and give me the outcome*. Historically every driver took its own
//! `FnMut` closure for this, which (a) duplicated the bound at every
//! call site and (b) blocked parallel exploration, because a `FnMut`
//! cannot be shared across worker threads.
//!
//! [`Model`] names the contract once. It is `Send + Sync` by
//! construction — a model is immutable between runs; all run-to-run
//! nondeterminism lives in the [`Strategy`] — so the same model value can
//! be driven from N worker threads at once. Plain closures still work
//! through the blanket impl: any `Fn(Box<dyn Strategy>) -> RunOutcome<R>
//! + Send + Sync` closure *is* a model.

use crate::exec::RunOutcome;
use crate::sched::Strategy;

/// A program checkable by exploration: a deterministic function from a
/// scheduling [`Strategy`] to a [`RunOutcome`].
///
/// Determinism is the load-bearing requirement: two runs under
/// strategies that answer identically must produce identical outcomes
/// (same trace, same steps, same result). That is what makes recorded
/// choice traces replayable and DFS enumeration meaningful.
pub trait Model: Send + Sync {
    /// The per-execution result value (a graph, an outcome tuple, ...).
    type Out;

    /// Runs the program once, delegating every nondeterministic decision
    /// to `strategy`.
    fn run(&self, strategy: Box<dyn Strategy>) -> RunOutcome<Self::Out>;
}

impl<R, F> Model for F
where
    F: Fn(Box<dyn Strategy>) -> RunOutcome<R> + Send + Sync,
{
    type Out = R;

    fn run(&self, strategy: Box<dyn Strategy>) -> RunOutcome<R> {
        self(strategy)
    }
}
