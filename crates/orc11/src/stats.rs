//! Execution telemetry: cheap per-execution counters and
//! exploration-level coverage tracking.
//!
//! Every model execution maintains an [`ExecStats`] — plain integer
//! counters bumped inside the instruction turnstile (no allocation, no
//! branching beyond the bump) — returned in
//! [`crate::RunOutcome::stats`]. Exploration drivers aggregate them,
//! bucket steps-per-execution into a [`StepHistogram`], and track
//! *schedule coverage* (distinct choice traces seen, DFS decision-tree
//! nodes visited) in a [`Coverage`]; all of it surfaces in
//! [`crate::ExploreReport`].
//!
//! The counters are always on: an execution costs thousands of mutex
//! round-trips per instruction, so a handful of integer increments is
//! far below measurement noise.

use std::collections::HashSet;
use std::fmt;

use crate::json::Json;
use crate::mode::{FenceMode, Mode};
use crate::sched::Choice;

/// Counters keyed by access [`Mode`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ModeCounter {
    /// Non-atomic accesses.
    pub na: u64,
    /// Relaxed accesses.
    pub rlx: u64,
    /// Release accesses.
    pub rel: u64,
    /// Acquire accesses.
    pub acq: u64,
    /// Acquire-release accesses (RMWs).
    pub acq_rel: u64,
}

impl ModeCounter {
    /// Increments the counter for `mode`.
    pub fn bump(&mut self, mode: Mode) {
        match mode {
            Mode::NonAtomic => self.na += 1,
            Mode::Relaxed => self.rlx += 1,
            Mode::Release => self.rel += 1,
            Mode::Acquire => self.acq += 1,
            Mode::AcqRel => self.acq_rel += 1,
        }
    }

    /// Sum over all modes.
    pub fn total(&self) -> u64 {
        self.na + self.rlx + self.rel + self.acq + self.acq_rel
    }

    /// `(mode-name, count)` pairs in a fixed order (for rendering and
    /// JSON emission).
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("na", self.na),
            ("rlx", self.rlx),
            ("rel", self.rel),
            ("acq", self.acq),
            ("acq_rel", self.acq_rel),
        ]
    }

    /// Machine-readable form: one key per mode.
    pub fn to_json(&self) -> Json {
        self.entries()
            .iter()
            .fold(Json::obj(), |j, &(k, v)| j.set(k, v))
    }

    fn merge(&mut self, other: &ModeCounter) {
        self.na += other.na;
        self.rlx += other.rlx;
        self.rel += other.rel;
        self.acq += other.acq;
        self.acq_rel += other.acq_rel;
    }
}

/// Counters keyed by [`FenceMode`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FenceCounter {
    /// Acquire fences.
    pub acq: u64,
    /// Release fences.
    pub rel: u64,
    /// Acquire-release fences.
    pub acq_rel: u64,
    /// Sequentially consistent fences.
    pub sc: u64,
}

impl FenceCounter {
    /// Increments the counter for `mode`.
    pub fn bump(&mut self, mode: FenceMode) {
        match mode {
            FenceMode::Acquire => self.acq += 1,
            FenceMode::Release => self.rel += 1,
            FenceMode::AcqRel => self.acq_rel += 1,
            FenceMode::SeqCst => self.sc += 1,
        }
    }

    /// Sum over all fence modes.
    pub fn total(&self) -> u64 {
        self.acq + self.rel + self.acq_rel + self.sc
    }

    /// `(mode-name, count)` pairs in a fixed order.
    pub fn entries(&self) -> [(&'static str, u64); 4] {
        [
            ("acq", self.acq),
            ("rel", self.rel),
            ("acq_rel", self.acq_rel),
            ("sc", self.sc),
        ]
    }

    /// Machine-readable form: one key per fence mode.
    pub fn to_json(&self) -> Json {
        self.entries()
            .iter()
            .fold(Json::obj(), |j, &(k, v)| j.set(k, v))
    }

    fn merge(&mut self, other: &FenceCounter) {
        self.acq += other.acq;
        self.rel += other.rel;
        self.acq_rel += other.acq_rel;
        self.sc += other.sc;
    }
}

/// Per-execution instruction counters.
///
/// In a single [`crate::RunOutcome`] this describes one execution; in an
/// [`crate::ExploreReport`] it is the sum over all executions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Reads, by mode (awaited reads included).
    pub reads: ModeCounter,
    /// Writes, by mode.
    pub writes: ModeCounter,
    /// Read-modify-writes, by success mode (failed RMWs included).
    pub rmws: ModeCounter,
    /// RMWs whose compute declined to write (failed CAS).
    pub failed_cas: u64,
    /// Reads that went through a `read_await` block.
    pub awaited_reads: u64,
    /// Fences, by mode.
    pub fences: FenceCounter,
    /// Locations allocated.
    pub allocs: u64,
    /// Data races detected (0 or 1 per execution — a race aborts).
    pub races: u64,
    /// Model instructions executed.
    pub steps: u64,
}

impl ExecStats {
    /// Total memory accesses (reads + writes + RMWs, fences excluded).
    pub fn accesses(&self) -> u64 {
        self.reads.total() + self.writes.total() + self.rmws.total()
    }

    /// Machine-readable form (see `EXPERIMENTS.md`, "Observability &
    /// replay", for the schema).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("reads", self.reads.to_json())
            .set("writes", self.writes.to_json())
            .set("rmws", self.rmws.to_json())
            .set("failed_cas", self.failed_cas)
            .set("awaited_reads", self.awaited_reads)
            .set("fences", self.fences.to_json())
            .set("allocs", self.allocs)
            .set("races", self.races)
            .set("steps", self.steps)
    }

    /// Adds `other` into `self` (aggregation across executions).
    pub fn merge(&mut self, other: &ExecStats) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.rmws.merge(&other.rmws);
        self.failed_cas += other.failed_cas;
        self.awaited_reads += other.awaited_reads;
        self.fences.merge(&other.fences);
        self.allocs += other.allocs;
        self.races += other.races;
        self.steps += other.steps;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads ({} awaited), {} writes, {} rmws ({} failed cas), {} fences, {} allocs, {} races, {} steps",
            self.reads.total(),
            self.awaited_reads,
            self.writes.total(),
            self.rmws.total(),
            self.failed_cas,
            self.fences.total(),
            self.allocs,
            self.races,
            self.steps,
        )
    }
}

/// A power-of-two-bucketed histogram of steps per execution.
///
/// Bucket `i` counts executions with `steps` in `[2^i, 2^(i+1))`
/// (bucket 0 additionally holds zero-step executions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepHistogram {
    buckets: [u64; 64],
    count: u64,
    total: u64,
    max: u64,
}

impl Default for StepHistogram {
    fn default() -> Self {
        StepHistogram {
            buckets: [0; 64],
            count: 0,
            total: 0,
            max: 0,
        }
    }
}

impl StepHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StepHistogram::default()
    }

    /// Bucket index for a step count.
    fn index(steps: u64) -> usize {
        if steps <= 1 {
            0
        } else {
            63 - steps.leading_zeros() as usize
        }
    }

    /// Records one execution's step count.
    pub fn record(&mut self, steps: u64) {
        self.buckets[Self::index(steps)] += 1;
        self.count += 1;
        self.total += steps;
        self.max = self.max.max(steps);
    }

    /// Number of recorded executions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean steps per execution (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Maximum recorded step count.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets as `(lo, hi_inclusive, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i == 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (lo, hi, c)
            })
            .collect()
    }

    /// Machine-readable form: summary plus the non-empty buckets.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("mean", self.mean())
            .set("max", self.max)
            .set(
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, hi, c)| Json::obj().set("lo", lo).set("hi", hi).set("count", c))
                        .collect(),
                ),
            )
    }

    /// Adds `other`'s recordings into `self`.
    pub fn merge(&mut self, other: &StepHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for StepHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "steps/exec: (no executions)");
        }
        write!(f, "steps/exec: mean {:.1}, max {}:", self.mean(), self.max)?;
        for (lo, hi, c) in self.nonzero_buckets() {
            write!(f, " [{lo}-{hi}]:{c}")?;
        }
        Ok(())
    }
}

/// Pruning counters of a DPOR-enabled DFS exploration (see
/// [`crate::dpor`]).
///
/// Like the rest of an exploration report these are a deterministic
/// function of the work specification: the explored tree is the least
/// fixpoint of the backtrack demands, every execution's demands are a
/// pure function of that execution alone, and each counter below is a
/// function of the fixpoint — so the numbers are byte-identical at any
/// worker count.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DporStats {
    /// Backtrack points added: sibling prefixes pushed onto the DFS
    /// frontier because a conflict demanded the reversal.
    pub backtrack_points: u64,
    /// Sleep-set hits: demanded reversals that were already explored (or
    /// already scheduled), so no new work was pushed.
    pub sleep_hits: u64,
    /// Subtrees skipped: thread-choice siblings plain DFS would have
    /// enumerated that no conflict ever demanded.
    pub pruned_subtrees: u64,
}

impl DporStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &DporStats) {
        self.backtrack_points += other.backtrack_points;
        self.sleep_hits += other.sleep_hits;
        self.pruned_subtrees += other.pruned_subtrees;
    }

    /// Machine-readable form (see `EXPERIMENTS.md`, "Partial-order
    /// reduction", for the schema).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("backtrack_points", self.backtrack_points)
            .set("sleep_hits", self.sleep_hits)
            .set("pruned_subtrees", self.pruned_subtrees)
    }
}

impl fmt::Display for DporStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} backtrack points, {} sleep-set hits, {} subtrees pruned",
            self.backtrack_points, self.sleep_hits, self.pruned_subtrees
        )
    }
}

/// Per-worker load-balance counters collected by the work-stealing
/// [`crate::WorkSource`].
///
/// Worker stats are a property of one particular run's scheduling — how
/// the OS happened to interleave the workers — so unlike the rest of an
/// exploration report they are *not* deterministic across thread counts
/// and are kept out of `ExploreReport::to_json`; metrics emit them
/// through [`workers_to_json`] (sorted by worker index).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Executions this worker claimed and ran.
    pub executed: u64,
    /// Claimed DFS prefixes produced by a *different* worker (true
    /// steals; seed-chunk claims and own-produced prefixes don't count).
    pub stolen: u64,
    /// Times this worker blocked on an empty frontier while work was
    /// still in flight.
    pub idle_waits: u64,
    /// Total nanoseconds spent blocked in those waits.
    pub idle_wait_ns: u64,
}

impl WorkerStats {
    /// Adds `other` into `self` (aggregating the same worker index
    /// across explorations).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.executed += other.executed;
        self.stolen += other.stolen;
        self.idle_waits += other.idle_waits;
        self.idle_wait_ns += other.idle_wait_ns;
    }

    /// Machine-readable form (without the worker index; see
    /// [`workers_to_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("executed", self.executed)
            .set("stolen", self.stolen)
            .set("idle_waits", self.idle_waits)
            .set("idle_wait_ns", self.idle_wait_ns)
    }
}

impl fmt::Display for WorkerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executed, {} stolen, {} idle waits ({:.1}ms)",
            self.executed,
            self.stolen,
            self.idle_waits,
            self.idle_wait_ns as f64 / 1e6
        )
    }
}

/// Renders a worker-stats slice as a JSON array sorted by worker index
/// (the slice is already index-ordered — index `i` is worker `i`).
pub fn workers_to_json(workers: &[WorkerStats]) -> Json {
    Json::Arr(
        workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Json::obj()
                    .set("worker", i)
                    .set("executed", w.executed)
                    .set("stolen", w.stolen)
                    .set("idle_waits", w.idle_waits)
                    .set("idle_wait_ns", w.idle_wait_ns)
            })
            .collect(),
    )
}

/// Schedule-coverage tracking: how much of the interleaving space an
/// exploration actually visited.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    seen: HashSet<u64>,
    /// Decision-tree nodes visited (DFS exploration only; 0 otherwise).
    pub dfs_nodes: u64,
}

impl Coverage {
    /// Creates empty coverage.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Records an execution's choice trace; returns `true` if this exact
    /// trace had not been seen before.
    ///
    /// Traces are tracked as 64-bit FNV-1a hashes — a collision
    /// undercounts coverage by one but costs no memory per trace.
    pub fn record_trace(&mut self, trace: &[Choice]) -> bool {
        self.seen.insert(hash_trace(trace))
    }

    /// Number of distinct choice traces observed.
    pub fn distinct_traces(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Accounts the decision-tree nodes newly visited by one DFS
    /// execution: an execution claimed at canonical prefix length
    /// `prefix_len` shares its first `prefix_len - 1` nodes with the
    /// execution that spawned the prefix, and visits the rest of its
    /// `trace_len` nodes for the first time.
    ///
    /// This is the single home of the accounting both `orc11`'s explorer
    /// and `compass`' checker report, so the two cannot drift.
    pub fn record_dfs_execution(&mut self, prefix_len: usize, trace_len: usize) {
        let shared = prefix_len.saturating_sub(1).min(trace_len);
        self.dfs_nodes += (trace_len - shared) as u64;
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Coverage) {
        self.seen.extend(other.seen.iter().copied());
        self.dfs_nodes += other.dfs_nodes;
    }
}

/// FNV-1a over the (kind, chosen, arity) stream of a choice trace.
fn hash_trace(trace: &[Choice]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for c in trace {
        eat(match c.kind {
            crate::sched::ChoiceKind::Thread => 1,
            crate::sched::ChoiceKind::Read => 2,
        });
        eat(c.chosen as u64);
        eat(c.arity as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ChoiceKind;

    fn choice(kind: ChoiceKind, chosen: u32, arity: u32) -> Choice {
        Choice {
            kind,
            chosen,
            arity,
        }
    }

    #[test]
    fn mode_counter_counts_each_mode() {
        let mut c = ModeCounter::default();
        for m in [
            Mode::NonAtomic,
            Mode::Relaxed,
            Mode::Relaxed,
            Mode::Release,
            Mode::Acquire,
            Mode::AcqRel,
        ] {
            c.bump(m);
        }
        assert_eq!(c.na, 1);
        assert_eq!(c.rlx, 2);
        assert_eq!(c.rel, 1);
        assert_eq!(c.acq, 1);
        assert_eq!(c.acq_rel, 1);
        assert_eq!(c.total(), 6);
        assert_eq!(c.entries()[1], ("rlx", 2));
    }

    #[test]
    fn fence_counter_counts_each_mode() {
        let mut c = FenceCounter::default();
        for m in [
            FenceMode::Acquire,
            FenceMode::Release,
            FenceMode::AcqRel,
            FenceMode::SeqCst,
            FenceMode::SeqCst,
        ] {
            c.bump(m);
        }
        assert_eq!((c.acq, c.rel, c.acq_rel, c.sc), (1, 1, 1, 2));
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn exec_stats_merge_adds_fields() {
        let mut a = ExecStats::default();
        a.reads.bump(Mode::Acquire);
        a.failed_cas = 2;
        a.steps = 10;
        let mut b = ExecStats::default();
        b.reads.bump(Mode::Acquire);
        b.writes.bump(Mode::Release);
        b.races = 1;
        b.steps = 5;
        a.merge(&b);
        assert_eq!(a.reads.acq, 2);
        assert_eq!(a.writes.rel, 1);
        assert_eq!(a.failed_cas, 2);
        assert_eq!(a.races, 1);
        assert_eq!(a.steps, 15);
        assert_eq!(a.accesses(), 3);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = StepHistogram::new();
        for s in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(s);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        let buckets = h.nonzero_buckets();
        // 0,1 -> [0,1]; 2,3 -> [2,3]; 4,7 -> [4,7]; 8 -> [8,15]; 1000 -> [512,1023]
        assert_eq!(
            buckets,
            vec![(0, 1, 2), (2, 3, 2), (4, 7, 2), (8, 15, 1), (512, 1023, 1)]
        );
        let mut h2 = StepHistogram::new();
        h2.record(2);
        h.merge(&h2);
        assert_eq!(h.count(), 9);
        assert_eq!(h.nonzero_buckets()[1], (2, 3, 3));
    }

    #[test]
    fn stats_json_has_the_documented_keys() {
        let mut s = ExecStats::default();
        s.reads.bump(Mode::Acquire);
        s.steps = 3;
        let j = s.to_json();
        for key in [
            "reads",
            "writes",
            "rmws",
            "failed_cas",
            "awaited_reads",
            "fences",
            "allocs",
            "races",
            "steps",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            j.get("reads").and_then(|r| r.get("acq")),
            Some(&Json::Int(1))
        );
        assert_eq!(j.get("steps"), Some(&Json::Int(3)));

        let mut h = StepHistogram::new();
        h.record(5);
        let hj = h.to_json();
        assert_eq!(hj.get("count"), Some(&Json::Int(1)));
        assert_eq!(hj.get("max"), Some(&Json::Int(5)));
        assert_eq!(hj.get("mean"), Some(&Json::Float(5.0)));
        assert_eq!(
            hj.get("buckets").map(|b| b.render()),
            Some(r#"[{"lo":4,"hi":7,"count":1}]"#.to_string())
        );
    }

    #[test]
    fn worker_stats_merge_and_json() {
        let mut a = WorkerStats {
            executed: 3,
            stolen: 1,
            idle_waits: 2,
            idle_wait_ns: 500,
        };
        a.merge(&WorkerStats {
            executed: 1,
            stolen: 0,
            idle_waits: 1,
            idle_wait_ns: 100,
        });
        assert_eq!(
            (a.executed, a.stolen, a.idle_waits, a.idle_wait_ns),
            (4, 1, 3, 600)
        );
        let j = workers_to_json(&[a, WorkerStats::default()]);
        assert_eq!(
            j.render(),
            r#"[{"worker":0,"executed":4,"stolen":1,"idle_waits":3,"idle_wait_ns":600},{"worker":1,"executed":0,"stolen":0,"idle_waits":0,"idle_wait_ns":0}]"#
        );
        assert!(format!("{a}").contains("4 executed"));
    }

    #[test]
    fn coverage_counts_distinct_traces() {
        let mut cov = Coverage::new();
        let t1 = [choice(ChoiceKind::Thread, 0, 2)];
        let t2 = [choice(ChoiceKind::Thread, 1, 2)];
        let t3 = [choice(ChoiceKind::Read, 0, 2)];
        assert!(cov.record_trace(&t1));
        assert!(!cov.record_trace(&t1));
        assert!(cov.record_trace(&t2));
        assert!(cov.record_trace(&t3));
        assert_eq!(cov.distinct_traces(), 3);
        // Arity participates in the hash.
        let t4 = [choice(ChoiceKind::Thread, 0, 3)];
        assert!(cov.record_trace(&t4));
        assert_eq!(cov.distinct_traces(), 4);
    }
}
