//! Scheduling strategies and replayable choice traces.
//!
//! Every nondeterministic decision of the model — *which thread steps next*
//! and *which message a read reads* — is delegated to a [`Strategy`]. The
//! executed decisions are recorded as a [`Choice`] trace, which makes
//! executions replayable and enables stateless bounded-exhaustive
//! exploration (see [`crate::Explorer`]).

use std::fmt;

use crate::rng::SmallRng;

/// What kind of decision a choice was.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChoiceKind {
    /// Which runnable thread executes the next instruction.
    Thread,
    /// Which readable message an atomic read reads.
    Read,
}

/// One recorded nondeterministic decision.
///
/// Only decisions with more than one alternative are recorded.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Choice {
    /// The kind of decision.
    pub kind: ChoiceKind,
    /// The index that was chosen.
    pub chosen: u32,
    /// How many alternatives there were.
    pub arity: u32,
}

/// A source of scheduling and read-choice decisions.
///
/// Implementations must be deterministic functions of their own state and
/// the sequence of queries — the executor guarantees that this sequence is
/// itself a deterministic function of the answers, which is what makes
/// traces replayable.
pub trait Strategy: Send {
    /// Picks one of `arity` alternatives (`arity >= 2`).
    fn choose(&mut self, kind: ChoiceKind, arity: usize) -> usize;

    /// Picks the next thread among `candidates` (sorted, `len >= 2`).
    ///
    /// The default delegates to [`Strategy::choose`]; strategies that care
    /// about thread identities (e.g. [`PctStrategy`]) override this. The
    /// returned value is an *index into `candidates`*.
    fn choose_thread(&mut self, candidates: &[crate::val::ThreadId]) -> usize {
        self.choose(ChoiceKind::Thread, candidates.len())
    }
}

/// Uniform pseudo-random strategy with a fixed seed.
#[derive(Debug)]
pub struct RandomStrategy {
    rng: SmallRng,
}

impl RandomStrategy {
    /// Creates a random strategy from a seed.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn choose(&mut self, _kind: ChoiceKind, arity: usize) -> usize {
        self.rng.gen_index(arity)
    }
}

/// Boxed [`RandomStrategy`] convenience constructor.
pub fn random_strategy(seed: u64) -> Box<dyn Strategy> {
    Box::new(RandomStrategy::new(seed))
}

/// Strategy for DFS exploration: follows a forced prefix of decisions and
/// then always picks alternative 0.
///
/// Running a program with successive prefixes produced by
/// [`crate::Explorer`]'s backtracking enumerates the whole (bounded)
/// decision tree.
pub struct DfsStrategy {
    forced: Vec<u32>,
    pos: usize,
}

impl DfsStrategy {
    /// Creates a DFS strategy with the given forced prefix.
    pub fn new(forced: Vec<u32>) -> Self {
        DfsStrategy { forced, pos: 0 }
    }
}

impl fmt::Debug for DfsStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DfsStrategy")
            .field("forced", &self.forced)
            .field("pos", &self.pos)
            .finish()
    }
}

impl Strategy for DfsStrategy {
    fn choose(&mut self, _kind: ChoiceKind, arity: usize) -> usize {
        let c = if self.pos < self.forced.len() {
            let c = self.forced[self.pos] as usize;
            assert!(
                c < arity,
                "forced choice {c} out of range {arity}: non-deterministic program?"
            );
            c
        } else {
            0
        };
        self.pos += 1;
        c
    }
}

/// Boxed [`DfsStrategy`] convenience constructor.
pub fn dfs_strategy(forced: Vec<u32>) -> Box<dyn Strategy> {
    Box::new(DfsStrategy::new(forced))
}

/// PCT-style probabilistic scheduling (Burckhardt et al., ASPLOS 2010,
/// adapted): threads get random priorities; the highest-priority runnable
/// thread is scheduled, except at `depth` random *change points* (by
/// scheduling-decision count), where the running thread's priority drops
/// below everyone's. Read choices stay uniform random.
///
/// PCT finds bugs of small "depth" (number of required ordering
/// constraints) with much higher probability than uniform scheduling.
#[derive(Debug)]
pub struct PctStrategy {
    rng: SmallRng,
    priorities: std::collections::HashMap<crate::val::ThreadId, u64>,
    change_points: Vec<u64>,
    decisions: u64,
    next_low: u64,
}

impl PctStrategy {
    /// Creates a PCT strategy with `depth` priority-change points spread
    /// over the first `horizon` scheduling decisions.
    pub fn new(seed: u64, depth: usize, horizon: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let change_points = (0..depth)
            .map(|_| rng.gen_range(0, horizon.max(1)))
            .collect();
        PctStrategy {
            rng,
            priorities: std::collections::HashMap::new(),
            change_points,
            decisions: 0,
            next_low: 0,
        }
    }
}

impl Strategy for PctStrategy {
    fn choose(&mut self, _kind: ChoiceKind, arity: usize) -> usize {
        self.rng.gen_index(arity)
    }

    fn choose_thread(&mut self, candidates: &[crate::val::ThreadId]) -> usize {
        self.decisions += 1;
        let decisions = self.decisions;
        for &t in candidates {
            let p = self.rng.gen_range(1_000_000, u64::MAX);
            self.priorities.entry(t).or_insert(p);
        }
        let (idx, &winner) = candidates
            .iter()
            .enumerate()
            .max_by_key(|&(_, &t)| self.priorities[&t])
            .expect("candidates nonempty");
        if self.change_points.contains(&decisions) {
            // Demote the winner below every priority seen so far.
            self.priorities.insert(winner, self.next_low);
            self.next_low += 1;
        }
        idx
    }
}

/// Boxed [`PctStrategy`] convenience constructor.
pub fn pct_strategy(seed: u64, depth: usize, horizon: u64) -> Box<dyn Strategy> {
    Box::new(PctStrategy::new(seed, depth, horizon))
}

/// Advances a bounded-exhaustive DFS over choice traces by one step.
///
/// Given the trace of the execution just run (under a [`DfsStrategy`]
/// whose forced prefix was a prefix of it), returns the forced prefix of
/// the next unexplored path, or `None` when the decision tree is
/// exhausted: the deepest choice with an unexplored alternative is
/// bumped and everything after it dropped.
///
/// This is the *serial* backtracking step: calling it after every
/// execution enumerates the tree depth-first, one path at a time. The
/// exploration engine behind [`crate::Explorer::dfs`] uses the
/// equivalent work-stealing formulation (a shared frontier of sibling
/// prefixes; see [`crate::WorkSource`]), which visits the same set of
/// paths and degenerates to exactly this order with one worker.
pub fn next_dfs_prefix(trace: &[Choice]) -> Option<Vec<u32>> {
    let mut path: Vec<(u32, u32)> = trace.iter().map(|c| (c.chosen, c.arity)).collect();
    loop {
        let (chosen, arity) = path.pop()?;
        if chosen + 1 < arity {
            path.push((chosen + 1, arity));
            return Some(path.iter().map(|&(c, _)| c).collect());
        }
    }
}

/// Replays a previously recorded trace exactly.
///
/// Equivalent to a DFS strategy whose forced prefix is the full trace;
/// useful for reproducing a failure found by random exploration.
pub fn replay_strategy(trace: &[Choice]) -> Box<dyn Strategy> {
    Box::new(DfsStrategy::new(trace.iter().map(|c| c.chosen).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomStrategy::new(42);
        let mut b = RandomStrategy::new(42);
        for _ in 0..100 {
            assert_eq!(
                a.choose(ChoiceKind::Thread, 5),
                b.choose(ChoiceKind::Thread, 5)
            );
        }
    }

    #[test]
    fn random_stays_in_range() {
        let mut s = RandomStrategy::new(7);
        for arity in 2..10 {
            for _ in 0..50 {
                assert!(s.choose(ChoiceKind::Read, arity) < arity);
            }
        }
    }

    #[test]
    fn dfs_follows_prefix_then_zero() {
        let mut s = DfsStrategy::new(vec![1, 2]);
        assert_eq!(s.choose(ChoiceKind::Thread, 3), 1);
        assert_eq!(s.choose(ChoiceKind::Read, 4), 2);
        assert_eq!(s.choose(ChoiceKind::Thread, 2), 0);
        assert_eq!(s.choose(ChoiceKind::Thread, 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dfs_rejects_out_of_range_prefix() {
        let mut s = DfsStrategy::new(vec![5]);
        s.choose(ChoiceKind::Thread, 2);
    }

    #[test]
    fn next_dfs_prefix_enumerates_the_tree() {
        // A fixed 2x3 decision tree: enumerate all 6 paths in order.
        let run = |prefix: Vec<u32>| -> Vec<Choice> {
            let mut s = DfsStrategy::new(prefix);
            let a = s.choose(ChoiceKind::Thread, 2) as u32;
            let b = s.choose(ChoiceKind::Read, 3) as u32;
            vec![
                Choice {
                    kind: ChoiceKind::Thread,
                    chosen: a,
                    arity: 2,
                },
                Choice {
                    kind: ChoiceKind::Read,
                    chosen: b,
                    arity: 3,
                },
            ]
        };
        let mut prefix = Vec::new();
        let mut paths = Vec::new();
        loop {
            let trace = run(prefix);
            paths.push((trace[0].chosen, trace[1].chosen));
            match next_dfs_prefix(&trace) {
                Some(p) => prefix = p,
                None => break,
            }
        }
        assert_eq!(paths, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn next_dfs_prefix_empty_trace_is_exhausted() {
        assert_eq!(next_dfs_prefix(&[]), None);
    }

    #[test]
    fn replay_reproduces_choices() {
        let trace = vec![
            Choice {
                kind: ChoiceKind::Thread,
                chosen: 1,
                arity: 3,
            },
            Choice {
                kind: ChoiceKind::Read,
                chosen: 0,
                arity: 2,
            },
        ];
        let mut s = replay_strategy(&trace);
        assert_eq!(s.choose(ChoiceKind::Thread, 3), 1);
        assert_eq!(s.choose(ChoiceKind::Read, 2), 0);
    }
}
