//! Minimal synchronization shims over [`std::sync`].
//!
//! The repository builds with no external dependencies; this module
//! provides the small slice of the `parking_lot` API the workspace uses
//! (`lock()` returning a guard directly, poison-free semantics, and a
//! `Condvar` that takes the guard by `&mut`).
//!
//! Poisoning is deliberately ignored: the model checker intentionally
//! unwinds simulated threads (assertion failures are *outcomes*, not
//! process-fatal errors), so a poisoned lock only means "some simulated
//! thread panicked while holding the step lock" — the executor recovers
//! the state and reports the panic as a [`crate::ModelError`].

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutex whose `lock` never fails: poison is stripped.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, stripping poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable usable with [`Mutex`], `parking_lot`-style: `wait`
/// takes the guard by `&mut` and reacquires the lock before returning.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out to satisfy std's by-value API.
        replace_with(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

/// Replaces `*slot` with `f(old)` without a `Default` escape hatch.
///
/// Safety: `f` must not unwind. `Condvar::wait` strips poison and cannot
/// otherwise panic, so the closure used above is non-unwinding in
/// practice; to keep this sound against surprises we abort on unwind.
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("poison it");
        }));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(5);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
