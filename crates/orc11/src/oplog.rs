//! Per-execution operation logs.
//!
//! With [`crate::Config::record_ops`] enabled, every model instruction is
//! recorded; the log renders as a human-readable schedule — the first
//! thing to look at when a consistency checker reports a violation on
//! some seed.

use std::fmt;

use crate::mode::{FenceMode, Mode};
use crate::val::{Loc, ThreadId, Val};
use crate::view::Timestamp;

/// What a recorded instruction did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKindRecord {
    /// Allocated `count` locations starting at the recorded location.
    Alloc {
        /// Number of locations in the block.
        count: u32,
    },
    /// A read that returned `val` from the write at `ts`.
    Read {
        /// Access mode.
        mode: Mode,
        /// Value read.
        val: Val,
        /// Timestamp of the message read.
        ts: Timestamp,
        /// Whether this was a blocking `read_await`.
        awaited: bool,
    },
    /// A write of `val` at timestamp `ts`.
    Write {
        /// Access mode.
        mode: Mode,
        /// Value written.
        val: Val,
        /// Timestamp of the new message.
        ts: Timestamp,
    },
    /// A read-modify-write that read `old` and wrote `new` (`None` = a
    /// failed CAS).
    Rmw {
        /// Mode of the successful RMW.
        mode: Mode,
        /// Value read.
        old: Val,
        /// Value written, if the RMW succeeded.
        new: Option<Val>,
    },
    /// A fence.
    Fence {
        /// Fence mode.
        mode: FenceMode,
    },
}

/// One recorded model instruction.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Global step index.
    pub step: u64,
    /// Executing thread.
    pub tid: ThreadId,
    /// The location involved (`None` for fences).
    pub loc: Option<Loc>,
    /// The location's debug name.
    pub loc_name: String,
    /// What happened.
    pub kind: OpKindRecord,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:4}] t{} ", self.step, self.tid)?;
        match &self.kind {
            OpKindRecord::Alloc { count } => {
                write!(f, "alloc {} ×{count}", self.loc_name)
            }
            OpKindRecord::Read {
                mode,
                val,
                ts,
                awaited,
            } => write!(
                f,
                "{}read^{mode} {} = {val} @{ts}",
                if *awaited { "await-" } else { "" },
                self.loc_name
            ),
            OpKindRecord::Write { mode, val, ts } => {
                write!(f, "write^{mode} {} := {val} @{ts}", self.loc_name)
            }
            OpKindRecord::Rmw { mode, old, new } => match new {
                Some(n) => write!(f, "rmw^{mode} {}: {old} → {n}", self.loc_name),
                None => write!(f, "rmw^{mode} {}: failed (read {old})", self.loc_name),
            },
            OpKindRecord::Fence { mode } => write!(f, "{mode}"),
        }
    }
}

/// Renders a full operation log, one instruction per line.
pub fn render_ops(ops: &[OpRecord]) -> String {
    let mut s = String::new();
    for op in ops {
        s.push_str(&op.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_kind() {
        let mk = |kind| OpRecord {
            step: 3,
            tid: 1,
            loc: Some(Loc::from_raw(0)),
            loc_name: "x".into(),
            kind,
        };
        assert_eq!(
            mk(OpKindRecord::Write {
                mode: Mode::Release,
                val: Val::Int(5),
                ts: 2
            })
            .to_string(),
            "[   3] t1 write^rel x := 5 @2"
        );
        assert!(mk(OpKindRecord::Read {
            mode: Mode::Acquire,
            val: Val::Null,
            ts: 0,
            awaited: true
        })
        .to_string()
        .contains("await-read^acq"));
        assert!(mk(OpKindRecord::Rmw {
            mode: Mode::AcqRel,
            old: Val::Int(1),
            new: None
        })
        .to_string()
        .contains("failed"));
        assert!(mk(OpKindRecord::Fence {
            mode: FenceMode::SeqCst
        })
        .to_string()
        .contains("fence(sc)"));
        assert!(mk(OpKindRecord::Alloc { count: 2 })
            .to_string()
            .contains("alloc"));
    }

    #[test]
    fn render_joins_lines() {
        let ops = vec![
            OpRecord {
                step: 1,
                tid: 0,
                loc: None,
                loc_name: String::new(),
                kind: OpKindRecord::Fence {
                    mode: FenceMode::Acquire,
                },
            };
            2
        ];
        assert_eq!(render_ops(&ops).lines().count(), 2);
    }
}
