//! Windowed event-rate measurement.
//!
//! Extracted from the parallel engine's trace-counter emitter so other
//! drivers (the `e12_perf` benchmarks, the checker's progress line) can
//! sample events/sec the same way: a [`RateMeter`] counts events and
//! reports the rate once per elapsed window, plus a run-total rate for
//! final summaries. Purely local state — one meter per thread, no
//! atomics.

use std::time::{Duration, Instant};

/// A windowed events/sec meter.
///
/// [`tick`](RateMeter::tick) records one event and returns the window's
/// rate when at least one full window has elapsed (then starts a new
/// window); [`overall`](RateMeter::overall) is the rate since
/// construction.
#[derive(Debug)]
pub struct RateMeter {
    window: Duration,
    window_start: Instant,
    in_window: u64,
    start: Instant,
    total: u64,
}

impl RateMeter {
    /// The window used by the exploration engine's trace counters.
    pub const DEFAULT_WINDOW: Duration = Duration::from_millis(100);

    /// A meter sampling at most once per `window`.
    pub fn new(window: Duration) -> Self {
        let now = Instant::now();
        RateMeter {
            window,
            window_start: now,
            in_window: 0,
            start: now,
            total: 0,
        }
    }

    /// Records one event. Returns `Some(events_per_sec)` — and resets
    /// the window — once a full window has elapsed, else `None`.
    pub fn tick(&mut self) -> Option<f64> {
        self.in_window += 1;
        self.total += 1;
        let elapsed = self.window_start.elapsed();
        if elapsed < self.window {
            return None;
        }
        let rate = self.in_window as f64 / elapsed.as_secs_f64();
        self.window_start = Instant::now();
        self.in_window = 0;
        Some(rate)
    }

    /// Total events recorded since construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean events/sec since construction.
    pub fn overall(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.total as f64 / secs.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_window_reports_every_tick() {
        let mut m = RateMeter::new(Duration::ZERO);
        assert!(m.tick().is_some());
        assert!(m.tick().is_some());
        assert_eq!(m.total(), 2);
        assert!(m.overall() > 0.0);
    }

    #[test]
    fn long_window_holds_back() {
        let mut m = RateMeter::new(Duration::from_secs(3600));
        for _ in 0..1000 {
            assert_eq!(m.tick(), None);
        }
        assert_eq!(m.total(), 1000);
    }
}
