//! Litmus tests: small programs with outcome histograms.
//!
//! A litmus test is a reusable model program whose threads each return an
//! integer; exploring it yields a histogram over outcome tuples, with
//! helpers to assert that an outcome is *observable* (allowed, and the
//! search found it) or *never observed* (forbidden). The [`gallery`] module
//! provides the classic RC11 shapes (MP, SB, CoRR, IRIW, ...), which both
//! document and sanity-check the substrate's semantics (§2.3/§5 of the
//! paper).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::exec::{run_model, BodyFn, Config, RunOutcome, ThreadCtx};
use crate::explore::{ExploreReport, Explorer};
use crate::sched::Strategy;

type SetupFn<S> = Arc<dyn Fn(&mut ThreadCtx) -> S + Send + Sync>;
type ThreadFn<S> = Arc<dyn Fn(&mut ThreadCtx, &S) -> i64 + Send + Sync>;

type FinalsFn<S> = Arc<dyn Fn(&mut ThreadCtx, &S) -> Vec<i64> + Send + Sync>;

/// A re-runnable litmus test.
///
/// ```
/// use orc11::litmus::Litmus;
/// use orc11::{Mode, Val};
///
/// // Two relaxed increments via CAS never collide.
/// let report = Litmus::new("inc", |ctx| ctx.alloc("c", Val::Int(0)))
///     .thread(|ctx, &c| {
///         ctx.fetch_add(c, 1, Mode::Relaxed);
///         0
///     })
///     .thread(|ctx, &c| {
///         ctx.fetch_add(c, 1, Mode::Relaxed);
///         0
///     })
///     .observe_finals(|ctx, &c| vec![ctx.peek(c).expect_int()])
///     .dfs(10_000);
/// assert!(report.report.exhausted);
/// report.assert_never(&[0, 0, 1]);
/// report.assert_observable(&[0, 0, 2]);
/// ```
pub struct Litmus<S> {
    name: String,
    cfg: Config,
    setup: SetupFn<S>,
    bodies: Vec<ThreadFn<S>>,
    finals: Option<FinalsFn<S>>,
}

impl<S> fmt::Debug for Litmus<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Litmus")
            .field("name", &self.name)
            .field("threads", &self.bodies.len())
            .finish()
    }
}

impl<S: Sync + 'static> Litmus<S> {
    /// Creates a litmus test with the given shared-state setup.
    pub fn new(name: &str, setup: impl Fn(&mut ThreadCtx) -> S + Send + Sync + 'static) -> Self {
        Litmus {
            name: name.to_string(),
            cfg: Config::default(),
            setup: Arc::new(setup),
            bodies: Vec::new(),
            finals: None,
        }
    }

    /// Adds a thread; its return value becomes one component of the
    /// outcome tuple.
    pub fn thread(mut self, f: impl Fn(&mut ThreadCtx, &S) -> i64 + Send + Sync + 'static) -> Self {
        self.bodies.push(Arc::new(f));
        self
    }

    /// Observes final state after all threads joined (e.g. latest values
    /// of locations via [`ThreadCtx::peek`]); the returned integers are
    /// appended to the outcome tuple.
    pub fn observe_finals(
        mut self,
        f: impl Fn(&mut ThreadCtx, &S) -> Vec<i64> + Send + Sync + 'static,
    ) -> Self {
        self.finals = Some(Arc::new(f));
        self
    }

    /// Overrides the per-execution step budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.cfg.max_steps = n;
        self
    }

    /// The test's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs one execution under `strategy`.
    pub fn run_once(&self, strategy: Box<dyn Strategy>) -> RunOutcome<Vec<i64>> {
        let setup = self.setup.clone();
        let bodies: Vec<BodyFn<'_, S, i64>> = self
            .bodies
            .iter()
            .map(|b| {
                let b = b.clone();
                Box::new(move |ctx: &mut ThreadCtx, s: &S| b(ctx, s)) as BodyFn<'_, S, i64>
            })
            .collect();
        let finals = self.finals.clone();
        run_model(
            &self.cfg,
            strategy,
            |ctx| setup(ctx),
            bodies,
            move |ctx, s, mut outs| {
                if let Some(f) = &finals {
                    outs.extend(f(ctx, s));
                }
                outs
            },
        )
    }

    /// Exhaustive exploration up to `max_execs` executions, with DPOR
    /// pruning switched by the `COMPASS_DPOR` environment variable (see
    /// [`crate::WorkSpec::dfs`]).
    pub fn dfs(&self, max_execs: u64) -> LitmusReport {
        self.explore(&crate::WorkSpec::dfs(max_execs))
    }

    /// Plain exhaustive DFS, ignoring `COMPASS_DPOR`.
    pub fn dfs_plain(&self, max_execs: u64) -> LitmusReport {
        self.explore(&crate::WorkSpec::Dfs { budget: max_execs })
    }

    /// DPOR-pruned exhaustive DFS (see [`crate::dpor`]), ignoring
    /// `COMPASS_DPOR`.
    pub fn dfs_dpor(&self, max_execs: u64) -> LitmusReport {
        self.explore(&crate::WorkSpec::DfsDpor { budget: max_execs })
    }

    /// Random exploration over `iters` seeds.
    pub fn random(&self, iters: u64, seed0: u64) -> LitmusReport {
        self.explore(&crate::WorkSpec::Random { iters, seed0 })
    }

    fn explore(&self, spec: &crate::WorkSpec) -> LitmusReport {
        let histogram = crate::sync::Mutex::new(BTreeMap::new());
        let report = Explorer::default().explore(spec, self, |_, out| {
            if let Ok(o) = &out.result {
                *histogram.lock().entry(o.clone()).or_insert(0) += 1;
            }
        });
        LitmusReport {
            name: self.name.clone(),
            histogram: histogram.into_inner(),
            report,
        }
    }
}

impl<S: Sync + 'static> crate::Model for Litmus<S> {
    type Out = Vec<i64>;

    fn run(&self, strategy: Box<dyn Strategy>) -> RunOutcome<Vec<i64>> {
        self.run_once(strategy)
    }
}

/// Outcome histogram of a litmus exploration.
#[derive(Debug)]
pub struct LitmusReport {
    /// Test name.
    pub name: String,
    /// Executions per outcome tuple.
    pub histogram: BTreeMap<Vec<i64>, u64>,
    /// The underlying exploration report.
    pub report: ExploreReport,
}

impl LitmusReport {
    /// Whether the outcome tuple was observed.
    pub fn observed(&self, outcome: &[i64]) -> bool {
        self.histogram.contains_key(outcome)
    }

    /// Asserts that the outcome was observed (the behaviour is allowed and
    /// the exploration was strong enough to exhibit it).
    ///
    /// # Panics
    ///
    /// Panics if the outcome was never observed.
    pub fn assert_observable(&self, outcome: &[i64]) {
        assert!(
            self.observed(outcome),
            "{}: expected outcome {:?} to be observable; histogram: {:?}",
            self.name,
            outcome,
            self.histogram
        );
    }

    /// Asserts that the outcome was never observed (a forbidden behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the outcome was observed, or if any execution errored.
    pub fn assert_never(&self, outcome: &[i64]) {
        self.report.assert_all_ok();
        assert!(
            !self.observed(outcome),
            "{}: forbidden outcome {:?} was observed {} times",
            self.name,
            outcome,
            self.histogram.get(outcome).copied().unwrap_or(0)
        );
    }
}

impl fmt::Display for LitmusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {}", self.name, self.report)?;
        for (outcome, count) in &self.histogram {
            writeln!(f, "  {outcome:?}: {count}")?;
        }
        Ok(())
    }
}

/// The classic litmus shapes, used to validate the substrate (experiment
/// E8 in `DESIGN.md`).
pub mod gallery {
    use super::Litmus;
    use crate::mode::{FenceMode, Mode};
    use crate::val::{Loc, Val};

    type Two = (Loc, Loc);

    fn two(ctx: &mut crate::exec::ThreadCtx) -> Two {
        (ctx.alloc("x", Val::Int(0)), ctx.alloc("y", Val::Int(0)))
    }

    /// Message passing with release/acquire: reading `flag == 1` implies
    /// reading `data == 1`. Outcome `(_, stale)` where `stale = data` read
    /// after awaiting the flag; `[_, 0]` is forbidden.
    pub fn mp_rel_acq() -> Litmus<Two> {
        Litmus::new("MP+rel+acq", two)
            .thread(|ctx, &(d, f)| {
                ctx.write(d, Val::Int(1), Mode::Relaxed);
                ctx.write(f, Val::Int(1), Mode::Release);
                0
            })
            .thread(|ctx, &(d, f)| {
                ctx.read_await(f, Mode::Acquire, |v| v == Val::Int(1));
                ctx.read(d, Mode::Relaxed).expect_int()
            })
    }

    /// Message passing with a relaxed flag write: `[_, 0]` is allowed.
    pub fn mp_relaxed() -> Litmus<Two> {
        Litmus::new("MP+rlx+acq", two)
            .thread(|ctx, &(d, f)| {
                ctx.write(d, Val::Int(1), Mode::Relaxed);
                ctx.write(f, Val::Int(1), Mode::Relaxed);
                0
            })
            .thread(|ctx, &(d, f)| {
                ctx.read_await(f, Mode::Acquire, |v| v == Val::Int(1));
                ctx.read(d, Mode::Relaxed).expect_int()
            })
    }

    /// Message passing through fences: release fence + relaxed writes /
    /// relaxed read + acquire fence. `[_, 0]` is forbidden.
    pub fn mp_fences() -> Litmus<Two> {
        Litmus::new("MP+fences", two)
            .thread(|ctx, &(d, f)| {
                ctx.write(d, Val::Int(1), Mode::Relaxed);
                ctx.fence(FenceMode::Release);
                ctx.write(f, Val::Int(1), Mode::Relaxed);
                0
            })
            .thread(|ctx, &(d, f)| {
                ctx.read_await(f, Mode::Relaxed, |v| v == Val::Int(1));
                ctx.fence(FenceMode::Acquire);
                ctx.read(d, Mode::Relaxed).expect_int()
            })
    }

    /// Store buffering with SC fences between the store and the load:
    /// `[0, 0]` becomes forbidden — the store-load ordering only SC
    /// fences provide.
    pub fn sb_sc_fences() -> Litmus<Two> {
        Litmus::new("SB+scfences", two)
            .thread(|ctx, &(x, y)| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                ctx.fence(FenceMode::SeqCst);
                ctx.read(y, Mode::Relaxed).expect_int()
            })
            .thread(|ctx, &(x, y)| {
                ctx.write(y, Val::Int(1), Mode::Relaxed);
                ctx.fence(FenceMode::SeqCst);
                ctx.read(x, Mode::Relaxed).expect_int()
            })
    }

    /// Store buffering: `[0, 0]` is allowed even with release/acquire.
    pub fn sb() -> Litmus<Two> {
        Litmus::new("SB", two)
            .thread(|ctx, &(x, y)| {
                ctx.write(x, Val::Int(1), Mode::Release);
                ctx.read(y, Mode::Acquire).expect_int()
            })
            .thread(|ctx, &(x, y)| {
                ctx.write(y, Val::Int(1), Mode::Release);
                ctx.read(x, Mode::Acquire).expect_int()
            })
    }

    /// Coherence of read-read: two reads of the same location by one
    /// thread may not observe writes out of modification order.
    /// Outcomes are encoded as `10*first + second`; `12` is allowed,
    /// `21` is forbidden.
    pub fn corr() -> Litmus<Loc> {
        Litmus::new("CoRR", |ctx| ctx.alloc("x", Val::Int(0)))
            .thread(|ctx, &x| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                0
            })
            .thread(|ctx, &x| {
                ctx.write(x, Val::Int(2), Mode::Relaxed);
                0
            })
            .thread(|ctx, &x| {
                let a = ctx.read(x, Mode::Relaxed).expect_int();
                let b = ctx.read(x, Mode::Relaxed).expect_int();
                10 * a + b
            })
    }

    /// Independent reads of independent writes, with release/acquire:
    /// the two readers may disagree on the order of the writes (allowed
    /// in RC11 for acquire reads — unlike SC). Outcome per reader is
    /// `10*first + second`; `[_, _, 10, 01]` (disagreement) is allowed.
    pub fn iriw_acq() -> Litmus<Two> {
        Litmus::new("IRIW+acq", two)
            .thread(|ctx, &(x, _)| {
                ctx.write(x, Val::Int(1), Mode::Release);
                0
            })
            .thread(|ctx, &(_, y)| {
                ctx.write(y, Val::Int(1), Mode::Release);
                0
            })
            .thread(|ctx, &(x, y)| {
                let a = ctx.read(x, Mode::Acquire).expect_int();
                let b = ctx.read(y, Mode::Acquire).expect_int();
                10 * a + b
            })
            .thread(|ctx, &(x, y)| {
                let b = ctx.read(y, Mode::Acquire).expect_int();
                let a = ctx.read(x, Mode::Acquire).expect_int();
                10 * b + a
            })
    }

    /// Load buffering: can both threads read the other's later write?
    /// `[1, 1]` is **forbidden** in ORC11 (`po ∪ rf` acyclic — the model
    /// paper's headline restriction relative to full C11), and this
    /// operational model cannot produce it by construction: a read can
    /// only return an already-executed write.
    pub fn lb() -> Litmus<Two> {
        Litmus::new("LB", two)
            .thread(|ctx, &(x, y)| {
                let r = ctx.read(x, Mode::Relaxed).expect_int();
                ctx.write(y, Val::Int(1), Mode::Relaxed);
                r
            })
            .thread(|ctx, &(x, y)| {
                let r = ctx.read(y, Mode::Relaxed).expect_int();
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                r
            })
    }

    /// 2+2W: both threads write both locations in opposite orders; the
    /// outcome is the final value of each location. `[1, 1]` (both
    /// first-writes win) requires inserting writes into the middle of
    /// modification order, which RC11 allows for relaxed accesses but
    /// this model's append-only `mo` excludes — a **documented
    /// limitation** (see `DESIGN.md` §2), checked here so it cannot drift
    /// silently.
    pub fn two_plus_two_w() -> Litmus<Two> {
        Litmus::new("2+2W", two)
            .thread(|ctx, &(x, y)| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                ctx.write(y, Val::Int(2), Mode::Relaxed);
                0
            })
            .thread(|ctx, &(x, y)| {
                ctx.write(y, Val::Int(1), Mode::Relaxed);
                ctx.write(x, Val::Int(2), Mode::Relaxed);
                0
            })
            .observe_finals(|ctx, &(x, y)| vec![ctx.peek(x).expect_int(), ctx.peek(y).expect_int()])
    }

    /// Coherence write-read: a thread reading a location it just wrote
    /// must see its own write (or a later one) — never the initial value.
    /// Outcome `[0]` is forbidden.
    pub fn cowr() -> Litmus<Loc> {
        Litmus::new("CoWR", |ctx| ctx.alloc("x", Val::Int(0)))
            .thread(|ctx, &x| {
                ctx.write(x, Val::Int(1), Mode::Relaxed);
                0
            })
            .thread(|ctx, &x| {
                ctx.write(x, Val::Int(2), Mode::Relaxed);
                ctx.read(x, Mode::Relaxed).expect_int()
            })
    }

    /// Release sequences: an acquire read of a relaxed RMW synchronizes
    /// with the release write heading the sequence. Reading `x == 2`
    /// (the RMW's value) implies seeing `data == 1`; `[_, _, 0]` is
    /// forbidden.
    pub fn release_sequence() -> Litmus<Two> {
        Litmus::new("REL-SEQ", two)
            .thread(|ctx, &(d, x)| {
                ctx.write(d, Val::Int(1), Mode::Relaxed);
                ctx.write(x, Val::Int(1), Mode::Release);
                0
            })
            .thread(|ctx, &(_, x)| {
                // Relaxed RMW extends the release sequence.
                ctx.read_await(x, Mode::Relaxed, |v| v == Val::Int(1));
                let _ = ctx.cas(x, Val::Int(1), Val::Int(2), Mode::Relaxed, Mode::Relaxed);
                0
            })
            .thread(|ctx, &(d, x)| {
                ctx.read_await(x, Mode::Acquire, |v| v == Val::Int(2));
                ctx.read(d, Mode::Relaxed).expect_int()
            })
    }

    /// RMW atomicity: two fetch-and-adds never read the same value.
    /// Outcome is the final counter value; anything but `2` is forbidden.
    pub fn rmw_atomicity() -> Litmus<Loc> {
        Litmus::new("RMW-atomicity", |ctx| ctx.alloc("c", Val::Int(0)))
            .thread(|ctx, &c| {
                ctx.fetch_add(c, 1, Mode::Relaxed);
                ctx.read(c, Mode::Relaxed).expect_int()
            })
            .thread(|ctx, &c| {
                ctx.fetch_add(c, 1, Mode::Relaxed);
                ctx.read(c, Mode::Relaxed).expect_int()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::gallery::*;

    #[test]
    fn mp_rel_acq_forbids_stale_read() {
        let r = mp_rel_acq().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_never(&[0, 0]);
        r.assert_observable(&[0, 1]);
    }

    #[test]
    fn mp_relaxed_allows_stale_read() {
        let r = mp_relaxed().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_observable(&[0, 0]);
        r.assert_observable(&[0, 1]);
    }

    #[test]
    fn mp_fences_forbid_stale_read() {
        let r = mp_fences().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_never(&[0, 0]);
    }

    #[test]
    fn sb_allows_both_zero() {
        let r = sb().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_observable(&[0, 0]);
        r.assert_observable(&[1, 1]);
    }

    #[test]
    fn sb_sc_fences_forbid_both_zero() {
        let r = sb_sc_fences().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_never(&[0, 0]);
        r.assert_observable(&[0, 1]);
        r.assert_observable(&[1, 1]);
    }

    #[test]
    fn corr_respects_coherence() {
        let r = corr().dfs(200_000);
        assert!(r.report.exhausted);
        // Seeing 1 then 2 (or 2 then 1) depends on mo, but downgrading is
        // forbidden: having seen the mo-later write, you cannot go back.
        let seen12 = r.observed(&[0, 0, 12]);
        let seen21 = r.observed(&[0, 0, 21]);
        assert!(
            seen12 ^ seen21 || (seen12 || seen21),
            "at least one order observable"
        );
        // A read can never observe a value and then an mo-earlier one.
        for outcome in r.histogram.keys() {
            let o = outcome[2];
            let (a, b) = (o / 10, o % 10);
            if a != 0 && b != 0 {
                // Both writes seen: order must match mo. We cannot know mo
                // from outside, but (a, b) == (2, 1) and (1, 2) cannot both
                // be coherent in the SAME execution; across executions both
                // can appear. The per-execution check is done by the model
                // (reads never go below the view). Here we just check
                // non-degenerate values.
                assert!((1..=2).contains(&a) && (1..=2).contains(&b));
            }
        }
    }

    #[test]
    fn iriw_acq_allows_disagreement() {
        // Keep DFS budget higher: 4 threads.
        let r = iriw_acq().dfs(500_000);
        assert!(
            r.report.exhausted,
            "IRIW should be explorable: {}",
            r.report
        );
        r.assert_observable(&[0, 0, 10, 10]);
    }

    #[test]
    fn lb_is_forbidden() {
        let r = lb().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_never(&[1, 1]);
        r.assert_observable(&[0, 0]);
        r.assert_observable(&[0, 1]);
        r.assert_observable(&[1, 0]);
    }

    #[test]
    fn two_plus_two_w_append_only_mo() {
        let r = two_plus_two_w().dfs(500_000);
        assert!(r.report.exhausted, "{}", r.report);
        // Allowed finals observed...
        let finals: std::collections::BTreeSet<(i64, i64)> =
            r.histogram.keys().map(|o| (o[2], o[3])).collect();
        assert!(finals.contains(&(1, 2)));
        assert!(finals.contains(&(2, 1)));
        assert!(finals.contains(&(2, 2)));
        // ...and the mo-insertion outcome is absent (documented model
        // limitation relative to full RC11).
        assert!(!finals.contains(&(1, 1)));
    }

    #[test]
    fn cowr_sees_own_write() {
        let r = cowr().dfs(50_000);
        assert!(r.report.exhausted);
        r.assert_never(&[0, 0]);
        r.assert_observable(&[0, 2]);
        r.assert_observable(&[0, 1]); // another thread's later write is fine
    }

    #[test]
    fn release_sequence_synchronizes() {
        let r = release_sequence().dfs(200_000);
        assert!(r.report.exhausted, "{}", r.report);
        r.assert_never(&[0, 0, 0]);
        r.assert_observable(&[0, 0, 1]);
    }

    #[test]
    fn rmw_is_atomic() {
        let r = rmw_atomicity().dfs(50_000);
        assert!(r.report.exhausted);
        for outcome in r.histogram.keys() {
            // Final reads: at least one thread reads 2 eventually is not
            // guaranteed (it reads its own update, possibly before the
            // other's), but the two RMWs never produce the same value:
            // outcome components are each 1 or 2 and not both 1.
            assert!(outcome.iter().all(|&v| v == 1 || v == 2));
            assert_ne!(outcome.as_slice(), &[1, 1]);
        }
    }
}
