//! Dynamic partial-order reduction (DPOR) for the DFS exploration
//! engine.
//!
//! Plain DFS ([`crate::WorkSpec::Dfs`]) enumerates *every* interleaving
//! of the model's instructions — including the combinatorial mass of
//! schedules that differ only in the order of non-conflicting
//! instructions and are therefore observationally identical. This module
//! implements classic DPOR (Flanagan & Godefroid, POPL 2005) with sleep
//! sets, adapted to the engine's choice-trace formulation:
//!
//! * every executed body instruction carries an access summary
//!   ([`StepAccess`], recorded by `orc11::exec` into
//!   [`crate::RunOutcome::accesses`]) naming the location it touched,
//!   whether it read/wrote/RMW'd/fenced, and whether its commit
//!   continuation touched ghost state;
//! * when an execution completes, every pair of *conflicting*
//!   instructions by different threads ([`conflicts`]) demands a
//!   *backtrack point*: the scheduling decision that ran the earlier
//!   instruction must also try the later instruction's thread
//!   ([`DporState::on_complete`]);
//! * demanded alternatives feed the same shared DFS prefix frontier the
//!   work-stealing workers drain ([`crate::WorkSource`]); a per-decision
//!   *sleep set* (the `explored` map) keeps each alternative from being
//!   scheduled twice.
//!
//! Thread-choice siblings that no conflict ever demands are simply never
//! pushed — that is the reduction. Read choices (which message an atomic
//! read returns) are always fully enumerated: each candidate message is
//! a genuinely different outcome, not a reordering.
//!
//! ## Why this stays deterministic under work stealing
//!
//! An execution's demands are a pure function of that execution (its
//! trace and access list), and an execution is a pure function of its
//! claimed prefix. The set of explored prefixes is therefore the least
//! fixpoint of "root, plus everything some explored execution demands" —
//! a property of the *model*, not of how many workers drained the
//! frontier. The pruning counters ([`DporStats`]) are defined so each is
//! a function of that fixpoint too, which is what keeps DPOR reports
//! byte-identical at any thread count (pinned by
//! `tests/dpor_soundness.rs` and `tests/parallel_determinism.rs`).
//!
//! ## Conservative conflict relation
//!
//! When in doubt, two accesses conflict (= explore both orders). In
//! particular any two ghost-touching commits conflict regardless of
//! location — commit continuations observe the global step index and
//! mutate ghost views that the `compass` specs consume, so their
//! relative order is observable even when their physical locations are
//! disjoint. See `DESIGN.md`, "Dynamic partial-order reduction".

use std::collections::{BTreeSet, HashMap};

use crate::sched::{Choice, ChoiceKind};
use crate::stats::DporStats;
use crate::val::{Loc, ThreadId};

/// What one model instruction did to shared state, for conflict
/// detection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Not summarized — conservatively conflicts with everything.
    Other,
    /// A location allocation (conflicts with other allocations: the
    /// allocator assigns addresses in program order).
    Alloc,
    /// A read of `loc`.
    Read {
        /// The location read.
        loc: Loc,
        /// Whether the read was atomic.
        atomic: bool,
    },
    /// A write to `loc`.
    Write {
        /// The location written.
        loc: Loc,
        /// Whether the write was atomic.
        atomic: bool,
    },
    /// A read-modify-write of `loc` (successful or failed — a failed CAS
    /// still reads the latest message).
    Rmw {
        /// The location updated.
        loc: Loc,
    },
    /// A fence.
    Fence {
        /// Whether the fence was sequentially consistent (SC fences
        /// join a global frontier and so conflict with each other;
        /// weaker fences are thread-local).
        sc: bool,
    },
}

/// One instruction's access summary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// The executing thread.
    pub tid: ThreadId,
    /// What it did.
    pub kind: AccessKind,
    /// Whether its commit continuation touched ghost state (read or
    /// extended a ghost view, or observed the global step index).
    pub ghost: bool,
}

/// Sentinel for [`StepAccess::candidates`] when a selectable thread id
/// did not fit the bitmask: treat every thread as "was not selectable",
/// i.e. demand all alternatives.
pub const CANDIDATES_UNKNOWN: u64 = u64::MAX;

/// One executed body instruction, as recorded in
/// [`crate::RunOutcome::accesses`] (setup/finish instructions are not
/// scheduling-relevant and are not recorded).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StepAccess {
    /// The access summary.
    pub access: Access,
    /// Index into the choice trace of the [`ChoiceKind::Thread`] decision
    /// that scheduled this instruction, or `None` if only one thread was
    /// selectable (forced decisions are not recorded in the trace).
    pub decision: Option<u32>,
    /// Bitmask of the thread ids that were selectable at that decision
    /// (bit `t` = thread `t`), or [`CANDIDATES_UNKNOWN`]. Meaningful only
    /// when `decision` is `Some`.
    pub candidates: u64,
    /// Length of the choice trace when this instruction started running:
    /// every choice the instruction itself recorded (its read decision,
    /// if any) has a trace index `>= trace_start`, and every choice of
    /// every earlier instruction has a smaller one. This is what lets the
    /// sleep check cut an execution's expansions *from an instruction
    /// onward* (see [`analyze`]).
    pub trace_start: u32,
}

/// Whether two instruction summaries *conflict* — whether their relative
/// execution order may be observable. Only conflicting pairs by
/// different threads force both schedules to be explored.
///
/// The relation is conservative: [`AccessKind::Other`] conflicts with
/// everything, RMWs conflict with every same-location access, and any
/// two ghost-touching commits conflict regardless of location.
pub fn conflicts(a: &Access, b: &Access) -> bool {
    // Ghost commits are ordered by the global step index and feed the
    // specification layer's logical views; never reorder them silently.
    if a.ghost && b.ghost {
        return true;
    }
    use AccessKind::*;
    match (a.kind, b.kind) {
        (Other, _) | (_, Other) => true,
        (Alloc, Alloc) => true,
        (Alloc, _) | (_, Alloc) => false,
        (Fence { sc: sa }, Fence { sc: sb }) => sa && sb,
        (Fence { .. }, _) | (_, Fence { .. }) => false,
        (Read { loc: la, .. }, Read { loc: lb, .. }) => {
            // Two reads never conflict — they commute even on the same
            // location (both observe messages, neither publishes one).
            let _ = (la, lb);
            false
        }
        (Read { loc: la, .. }, Write { loc: lb, .. })
        | (Write { loc: la, .. }, Read { loc: lb, .. })
        | (Write { loc: la, .. }, Write { loc: lb, .. })
        | (Rmw { loc: la }, Read { loc: lb, .. })
        | (Read { loc: la, .. }, Rmw { loc: lb })
        | (Rmw { loc: la }, Write { loc: lb, .. })
        | (Write { loc: la, .. }, Rmw { loc: lb })
        | (Rmw { loc: la }, Rmw { loc: lb }) => la == lb,
    }
}

/// Whether `COMPASS_DPOR` asks for DPOR (set and not `0`). The engine's
/// environment-sensitive DFS entry points ([`crate::WorkSpec::dfs`],
/// and everything built on it) consult this.
pub fn dpor_from_env() -> bool {
    std::env::var_os("COMPASS_DPOR").is_some_and(|v| v != *"0")
}

/// The shared DPOR state riding on a DFS [`crate::WorkSource`]: the
/// per-decision sleep sets and the pruning counters.
///
/// Keys are decision-tree nodes (the path of recorded choices leading to
/// a [`ChoiceKind::Thread`] decision); values are the alternatives at
/// that node that have been scheduled — by the visiting execution itself
/// or by an accepted backtrack demand.
#[derive(Debug, Default)]
pub(crate) struct DporState {
    explored: HashMap<Vec<u32>, BTreeSet<u32>>,
    pub(crate) stats: DporStats,
}

/// What one completed execution contributes to the shared DPOR state —
/// a pure function of the execution (its trace and access list), which
/// both the determinism argument and the lock-free call site in
/// [`crate::WorkSource::complete`] rely on.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct Analysis {
    /// Backtrack demands, as `(decision trace index, alternative)`
    /// pairs: at that decision, that alternative must (also) be
    /// explored.
    pub(crate) demands: BTreeSet<(usize, u32)>,
    /// `Some(c)` when the execution violated a sleep set: from trace
    /// index `c` onward it is a redundant replay of an interleaving
    /// covered by an earlier-ranked sibling subtree, so fresh read
    /// expansions at indices `>= c` must not be pushed.
    pub(crate) cutoff: Option<u32>,
}

/// Analyzes one completed execution: its backtrack demands and its
/// sleep-set cutoff.
///
/// **Demands.** A demand is raised for every *immediate race* `(j, i)`:
/// instructions by different threads that conflict and are not already
/// ordered through an intermediate instruction (Flanagan–Godefroid's
/// "last dependent transition" condition, computed here with
/// per-instruction vector clocks over the conservative [`conflicts`]
/// relation). Demanding only immediate races is what keeps the
/// enumeration near-optimal: transitively-ordered conflicts would
/// re-derive interleavings the recursion discovers anyway, once per
/// path. The reversals a non-immediate race *does* need are rediscovered
/// recursively — every execution re-analyses its whole trace, including
/// the claimed prefix, so a race that becomes immediate in a reversed
/// execution is demanded there.
///
/// **Sleep check.** A demanded reversal's *free continuation* (fresh
/// decisions default to alternative 0) may schedule exactly the move a
/// lower-ranked sibling subtree already explores — classic sleep sets
/// block that schedule before it runs; this demand-driven formulation
/// detects it after the fact, entirely from the execution itself: at a
/// thread decision `d` that chose alternative `a`, the move of each
/// skipped alternative `b < a` is thread `t_b`'s *next instruction*,
/// which (if `t_b` runs again at all) appears in this very trace as
/// `t_b`'s first access `k` after `d`. If nothing between `d` and `k`
/// conflicts with `k`, the continuation from `k` onward commutes back to
/// the `b` subtree: the execution is redundant from `k` on. We then (1)
/// demand `(d, b)` so the covering subtree is really explored, and (2)
/// report `k`'s [`StepAccess::trace_start`] as the cutoff so the
/// execution's read expansions beyond it are pruned. Restricting the
/// check to `b < a` keeps it antisymmetric — the covering subtree can
/// never symmetrically prune in favour of this one, so the recursion is
/// well-founded and bottoms out at alternative 0.
pub(crate) fn analyze(trace: &[Choice], accesses: &[StepAccess]) -> Analysis {
    let mut out = demands(trace, accesses);
    sleep_check(trace, accesses, &mut out);
    out
}

/// The immediate-race demands of [`analyze`].
fn demands(trace: &[Choice], accesses: &[StepAccess]) -> Analysis {
    let n = accesses.len();
    let n_tids = accesses.iter().map(|a| a.access.tid + 1).max().unwrap_or(0);
    // clocks[i][t] = 1 + the highest instruction index by thread `t`
    // that happens before instruction `i` (0 = none), where
    // happens-before = program order ∪ conflict order.
    let mut clocks: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut last_of: Vec<Option<usize>> = vec![None; n_tids];
    let mut direct = Vec::new();
    let mut demands: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (i, ai) in accesses.iter().enumerate() {
        let tid = ai.access.tid;
        let mut clock = match last_of[tid] {
            Some(p) => clocks[p].clone(),
            None => vec![0; n_tids],
        };
        direct.clear();
        direct.extend((0..i).filter(|&j| {
            accesses[j].access.tid != tid && conflicts(&accesses[j].access, &ai.access)
        }));
        for &j in &direct {
            let tj = accesses[j].access.tid;
            // (j, i) is an immediate race iff none of i's *other*
            // predecessors already carries j in its clock.
            let mut covered = clock[tj] as usize > j;
            for &k in &direct {
                covered = covered || (k != j && clocks[k][tj] as usize > j);
            }
            if !covered {
                demand_reversal(trace, &accesses[j], tid, &mut demands);
            }
        }
        for &j in &direct {
            for (c, jc) in clock.iter_mut().zip(&clocks[j]) {
                *c = (*c).max(*jc);
            }
        }
        clock[tid] = i as u32 + 1;
        clocks.push(clock);
        last_of[tid] = Some(i);
    }
    Analysis {
        demands,
        cutoff: None,
    }
}

/// The sleep-set pass of [`analyze`]: finds every sleep violation,
/// demands the covering subtree for each, and records the earliest
/// violating instruction's trace position as the cutoff.
fn sleep_check(trace: &[Choice], accesses: &[StepAccess], out: &mut Analysis) {
    for (i, ai) in accesses.iter().enumerate() {
        let Some(d) = ai.decision else { continue };
        let chosen = trace[d as usize].chosen;
        if chosen == 0 || ai.candidates == CANDIDATES_UNKNOWN {
            continue;
        }
        // The b-th selectable thread, for each alternative b below the
        // chosen one.
        let mut mask = ai.candidates;
        for b in 0..chosen {
            let t_b = mask.trailing_zeros() as ThreadId;
            mask &= mask - 1;
            // Thread t_b did not run between this decision and its next
            // access, so that access is exactly the move alternative `b`
            // would have scheduled here.
            let Some(k) = (i + 1..accesses.len()).find(|&k| accesses[k].access.tid == t_b) else {
                continue;
            };
            let asleep = accesses[i..k]
                .iter()
                .all(|aj| !conflicts(&aj.access, &accesses[k].access));
            if asleep {
                // Redundant from k onward: the moves in i..k all commute
                // with k's, so this continuation is equivalent to one in
                // the (lower-ranked) subtree that runs t_b at `d` — make
                // sure that subtree exists, and stop expanding this one.
                out.demands.insert((d as usize, b));
                out.cutoff = Some(match out.cutoff {
                    Some(c) => c.min(accesses[k].trace_start),
                    None => accesses[k].trace_start,
                });
            }
        }
    }
}

/// Adds the demand reversing instruction `j` (summarized by `aj`)
/// against a later conflicting instruction by thread `p`: at the
/// decision that scheduled `j`, schedule `p` instead — or every
/// alternative, when `p` was not selectable there (classic DPOR's "add
/// all enabled" fallback).
fn demand_reversal(
    trace: &[Choice],
    aj: &StepAccess,
    p: ThreadId,
    demands: &mut BTreeSet<(usize, u32)>,
) {
    let Some(d) = aj.decision else {
        // Only one thread was selectable when j ran: the decision tree
        // has no branch there, so there is no alternative to demand.
        return;
    };
    let d = d as usize;
    let chosen = trace[d].chosen;
    let alt = (p < 64 && aj.candidates != CANDIDATES_UNKNOWN && aj.candidates & (1 << p) != 0)
        .then(|| (aj.candidates & ((1 << p) - 1)).count_ones());
    match alt {
        // p was selectable at that decision: demand exactly its
        // alternative (its rank among the selectable threads).
        Some(a) if a != chosen => {
            demands.insert((d, a));
        }
        Some(_) => {}
        // p was not selectable there (blocked, or the mask overflowed):
        // demand every alternative.
        None => {
            for a in 0..trace[d].arity {
                if a != chosen {
                    demands.insert((d, a));
                }
            }
        }
    }
}

impl DporState {
    /// Applies one completed execution to the shared state: expands
    /// fresh read decisions exactly like plain DFS (up to the sleep
    /// cutoff, when the analysis found one), marks fresh thread
    /// decisions' taken alternative, and pushes the not-yet-explored
    /// demands of `analysis` (from [`analyze`]) onto `frontier`.
    ///
    /// `prefix_len` is the length of the execution's claimed forced
    /// prefix; `trace` is the recorded outcome. An aborted execution's
    /// trace may be *shorter* than its claimed prefix — every loop below
    /// ranges over the trace, never the prefix.
    pub(crate) fn on_complete(
        &mut self,
        prefix_len: usize,
        trace: &[Choice],
        analysis: &Analysis,
        frontier: &mut Vec<Vec<u32>>,
    ) {
        let path: Vec<u32> = trace.iter().map(|c| c.chosen).collect();
        let cutoff = analysis.cutoff.map_or(usize::MAX, |c| c as usize);

        // Fresh decisions (beyond the claimed prefix; the strategy chose
        // alternative 0 there). Read decisions expand fully — every
        // candidate message is a distinct outcome — unless the sleep
        // cutoff says the execution is redundant from there on. Thread
        // decisions are only *marked*; their siblings wait for a
        // conflict to demand them.
        for d in prefix_len..trace.len() {
            let c = trace[d];
            match c.kind {
                ChoiceKind::Read => {
                    if d >= cutoff {
                        self.stats.pruned_subtrees += u64::from(c.arity - c.chosen) - 1;
                        continue;
                    }
                    for a in (c.chosen + 1..c.arity).rev() {
                        let mut p = path[..d].to_vec();
                        p.push(a);
                        frontier.push(p);
                    }
                }
                ChoiceKind::Thread => {
                    self.explored
                        .entry(path[..d].to_vec())
                        .or_default()
                        .insert(c.chosen);
                    // Until demanded, every sibling counts as pruned;
                    // accepted demands below decrement this.
                    self.stats.pruned_subtrees += u64::from(c.arity) - 1;
                }
            }
        }

        for &(d, a) in &analysis.demands {
            let key = &path[..d];
            // Every thread decision on an explored path was marked by
            // the execution that first visited it (ordered before any
            // demand can target it — see the module docs), so the entry
            // exists.
            let entry = self.explored.entry(key.to_vec()).or_default();
            if entry.insert(a) {
                let mut p = key.to_vec();
                p.push(a);
                frontier.push(p);
                self.stats.backtrack_points += 1;
                self.stats.pruned_subtrees -= 1;
            } else {
                self.stats.sleep_hits += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(tid: ThreadId, loc: u32) -> Access {
        Access {
            tid,
            kind: AccessKind::Read {
                loc: Loc::from_raw(loc),
                atomic: true,
            },
            ghost: false,
        }
    }

    fn write(tid: ThreadId, loc: u32) -> Access {
        Access {
            tid,
            kind: AccessKind::Write {
                loc: Loc::from_raw(loc),
                atomic: true,
            },
            ghost: false,
        }
    }

    #[test]
    fn conflict_relation_basics() {
        // Same location: write/read, write/write, rmw/anything conflict.
        assert!(conflicts(&write(1, 0), &read(2, 0)));
        assert!(conflicts(&write(1, 0), &write(2, 0)));
        let rmw = Access {
            tid: 1,
            kind: AccessKind::Rmw {
                loc: Loc::from_raw(0),
            },
            ghost: false,
        };
        assert!(conflicts(&rmw, &read(2, 0)));
        assert!(conflicts(&rmw, &rmw));
        // Reads never conflict; different locations never conflict.
        assert!(!conflicts(&read(1, 0), &read(2, 0)));
        assert!(!conflicts(&write(1, 0), &write(2, 1)));
        assert!(!conflicts(&rmw, &write(2, 1)));
    }

    #[test]
    fn ghost_commits_always_conflict() {
        let mut a = read(1, 0);
        let mut b = write(2, 1);
        assert!(!conflicts(&a, &b), "distinct locations");
        a.ghost = true;
        assert!(!conflicts(&a, &b), "one ghost side is not enough");
        b.ghost = true;
        assert!(conflicts(&a, &b), "two ghost commits always conflict");
    }

    #[test]
    fn fences_and_allocs() {
        let sc = |tid| Access {
            tid,
            kind: AccessKind::Fence { sc: true },
            ghost: false,
        };
        let acq = |tid| Access {
            tid,
            kind: AccessKind::Fence { sc: false },
            ghost: false,
        };
        let alloc = |tid| Access {
            tid,
            kind: AccessKind::Alloc,
            ghost: false,
        };
        assert!(conflicts(&sc(1), &sc(2)), "SC fences join a global view");
        assert!(!conflicts(&acq(1), &acq(2)), "weak fences are thread-local");
        assert!(!conflicts(&sc(1), &write(2, 0)));
        assert!(conflicts(&alloc(1), &alloc(2)), "allocation order matters");
        assert!(!conflicts(&alloc(1), &write(2, 0)));
    }

    #[test]
    fn other_conflicts_with_everything() {
        let other = Access {
            tid: 1,
            kind: AccessKind::Other,
            ghost: false,
        };
        assert!(conflicts(&other, &read(2, 0)));
        assert!(conflicts(&other, &other));
    }

    /// Two threads touching disjoint locations: the second thread-choice
    /// subtree must be pruned entirely.
    #[test]
    fn independent_instructions_generate_no_demands() {
        let trace = [Choice {
            kind: ChoiceKind::Thread,
            chosen: 0,
            arity: 2,
        }];
        let accesses = [
            StepAccess {
                access: write(1, 0),
                decision: Some(0),
                candidates: 0b110,
                trace_start: 1,
            },
            StepAccess {
                access: write(2, 1),
                decision: None,
                candidates: 0,
                trace_start: 1,
            },
        ];
        let mut st = DporState::default();
        let mut frontier = Vec::new();
        st.on_complete(0, &trace, &analyze(&trace, &accesses), &mut frontier);
        assert!(frontier.is_empty(), "no conflict, no backtrack point");
        assert_eq!(st.stats.pruned_subtrees, 1);
        assert_eq!(st.stats.backtrack_points, 0);
    }

    /// Same-location writes demand the reversal exactly once; the second
    /// completion's identical demand is a sleep-set hit.
    #[test]
    fn conflicting_instructions_demand_the_reversal_once() {
        let trace = [Choice {
            kind: ChoiceKind::Thread,
            chosen: 0,
            arity: 2,
        }];
        let accesses = [
            StepAccess {
                access: write(1, 0),
                decision: Some(0),
                candidates: 0b110,
                trace_start: 1,
            },
            StepAccess {
                access: write(2, 0),
                decision: None,
                candidates: 0,
                trace_start: 1,
            },
        ];
        let mut st = DporState::default();
        let mut frontier = Vec::new();
        st.on_complete(0, &trace, &analyze(&trace, &accesses), &mut frontier);
        // Thread 2's rank among selectable {1, 2} is 1.
        assert_eq!(frontier, vec![vec![1]]);
        assert_eq!(st.stats.backtrack_points, 1);
        assert_eq!(st.stats.pruned_subtrees, 0);
        assert_eq!(st.stats.sleep_hits, 0);

        // The demanded execution re-demands the (now explored) pair.
        let trace2 = [Choice {
            kind: ChoiceKind::Thread,
            chosen: 1,
            arity: 2,
        }];
        let accesses2 = [
            StepAccess {
                access: write(2, 0),
                decision: Some(0),
                candidates: 0b110,
                trace_start: 1,
            },
            StepAccess {
                access: write(1, 0),
                decision: None,
                candidates: 0,
                trace_start: 1,
            },
        ];
        let mut frontier2 = Vec::new();
        st.on_complete(1, &trace2, &analyze(&trace2, &accesses2), &mut frontier2);
        assert!(frontier2.is_empty());
        assert_eq!(st.stats.sleep_hits, 1);
    }

    /// A conflicting thread that was not selectable at the earlier
    /// decision demands every alternative.
    #[test]
    fn unselectable_thread_demands_all_alternatives() {
        let trace = [Choice {
            kind: ChoiceKind::Thread,
            chosen: 0,
            arity: 3,
        }];
        let accesses = [
            StepAccess {
                access: write(1, 0),
                decision: Some(0),
                // Thread 3 was blocked at the decision.
                candidates: 0b0110,
                trace_start: 1,
            },
            StepAccess {
                access: write(3, 0),
                decision: None,
                candidates: 0,
                trace_start: 1,
            },
        ];
        let mut st = DporState::default();
        let mut frontier = Vec::new();
        st.on_complete(0, &trace, &analyze(&trace, &accesses), &mut frontier);
        let mut got: Vec<Vec<u32>> = frontier;
        got.sort();
        assert_eq!(got, vec![vec![1], vec![2]]);
        assert_eq!(st.stats.backtrack_points, 2);
    }

    #[test]
    fn read_decisions_expand_like_plain_dfs() {
        let trace = [Choice {
            kind: ChoiceKind::Read,
            chosen: 0,
            arity: 3,
        }];
        let mut st = DporState::default();
        let mut frontier = Vec::new();
        st.on_complete(0, &trace, &analyze(&trace, &[]), &mut frontier);
        assert_eq!(frontier, vec![vec![2], vec![1]], "deepest-last LIFO order");
        assert_eq!(st.stats.pruned_subtrees, 0);
    }

    #[test]
    fn env_toggle_parses() {
        // Not set in the test environment by default; the parser itself
        // is what we can check without mutating the process env.
        let on = |v: &str| v != "0";
        assert!(on("1"));
        assert!(on("true"));
        assert!(!on("0"));
    }
}
