//! Errors reported by model executions.

use std::error::Error;
use std::fmt;

use crate::val::{Loc, ThreadId};

/// Details of a detected data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceInfo {
    /// The location the race is on.
    pub loc: Loc,
    /// Human-readable name of the location (from allocation).
    pub loc_name: String,
    /// The thread performing the current (second) access.
    pub current_thread: ThreadId,
    /// Whether the current access is a write.
    pub current_is_write: bool,
    /// Whether the current access is atomic.
    pub current_atomic: bool,
    /// The thread that performed the earlier, unordered access.
    pub other_thread: ThreadId,
    /// Whether the earlier access was a write.
    pub other_is_write: bool,
    /// Whether the earlier access was atomic.
    pub other_atomic: bool,
}

impl fmt::Display for RaceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = |w: bool, a: bool| match (w, a) {
            (true, true) => "atomic write",
            (true, false) => "non-atomic write",
            (false, true) => "atomic read",
            (false, false) => "non-atomic read",
        };
        write!(
            f,
            "data race on {} ({}): {} by thread {} unordered with {} by thread {}",
            self.loc_name,
            self.loc,
            kind(self.current_is_write, self.current_atomic),
            self.current_thread,
            kind(self.other_is_write, self.other_atomic),
            self.other_thread,
        )
    }
}

/// Why a model execution did not complete normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A data race between accesses where at least one is non-atomic
    /// (undefined behaviour under RC11; the model aborts the execution).
    Race(RaceInfo),
    /// The execution exceeded the configured step budget (livelock guard).
    StepLimit(u64),
    /// All live threads are blocked in [`crate::ThreadCtx::read_await`]
    /// with no satisfying message.
    Deadlock,
    /// A simulated thread panicked (assertion failure in the program or a
    /// bug in the simulated implementation). Contains the panic message.
    ThreadPanic(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Race(r) => write!(f, "{r}"),
            ModelError::StepLimit(n) => write!(f, "execution exceeded step limit of {n}"),
            ModelError::Deadlock => write!(f, "deadlock: all live threads blocked in read_await"),
            ModelError::ThreadPanic(m) => write!(f, "simulated thread panicked: {m}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_display_mentions_threads_and_loc() {
        let r = RaceInfo {
            loc: Loc::from_raw(3),
            loc_name: "data".into(),
            current_thread: 2,
            current_is_write: true,
            current_atomic: false,
            other_thread: 1,
            other_is_write: false,
            other_atomic: false,
        };
        let s = r.to_string();
        assert!(s.contains("data"));
        assert!(s.contains("thread 2"));
        assert!(s.contains("thread 1"));
        assert!(s.contains("non-atomic write"));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ModelError::StepLimit(10),
            ModelError::Deadlock,
            ModelError::ThreadPanic("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
