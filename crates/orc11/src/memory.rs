//! The global store: per-location histories, coherence, and race detection.

use std::collections::HashMap;
use std::fmt;

use crate::error::RaceInfo;
use crate::frontier::Frontier;
use crate::mode::Mode;
use crate::msg::Msg;
use crate::tview::ThreadView;
use crate::val::{Loc, ThreadId, Val};
use crate::view::Timestamp;

/// Per-thread access epoch used for race detection: the thread's clock at
/// its last access of a given kind, plus whether that access was atomic.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    clock: u64,
    atomic: bool,
}

/// The state of one memory location.
#[derive(Debug)]
struct LocState {
    name: String,
    history: Vec<Msg>,
    write_epochs: HashMap<ThreadId, Epoch>,
    read_epochs: HashMap<ThreadId, Epoch>,
}

/// The outcome of the read half of an RMW, handed to the commit
/// continuation before the write half is published.
#[derive(Debug)]
pub(crate) struct RmwPre {
    /// The value read (always the latest message — RMW atomicity).
    pub old: Val,
    /// The value about to be written, or `None` if the RMW failed (CAS
    /// whose expectation was not met).
    pub new: Option<Val>,
}

/// The simulated global memory.
///
/// All methods are called with the execution lock held (the scheduler
/// serializes model instructions), so each method is one *physically
/// atomic* step of the machine.
#[derive(Debug, Default)]
pub struct Memory {
    locs: Vec<LocState>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated locations.
    pub fn num_locs(&self) -> usize {
        self.locs.len()
    }

    /// The debug name given to `loc` at allocation.
    pub fn loc_name(&self, loc: Loc) -> &str {
        &self.locs[loc.index()].name
    }

    /// The latest value in `loc`'s history, without any synchronization.
    ///
    /// Intended for single-threaded inspection (setup/finish phases and
    /// tests); it bypasses the race detector.
    pub fn peek_latest(&self, loc: Loc) -> Val {
        let st = &self.locs[loc.index()];
        st.history
            .last()
            .expect("location has an initial write")
            .val
    }

    /// Number of writes (messages) in `loc`'s history, including the
    /// initializing write.
    pub fn history_len(&self, loc: Loc) -> usize {
        self.locs[loc.index()].history.len()
    }

    fn state(&mut self, loc: Loc) -> &mut LocState {
        &mut self.locs[loc.index()]
    }

    /// Ticks the thread's clock (maintaining `cur ⊑ acq`) and returns the
    /// new epoch clock.
    fn tick(tv: &mut ThreadView, tid: ThreadId) -> u64 {
        let c = tv.cur.vc.tick(tid);
        tv.acq.vc.bump(tid, c);
        c
    }

    #[allow(clippy::too_many_arguments)]
    fn race(
        st: &LocState,
        loc: Loc,
        tid: ThreadId,
        is_write: bool,
        atomic: bool,
        other_tid: ThreadId,
        other: Epoch,
        other_is_write: bool,
    ) -> RaceInfo {
        let _ = other;
        RaceInfo {
            loc,
            loc_name: st.name.clone(),
            current_thread: tid,
            current_is_write: is_write,
            current_atomic: atomic,
            other_thread: other_tid,
            other_is_write,
            other_atomic: other.atomic,
        }
    }

    /// Race check for a read at `loc`: every earlier *write* by another
    /// thread must happen-before us, unless both accesses are atomic.
    fn check_read_race(
        st: &LocState,
        loc: Loc,
        tid: ThreadId,
        atomic: bool,
        tv: &ThreadView,
    ) -> Result<(), RaceInfo> {
        for (&t, &e) in &st.write_epochs {
            if t == tid {
                continue;
            }
            let conflicts = !atomic || !e.atomic;
            if conflicts && tv.cur.vc.get(t) < e.clock {
                return Err(Self::race(st, loc, tid, false, atomic, t, e, true));
            }
        }
        Ok(())
    }

    /// Race check for a write at `loc`: every earlier access by another
    /// thread must happen-before us, unless both accesses are atomic.
    fn check_write_race(
        st: &LocState,
        loc: Loc,
        tid: ThreadId,
        atomic: bool,
        tv: &ThreadView,
    ) -> Result<(), RaceInfo> {
        for (&t, &e) in &st.write_epochs {
            if t == tid {
                continue;
            }
            let conflicts = !atomic || !e.atomic;
            if conflicts && tv.cur.vc.get(t) < e.clock {
                return Err(Self::race(st, loc, tid, true, atomic, t, e, true));
            }
        }
        for (&t, &e) in &st.read_epochs {
            if t == tid {
                continue;
            }
            let conflicts = !atomic || !e.atomic;
            if conflicts && tv.cur.vc.get(t) < e.clock {
                return Err(Self::race(st, loc, tid, true, atomic, t, e, false));
            }
        }
        Ok(())
    }

    /// Allocates a fresh location with an initializing write of `init`.
    pub fn alloc(&mut self, name: &str, init: Val, tv: &mut ThreadView, tid: ThreadId) -> Loc {
        self.alloc_block(name, &[init], tv, tid)
    }

    /// Allocates `inits.len()` contiguous locations; `Loc::field` addresses
    /// the block members. The initializing writes are non-atomic.
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty.
    pub fn alloc_block(
        &mut self,
        name: &str,
        inits: &[Val],
        tv: &mut ThreadView,
        tid: ThreadId,
    ) -> Loc {
        self.alloc_block_mode(name, inits, false, tv, tid)
    }

    /// Like [`Memory::alloc_block`], but the initializing writes are
    /// marked atomic — for locations that will only ever be accessed
    /// atomically (so that unsynchronized atomic readers do not race with
    /// the initialization).
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty.
    pub fn alloc_block_atomic(
        &mut self,
        name: &str,
        inits: &[Val],
        tv: &mut ThreadView,
        tid: ThreadId,
    ) -> Loc {
        self.alloc_block_mode(name, inits, true, tv, tid)
    }

    fn alloc_block_mode(
        &mut self,
        name: &str,
        inits: &[Val],
        atomic: bool,
        tv: &mut ThreadView,
        tid: ThreadId,
    ) -> Loc {
        assert!(!inits.is_empty(), "cannot allocate an empty block");
        let base = Loc::from_raw(self.locs.len() as u32);
        for (i, &init) in inits.iter().enumerate() {
            let loc = base.field(i as u32);
            let c = Self::tick(tv, tid);
            tv.cur.view.bump(loc, 0);
            tv.acq.view.bump(loc, 0);
            let msg = Msg {
                val: init,
                frontier: tv.cur.clone(),
                writer: tid,
                atomic,
            };
            let mut write_epochs = HashMap::new();
            write_epochs.insert(tid, Epoch { clock: c, atomic });
            self.locs.push(LocState {
                name: if inits.len() == 1 {
                    name.to_string()
                } else {
                    format!("{name}[{i}]")
                },
                history: vec![msg],
                write_epochs,
                read_epochs: HashMap::new(),
            });
        }
        base
    }

    /// The list of readable timestamps for `tid` at `loc`, optionally
    /// filtered by a predicate on the message value.
    ///
    /// Readable means: not older than the thread's current view of `loc`.
    pub(crate) fn candidates(
        &self,
        tv: &ThreadView,
        loc: Loc,
        pred: Option<&dyn Fn(Val) -> bool>,
    ) -> Vec<Timestamp> {
        let st = &self.locs[loc.index()];
        let lower = tv.cur.view.get(loc).unwrap_or(0);
        (lower..st.history.len() as u64)
            .filter(|&t| match pred {
                Some(p) => p(st.history[t as usize].val),
                None => true,
            })
            .collect()
    }

    /// Performs a read at `loc`.
    ///
    /// `choose` picks among the readable candidates (it is given the
    /// candidate count and must return an index below it); the scheduler's
    /// strategy provides it. For non-atomic reads there is exactly one
    /// candidate (the latest message) — anything else is a race, which is
    /// reported.
    ///
    /// If `pred` is `Some`, candidates are filtered by it, and `Ok(None)`
    /// is returned when no candidate exists (caller blocks — this is the
    /// `read_await` path). Non-atomic reads do not support predicates.
    pub(crate) fn read(
        &mut self,
        tid: ThreadId,
        tv: &mut ThreadView,
        loc: Loc,
        mode: Mode,
        pred: Option<&dyn Fn(Val) -> bool>,
        choose: impl FnOnce(usize) -> usize,
    ) -> Result<Option<(Val, Timestamp)>, RaceInfo> {
        mode.check_read();
        assert!(
            pred.is_none() || mode.is_atomic(),
            "read_await requires an atomic mode"
        );
        let atomic = mode.is_atomic();
        let c = Self::tick(tv, tid);
        {
            let st = &self.locs[loc.index()];
            Self::check_read_race(st, loc, tid, atomic, tv)?;
        }
        let ts = if atomic {
            let cands = self.candidates(tv, loc, pred);
            if cands.is_empty() {
                // Only possible with a predicate: without one, the latest
                // message is always a candidate.
                return Ok(None);
            }
            let idx = choose(cands.len());
            cands[idx]
        } else {
            let st = &self.locs[loc.index()];
            let latest = st.history.len() as u64 - 1;
            debug_assert_eq!(
                tv.cur.view.get(loc).unwrap_or(0),
                latest,
                "race-free non-atomic read must have observed the latest write to {}",
                st.name
            );
            latest
        };
        let st = &mut self.locs[loc.index()];
        st.read_epochs.insert(tid, Epoch { clock: c, atomic });
        let msg_frontier = st.history[ts as usize].frontier.clone();
        let val = st.history[ts as usize].val;
        tv.cur.view.bump(loc, ts);
        tv.acq.view.bump(loc, ts);
        if atomic {
            if mode.acquires() {
                tv.acquire(&msg_frontier);
            } else {
                tv.acquire_relaxed(&msg_frontier);
            }
        }
        Ok(Some((val, ts)))
    }

    /// Performs a write of `val` at `loc`.
    ///
    /// The continuation `k` runs after the thread's view has been advanced
    /// past the new write but *before* the message is published: ghost
    /// state it adds to the thread's current frontier is carried by the
    /// message (this is how commit events enter logical views).
    pub(crate) fn write<R>(
        &mut self,
        tid: ThreadId,
        tv: &mut ThreadView,
        loc: Loc,
        val: Val,
        mode: Mode,
        k: impl FnOnce(&mut ThreadView) -> R,
    ) -> Result<(Timestamp, R), RaceInfo> {
        mode.check_write();
        let atomic = mode.is_atomic();
        let c = Self::tick(tv, tid);
        {
            let st = &self.locs[loc.index()];
            Self::check_write_race(st, loc, tid, atomic, tv)?;
        }
        let ts = self.locs[loc.index()].history.len() as u64;
        tv.cur.view.bump(loc, ts);
        tv.acq.view.bump(loc, ts);
        let r = k(tv);
        let frontier = Self::published_frontier(tv, tid, loc, ts, c, mode, None);
        let st = self.state(loc);
        st.write_epochs.insert(tid, Epoch { clock: c, atomic });
        st.history.push(Msg {
            val,
            frontier,
            writer: tid,
            atomic,
        });
        Ok((ts, r))
    }

    /// The frontier a write publishes on its message.
    ///
    /// Release (and non-atomic, see module docs) writes publish the
    /// thread's `cur`; relaxed writes publish the last release-fence
    /// snapshot plus the write itself. RMWs additionally join the read
    /// message's frontier, implementing RC11 release sequences.
    fn published_frontier(
        tv: &ThreadView,
        _tid: ThreadId,
        loc: Loc,
        ts: Timestamp,
        clock: u64,
        mode: Mode,
        release_seq: Option<&Frontier>,
    ) -> Frontier {
        let mut fr = if mode.releases() || !mode.is_atomic() {
            tv.cur.clone()
        } else {
            let mut f = tv.rel.clone();
            f.view.bump(loc, ts);
            // A relaxed write still creates a write epoch others can see;
            // the *clock* entry on the message matters only through the
            // release-sequence / fence paths, so publishing the rel
            // snapshot plus our own epoch is sound: joining it does not
            // create hb that RC11 would not have (our own epoch entering
            // another thread's clock via a relaxed write is exactly the
            // RC11 "rf edge without sw" — it must NOT count as hb, so we
            // do not bump the clock here).
            f
        };
        let _ = clock;
        if let Some(seq) = release_seq {
            fr.join(seq);
        }
        fr
    }

    /// Performs a read-modify-write at `loc`.
    ///
    /// `compute` inspects the current (latest) value and returns the value
    /// to write, or `None` to fail (a failed CAS). The continuation `k`
    /// observes the decision and runs after the read half's view transfer
    /// but before the write half publishes — the commit-point window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rmw<R>(
        &mut self,
        tid: ThreadId,
        tv: &mut ThreadView,
        loc: Loc,
        compute: impl FnOnce(Val) -> Option<Val>,
        ok_mode: Mode,
        fail_mode: Mode,
        k: impl FnOnce(&RmwPre, &mut ThreadView) -> R,
    ) -> Result<(Val, Option<Timestamp>, R), RaceInfo> {
        ok_mode.check_rmw();
        fail_mode.check_rmw();
        fail_mode.check_read();
        let c = Self::tick(tv, tid);
        {
            let st = &self.locs[loc.index()];
            Self::check_read_race(st, loc, tid, true, tv)?;
        }
        let (old, read_ts, read_frontier) = {
            let st = &self.locs[loc.index()];
            let ts = st.history.len() as u64 - 1;
            let msg = &st.history[ts as usize];
            (msg.val, ts, msg.frontier.clone())
        };
        let new = compute(old);
        if new.is_some() {
            let st = &self.locs[loc.index()];
            Self::check_write_race(st, loc, tid, true, tv)?;
        }
        // Read-half view transfer.
        let mode = if new.is_some() { ok_mode } else { fail_mode };
        tv.cur.view.bump(loc, read_ts);
        tv.acq.view.bump(loc, read_ts);
        if mode.acquires() {
            tv.acquire(&read_frontier);
        } else {
            tv.acquire_relaxed(&read_frontier);
        }
        self.state(loc).read_epochs.insert(
            tid,
            Epoch {
                clock: c,
                atomic: true,
            },
        );
        match new {
            None => {
                let r = k(&RmwPre { old, new: None }, tv);
                Ok((old, None, r))
            }
            Some(new_val) => {
                let ts = read_ts + 1;
                tv.cur.view.bump(loc, ts);
                tv.acq.view.bump(loc, ts);
                let r = k(
                    &RmwPre {
                        old,
                        new: Some(new_val),
                    },
                    tv,
                );
                let frontier =
                    Self::published_frontier(tv, tid, loc, ts, c, ok_mode, Some(&read_frontier));
                let st = self.state(loc);
                st.write_epochs.insert(
                    tid,
                    Epoch {
                        clock: c,
                        atomic: true,
                    },
                );
                st.history.push(Msg {
                    val: new_val,
                    frontier,
                    writer: tid,
                    atomic: true,
                });
                Ok((old, Some(ts), r))
            }
        }
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, st) in self.locs.iter().enumerate() {
            writeln!(
                f,
                "ℓ{} {:12} history: {:?}",
                i,
                st.name,
                st.history.iter().map(|m| m.val).collect::<Vec<_>>()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, ThreadView) {
        (Memory::new(), ThreadView::new())
    }

    #[test]
    fn alloc_and_peek() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("x", Val::Int(7), &mut tv, 0);
        assert_eq!(mem.peek_latest(l), Val::Int(7));
        assert_eq!(mem.loc_name(l), "x");
        assert_eq!(mem.history_len(l), 1);
    }

    #[test]
    fn block_alloc_names_fields() {
        let (mut mem, mut tv) = setup();
        let b = mem.alloc_block("node", &[Val::Int(1), Val::Null], &mut tv, 0);
        assert_eq!(mem.loc_name(b), "node[0]");
        assert_eq!(mem.loc_name(b.field(1)), "node[1]");
        assert_eq!(mem.peek_latest(b.field(1)), Val::Null);
    }

    #[test]
    fn same_thread_na_rw_is_race_free() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv, 0);
        mem.write(0, &mut tv, l, Val::Int(1), Mode::NonAtomic, |_| ())
            .unwrap();
        let got = mem
            .read(0, &mut tv, l, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(got.0, Val::Int(1));
    }

    #[test]
    fn unsynchronized_na_write_write_races() {
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        // Thread 1 inherits the allocation (spawn edge)...
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        // ...then both write non-atomically without synchronizing.
        mem.write(1, &mut tv1, l, Val::Int(1), Mode::NonAtomic, |_| ())
            .unwrap();
        let res = mem.write(2, &mut tv2, l, Val::Int(2), Mode::NonAtomic, |_| ());
        let race = res.unwrap_err();
        assert_eq!(race.other_thread, 1);
        assert!(race.current_is_write && race.other_is_write);
    }

    #[test]
    fn atomic_accesses_do_not_race() {
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, l, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        mem.write(2, &mut tv2, l, Val::Int(2), Mode::Relaxed, |_| ())
            .unwrap();
        let r = mem.read(1, &mut tv1, l, Mode::Relaxed, None, |n| n - 1);
        assert!(r.is_ok());
    }

    #[test]
    fn na_read_of_unsynchronized_atomic_write_races() {
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, l, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        let res = mem.read(2, &mut tv2, l, Mode::NonAtomic, None, |_| 0);
        assert!(res.is_err());
    }

    #[test]
    fn release_acquire_transfers_view_and_clock() {
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        // Read the flag=1 message (candidate index 1) with acquire.
        let (v, _) = mem
            .read(2, &mut tv2, flag, Mode::Acquire, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert_eq!(v, Val::Int(1));
        // Now the non-atomic read of data is race-free and sees 42.
        let (d, _) = mem
            .read(2, &mut tv2, data, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(d, Val::Int(42));
    }

    #[test]
    fn relaxed_read_does_not_synchronize() {
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        // Relaxed read of flag=1: no synchronization...
        let (v, _) = mem
            .read(2, &mut tv2, flag, Mode::Relaxed, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert_eq!(v, Val::Int(1));
        // ...so the non-atomic read of data is a race.
        assert!(mem
            .read(2, &mut tv2, data, Mode::NonAtomic, None, |_| 0)
            .is_err());
    }

    #[test]
    fn acquire_fence_promotes_relaxed_read() {
        use crate::mode::FenceMode;
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        mem.read(2, &mut tv2, flag, Mode::Relaxed, None, |n| n - 1)
            .unwrap()
            .unwrap();
        tv2.fence(FenceMode::Acquire);
        let (d, _) = mem
            .read(2, &mut tv2, data, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(d, Val::Int(42));
    }

    #[test]
    fn release_fence_plus_relaxed_write_synchronizes() {
        use crate::mode::FenceMode;
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        tv1.fence(FenceMode::Release);
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        let (v, _) = mem
            .read(2, &mut tv2, flag, Mode::Acquire, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert_eq!(v, Val::Int(1));
        let (d, _) = mem
            .read(2, &mut tv2, data, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(d, Val::Int(42));
    }

    #[test]
    fn plain_relaxed_write_does_not_release() {
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        // No release fence, relaxed write: acquiring readers get nothing.
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        mem.read(2, &mut tv2, flag, Mode::Acquire, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert!(mem
            .read(2, &mut tv2, data, Mode::NonAtomic, None, |_| 0)
            .is_err());
    }

    #[test]
    fn rmw_reads_latest_and_appends() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("c", Val::Int(5), &mut tv, 0);
        let (old, ts, ()) = mem
            .rmw(
                0,
                &mut tv,
                l,
                |v| Some(Val::Int(v.expect_int() + 1)),
                Mode::AcqRel,
                Mode::Relaxed,
                |_, _| (),
            )
            .unwrap();
        assert_eq!(old, Val::Int(5));
        assert!(ts.is_some());
        assert_eq!(mem.peek_latest(l), Val::Int(6));
    }

    #[test]
    fn failed_cas_is_a_read() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("c", Val::Int(5), &mut tv, 0);
        let (old, ts, pre_new) = mem
            .rmw(
                0,
                &mut tv,
                l,
                |v| {
                    if v == Val::Int(9) {
                        Some(Val::Int(1))
                    } else {
                        None
                    }
                },
                Mode::AcqRel,
                Mode::Acquire,
                |pre, _| pre.new,
            )
            .unwrap();
        assert_eq!(old, Val::Int(5));
        assert!(ts.is_none());
        assert!(pre_new.is_none());
        assert_eq!(mem.history_len(l), 1);
    }

    #[test]
    fn release_sequence_through_rmw() {
        // T1: data = 42 (na); x :=rel 1.  T2: CAS_rlx(x, 1 -> 2).
        // T3: acq-read x == 2 synchronizes with T1's release write through
        // the RMW (release sequence), so reading data is race-free.
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let x = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        let mut tv3 = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut tv1, data, Val::Int(42), Mode::NonAtomic, |_| ())
            .unwrap();
        mem.write(1, &mut tv1, x, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        mem.rmw(
            2,
            &mut tv2,
            x,
            |v| {
                if v == Val::Int(1) {
                    Some(Val::Int(2))
                } else {
                    None
                }
            },
            Mode::Relaxed,
            Mode::Relaxed,
            |_, _| (),
        )
        .unwrap();
        let (v, _) = mem
            .read(3, &mut tv3, x, Mode::Acquire, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert_eq!(v, Val::Int(2));
        let (d, _) = mem
            .read(3, &mut tv3, data, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(d, Val::Int(42));
    }

    #[test]
    fn candidates_respect_view_lower_bound() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv, 0);
        mem.write(0, &mut tv, l, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        // The writer itself can only read its latest write.
        let cands = mem.candidates(&tv, l, None);
        assert_eq!(cands, vec![1]);
        // A fresh thread (no view of l) can read both.
        let fresh = ThreadView::new();
        assert_eq!(mem.candidates(&fresh, l, None), vec![0, 1]);
    }

    #[test]
    fn ghost_state_travels_on_release_acquire() {
        let (mut mem, mut tv0) = setup();
        let flag = mem.alloc("flag", Val::Int(0), &mut tv0, 0);
        let mut tv1 = ThreadView::inherit(&tv0.cur);
        let mut tv2 = ThreadView::inherit(&tv0.cur);
        // The commit continuation adds a ghost event before publication.
        mem.write(1, &mut tv1, flag, Val::Int(1), Mode::Release, |tv| {
            tv.cur.ghost.insert(100, 1);
            tv.acq.ghost.insert(100, 1);
        })
        .unwrap();
        mem.read(2, &mut tv2, flag, Mode::Acquire, None, |n| n - 1)
            .unwrap()
            .unwrap();
        assert!(tv2.cur.ghost.contains(100, 1));
    }
}

#[cfg(test)]
mod coherence_tests {
    use super::*;
    use crate::mode::FenceMode;

    fn setup() -> (Memory, ThreadView) {
        (Memory::new(), ThreadView::new())
    }

    #[test]
    fn reads_never_go_backwards_per_location() {
        // Once a thread has read timestamp t, it can never read < t.
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut w = ThreadView::inherit(&tv0.cur);
        for i in 1..=3 {
            mem.write(1, &mut w, l, Val::Int(i), Mode::Relaxed, |_| ())
                .unwrap();
        }
        let mut r = ThreadView::inherit(&tv0.cur);
        // Read the message at ts 2 (candidates [0..=3], pick index 2).
        let (v, _) = mem
            .read(2, &mut r, l, Mode::Relaxed, None, |_| 2)
            .unwrap()
            .unwrap();
        assert_eq!(v, Val::Int(2));
        // Candidates now exclude ts 0 and 1.
        assert_eq!(mem.candidates(&r, l, None), vec![2, 3]);
    }

    #[test]
    fn own_writes_are_immediately_visible() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv, 0);
        mem.write(0, &mut tv, l, Val::Int(9), Mode::Relaxed, |_| ())
            .unwrap();
        // The writer can only read its own (latest) write.
        assert_eq!(mem.candidates(&tv, l, None), vec![1]);
    }

    #[test]
    fn rmw_success_requires_latest() {
        // A CAS expecting a stale value fails even if some thread's view
        // is behind: RMWs always read the latest message.
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut a = ThreadView::inherit(&tv0.cur);
        let mut b = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut a, l, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        // b's view still allows reading 0, but its CAS sees 1.
        let (old, ts, ()) = mem
            .rmw(
                2,
                &mut b,
                l,
                |v| (v == Val::Int(0)).then_some(Val::Int(7)),
                Mode::AcqRel,
                Mode::Relaxed,
                |_, _| (),
            )
            .unwrap();
        assert_eq!(old, Val::Int(1));
        assert!(ts.is_none(), "stale expectation fails");
    }

    #[test]
    fn acquire_fence_needed_even_after_rmw_relaxed() {
        // Relaxed RMW acquires nothing into cur; an acquire fence promotes.
        let (mut mem, mut tv0) = setup();
        let data = mem.alloc("data", Val::Int(0), &mut tv0, 0);
        let x = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut w = ThreadView::inherit(&tv0.cur);
        let mut r = ThreadView::inherit(&tv0.cur);
        mem.write(1, &mut w, data, Val::Int(5), Mode::NonAtomic, |_| ())
            .unwrap();
        mem.write(1, &mut w, x, Val::Int(1), Mode::Release, |_| ())
            .unwrap();
        // Relaxed RMW reads the release write but does not acquire.
        mem.rmw(
            2,
            &mut r,
            x,
            |v| Some(Val::Int(v.expect_int() + 1)),
            Mode::Relaxed,
            Mode::Relaxed,
            |_, _| (),
        )
        .unwrap();
        assert!(
            mem.read(2, &mut r, data, Mode::NonAtomic, None, |_| 0)
                .is_err(),
            "relaxed RMW must not synchronize by itself"
        );
        // After the fence the pending acquisition lands.
        r.fence(FenceMode::Acquire);
        let (d, _) = mem
            .read(2, &mut r, data, Mode::NonAtomic, None, |_| 0)
            .unwrap()
            .unwrap();
        assert_eq!(d, Val::Int(5));
    }

    #[test]
    fn write_write_coherence_within_thread() {
        // A thread's writes to one location are totally ordered; a fresh
        // reader may read either, but never observes them out of order.
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv, 0);
        mem.write(0, &mut tv, l, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        mem.write(0, &mut tv, l, Val::Int(2), Mode::Relaxed, |_| ())
            .unwrap();
        let mut r = ThreadView::new();
        let (first, _) = mem
            .read(1, &mut r, l, Mode::Relaxed, None, |_| 1)
            .unwrap()
            .unwrap();
        assert_eq!(first, Val::Int(1));
        let cands = mem.candidates(&r, l, None);
        assert!(!cands.contains(&0), "initial write no longer readable");
    }

    #[test]
    fn read_epochs_tracked_for_race_detection() {
        // An atomic read does not hide a later racy na write.
        let (mut mem, mut tv0) = setup();
        let l = mem.alloc("x", Val::Int(0), &mut tv0, 0);
        let mut a = ThreadView::inherit(&tv0.cur);
        let mut b = ThreadView::inherit(&tv0.cur);
        mem.read(1, &mut a, l, Mode::Acquire, None, |_| 0).unwrap();
        // b's na write conflicts with a's atomic read (mixed access).
        assert!(mem
            .write(2, &mut b, l, Val::Int(1), Mode::NonAtomic, |_| ())
            .is_err());
    }

    #[test]
    fn display_lists_histories() {
        let (mut mem, mut tv) = setup();
        let l = mem.alloc("counter", Val::Int(0), &mut tv, 0);
        mem.write(0, &mut tv, l, Val::Int(1), Mode::Relaxed, |_| ())
            .unwrap();
        let s = mem.to_string();
        assert!(s.contains("counter"));
        assert!(s.contains('1'));
    }
}
