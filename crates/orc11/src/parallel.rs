//! The parallel exploration engine: N workers over one [`WorkSource`].
//!
//! Stateless model checking is embarrassingly parallel at the execution
//! level — every sampled interleaving is independent — so the engine is
//! deliberately simple: `threads` OS workers each loop *claim → run →
//! complete → record*, accumulating into a thread-local
//! [`ExploreReport`] and a thread-local [`Sink`]. When the source
//! drains, per-worker reports are merged; every merge (counters,
//! histograms, coverage sets, sorted error lists) is commutative, so the
//! merged report does not depend on how work interleaved across
//! workers. The public entry points are [`crate::Explorer`]'s methods.
//!
//! ## Determinism guarantee
//!
//! For random/PCT (fixed seed set) and for DFS runs — plain or
//! DPOR-pruned — that exhaust their tree within budget,
//! [`ExploreReport::to_json`] is byte-identical for every thread count,
//! including 1. A DFS run that hits its budget explores a
//! thread-count-dependent *subset* of the tree; counts may then differ
//! (exactly as two different serial budgets would), and the report says
//! so via [`ExploreReport::truncated`] so consumers never mistake a cut
//! tree for a comparable one.

use crate::exec::RunOutcome;
use crate::explore::ExploreReport;
use crate::model::Model;
use crate::rate::RateMeter;
use crate::trace;
use crate::work::{StrategyDesc, WorkSource, WorkSpec};

/// Cap on auto-detected parallelism: exploration workers each spawn the
/// model's own (gated) thread group, so running dozens of workers per
/// exploration on a many-core host mostly burns memory on idle stacks.
const AUTO_THREAD_CAP: usize = 8;

/// Per-worker consumer of execution outcomes, driven alongside the
/// [`ExploreReport`] accounting.
///
/// The engine creates one sink per worker (so `on_outcome` needs no
/// internal locking) and hands all sinks back for the caller to merge.
/// Any `FnMut(&StrategyDesc, &RunOutcome<R>)` closure is a sink.
pub trait Sink<R> {
    /// Called once per execution, on the worker thread that ran it.
    fn on_outcome(&mut self, desc: &StrategyDesc, out: &RunOutcome<R>);
}

impl<R, F: FnMut(&StrategyDesc, &RunOutcome<R>)> Sink<R> for F {
    fn on_outcome(&mut self, desc: &StrategyDesc, out: &RunOutcome<R>) {
        self(desc, out)
    }
}

/// The worker thread count used when a driver is configured with
/// `threads == 0` ("auto"): `COMPASS_THREADS` if set and positive, else
/// the host's available parallelism capped at 8.
pub fn default_threads() -> usize {
    if let Some(v) = std::env::var_os("COMPASS_THREADS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("orc11: ignoring unparsable COMPASS_THREADS={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(AUTO_THREAD_CAP)
}

pub(crate) fn resolve_threads(explicit: usize) -> usize {
    if explicit == 0 {
        default_threads()
    } else {
        explicit
    }
}

/// One worker's loop: claim batches until the source drains, recording
/// every outcome into `report` and `sink`. This is the *only* place in
/// the workspace that runs a model under an exploration strategy — the
/// serial drivers are this function called once on the current thread.
///
/// The worker's per-phase time delta (see [`crate::trace`]) is
/// accumulated into `report.phase_ns` so the merged report carries the
/// exploration's total busy time per phase.
fn drive<M, S>(
    source: &WorkSource,
    model: &M,
    report: &mut ExploreReport,
    sink: &mut S,
    worker: usize,
) where
    M: Model + ?Sized,
    S: Sink<M::Out>,
{
    let phase_mark = trace::thread_phases();
    // Executions/sec counter track: one meter per worker, sampled at
    // most every 100ms, and only while a trace session is on.
    let mut rate = RateMeter::new(RateMeter::DEFAULT_WINDOW);
    while let Some(batch) = source.claim(worker) {
        let _batch_span = trace::span(trace::Phase::Explore, "batch");
        for desc in batch {
            let mut guard = source.guard();
            let out = model.run(desc.strategy());
            // Feed the frontier before the (possibly slow) sink runs, so
            // sibling workers are never starved by a long check.
            source.complete(worker, &desc, &out.trace, &out.accesses);
            guard.disarm();
            if let StrategyDesc::Dfs { prefix } = &desc {
                report
                    .coverage
                    .record_dfs_execution(prefix.len(), out.trace.len());
            }
            report.record(&desc, &out);
            sink.on_outcome(&desc, &out);
            if trace::enabled() {
                if let Some(r) = rate.tick() {
                    trace::counter("execs_per_sec", r as u64);
                }
            }
        }
    }
    report
        .phase_ns
        .merge(&trace::thread_phases().delta_since(&phase_mark));
}

/// Runs `spec` over `model` with `threads` workers (callers resolve
/// `0 = auto` first via [`resolve_threads`]), returning the merged
/// report and the per-worker sinks in worker-index order.
pub(crate) fn explore_with<M, S, F>(
    threads: usize,
    max_errors: usize,
    spec: &WorkSpec,
    model: &M,
    make_sink: F,
) -> (ExploreReport, Vec<S>)
where
    M: Model + ?Sized,
    S: Sink<M::Out> + Send,
    F: Fn(usize) -> S + Sync,
{
    let source = WorkSource::new(spec);
    let results: Vec<(ExploreReport, S)> = if threads <= 1 {
        let mut report = ExploreReport::with_max_errors(max_errors);
        let mut sink = make_sink(0);
        drive(&source, model, &mut report, &mut sink, 0);
        vec![(report, sink)]
    } else {
        std::thread::scope(|scope| {
            let source = &source;
            let make_sink = &make_sink;
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    scope.spawn(move || {
                        trace::register_worker(i);
                        let mut report = ExploreReport::with_max_errors(max_errors);
                        let mut sink = make_sink(i);
                        drive(source, model, &mut report, &mut sink, i);
                        (report, sink)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        })
    };
    let mut merged = ExploreReport::with_max_errors(max_errors);
    let mut sinks = Vec::with_capacity(results.len());
    for (report, sink) in results {
        merged.merge(report);
        sinks.push(sink);
    }
    merged.exhausted = source.exhausted();
    merged.truncated = source.truncated();
    merged.dpor = source.dpor_stats();
    // Per-worker busy time was summed by the merge; report the mean per
    // worker instead, so the six phases remain a wall-clock-bounded
    // attribution regardless of thread count.
    merged.phase_ns = merged.phase_ns.div_by(threads.max(1) as u64);
    let mut workers = source.worker_stats();
    if workers.len() < threads {
        workers.resize(threads, Default::default());
    }
    merged.workers = workers;
    (merged, sinks)
}
