//! A hand-rolled JSON value type and emitter.
//!
//! The workspace builds offline with no external crates, so the
//! machine-readable metrics files (see `EXPERIMENTS.md`, "Observability &
//! replay") are emitted through this minimal module instead of serde.
//! Parsing ([`Json::parse`]) exists for the one consumer inside the
//! workspace — the trace-format validator (`orc11::trace`) — and accepts
//! standard RFC 8259 JSON; everything else only emits (replay bundles
//! use a simpler line format for the parts that are read back).
//!
//! Objects preserve insertion order, which keeps emitted schemas stable
//! and diffable across runs.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (covers u64 counters below 2^63, which every
    /// counter in this repository is in practice).
    Int(i64),
    /// A float; non-finite values emit as `null` per RFC 8259.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts `key: value` (objects only) and returns `self` for
    /// chaining. An existing key is replaced in place, keeping its
    /// position — which is what lets tests normalize wall-clock fields
    /// of a rendered report without disturbing the key order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => match entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value.into(),
                None => entries.push((key.to_string(), value.into())),
            },
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Appends `value` (arrays only) and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(mut self, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
        self
    }

    /// Looks up a key (objects only; `None` otherwise or if absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses RFC 8259 JSON text. Numbers without a fraction or exponent
    /// that fit `i64` become [`Json::Int`]; all others become
    /// [`Json::Float`].
    ///
    /// # Errors
    ///
    /// A readable message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline — the format of every file under `experiment-results/`.
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Guarantee a float-shaped token (serde_json does the
                    // same) so consumers keep a stable type per field.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = fmt::Write::write_fmt(out, format_args!("{x:.1}"));
                    } else {
                        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the raw bytes (strings are re-decoded
/// as UTF-8 when materialized).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    v = v * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("expected 4 hex digits in \\u escape")),
            }
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                if self.peek().is_some_and(|b| b < 0x20) {
                    return Err(self.err("unescaped control character in string"));
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate in \\u escape"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => unreachable!("loop above stops only at '\"' or '\\\\'"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_digits {
            return Err(self.err("expected digits"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::Int(u as i64)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(u as i64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::Int(u as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .set("a", 1u64)
            .set("b", vec![1i64, 2, 3])
            .set("c", Json::Null)
            .set("d", true)
            .set("e", "hi");
        assert_eq!(
            j.render(),
            r#"{"a":1,"b":[1,2,3],"c":null,"d":true,"e":"hi"}"#
        );
    }

    #[test]
    fn string_escaping() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_stay_float_shaped_and_nonfinite_is_null() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents_and_ends_with_newline() {
        let j = Json::obj().set("x", Json::arr().push(1u64).push(2u64));
        assert_eq!(j.render_pretty(), "{\n  \"x\": [\n    1,\n    2\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }

    #[test]
    fn object_order_is_insertion_order_and_get_works() {
        let j = Json::obj().set("z", 1u64).set("a", 2u64);
        assert!(j.render().starts_with(r#"{"z":1"#));
        assert_eq!(j.get("a"), Some(&Json::Int(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let j = Json::obj()
            .set("a", 1u64)
            .set("b", vec![1i64, -2, 3])
            .set("c", Json::Null)
            .set("d", true)
            .set("e", "hi\n\"there\"\\")
            .set("f", 2.5f64)
            .set("g", Json::obj())
            .set("h", Json::arr());
        for text in [j.render(), j.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j);
        }
    }

    #[test]
    fn parse_number_shapes() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        // Integral but out of i64 range falls back to float.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\u0041\t\/\u00e9""#).unwrap(),
            Json::Str("aA\t/é".to_string())
        );
        // Surrogate pair.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "\"",
            "01a",
            "{\"a\":1} extra",
            "\"\\ud83d\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
